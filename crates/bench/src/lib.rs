//! # amos-bench — shared harness utilities for the table/figure benchmarks
//!
//! Every bench target regenerates one table or figure of the AMOS paper:
//! it prints the rows (paper values quoted alongside) and then lets
//! criterion time a representative kernel of the experiment. Run all of
//! them with `cargo bench --workspace`.

#![warn(missing_docs)]

use amos_baselines::{evaluate_with, System, SystemCost};
use amos_core::{CacheStats, Engine};
use amos_hw::AcceleratorSpec;
use amos_ir::ComputeDef;
use std::collections::HashMap;

/// Evaluation cache: a label-keyed memo of final costs, backed by one shared
/// [`Engine`] (and its structural exploration cache) so that the same
/// operator shape appearing under several labels (or several tables) is
/// explored once; this keeps the whole suite fast and deterministic.
#[derive(Debug, Default)]
pub struct EvalCache {
    entries: HashMap<(System, String, String), SystemCost>,
    engine: Engine,
}

impl EvalCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates through the cache.
    pub fn eval(
        &mut self,
        system: System,
        key: &str,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> SystemCost {
        let k = (system, key.to_string(), accel.name.clone());
        if let Some(c) = self.entries.get(&k) {
            return *c;
        }
        let cost = evaluate_with(&self.engine, system, def, accel, stable_seed(key));
        self.entries.insert(k, cost);
        cost
    }

    /// Hit/miss counters of the underlying engine's exploration cache.
    pub fn explore_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }
}

/// Deterministic seed per workload label so reruns are reproducible
/// (the workspace's shared FNV-1a hash).
pub fn stable_seed(key: &str) -> u64 {
    amos_core::fnv1a(key)
}

/// Prints a header line for a reproduced table/figure.
pub fn banner(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Extracts the number following `"key":` in the flat JSON the recorder
/// binaries write. Returns `None` when the key is missing or its value does
/// not parse — both count as "malformed" for a `--check` gate.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_workloads::networks;

    #[test]
    fn json_number_reads_flat_json() {
        let text = "{\n  \"schema\": 1,\n  \"speedup\": -2.5e1,\n  \"name\": \"x\"\n}\n";
        assert_eq!(json_number(text, "schema"), Some(1.0));
        assert_eq!(json_number(text, "speedup"), Some(-25.0));
        assert_eq!(json_number(text, "name"), None, "non-numeric value");
        assert_eq!(json_number(text, "missing"), None);
    }

    #[test]
    fn stable_seed_is_deterministic_and_distinct() {
        assert_eq!(stable_seed("a"), stable_seed("a"));
        assert_ne!(stable_seed("a"), stable_seed("b"));
    }

    #[test]
    fn cache_hits_return_identical_costs() {
        let mut cache = EvalCache::new();
        let def = amos_workloads::ops::gmm(64, 64, 64);
        let accel = catalog::v100();
        let a = cache.eval(System::PyTorch, "gemm64", &def, &accel);
        let b = cache.eval(System::PyTorch, "gemm64", &def, &accel);
        assert_eq!(a, b);
    }

    #[test]
    fn network_evaluator_reports_positive_cost() {
        let mut ev = amos_baselines::NetworkEvaluator::new();
        let accel = catalog::v100();
        let net = networks::mi_lstm();
        let c = ev.evaluate(System::PyTorch, &net, 1, &accel);
        assert!(c.total_cycles > 0.0);
    }
}

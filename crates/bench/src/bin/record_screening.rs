//! Records the screening perf trajectory to `BENCH_screening.json`.
//!
//! The analytic screening model bounds exploration throughput (every
//! genetic generation funnels its whole population through it), so its
//! candidates/second is the one number this repo tracks release over
//! release. This binary measures the scalar (`predict_with`) and batched
//! (`predict_batch_with`) paths over the Figure-6 operator families,
//! asserts them bit-identical first, and writes the committed trajectory
//! file at the repository root:
//!
//! ```text
//! cargo run --release -p amos-bench --bin record_screening            # re-record
//! cargo run --release -p amos-bench --bin record_screening -- --check # CI gate
//! ```
//!
//! `--check` re-measures the batched path and fails (exit 1) when the
//! committed file is malformed, when its recorded batched/scalar geomean
//! speedup is below 2.0x, or when the live batched throughput has
//! regressed to under 0.8x the recorded value.
//!
//! JSON is written and read by the tiny flat-schema helpers below — the
//! build environment is offline, so no serde.

use amos_baselines::{evaluate, geomean, System};
use amos_bench::json_number;
use amos_core::perf_model::{predict_batch_with, predict_with, PerfBreakdown};
use amos_core::{random_schedule, MappingGenerator};
use amos_hw::catalog;
use amos_ir::ComputeDef;
use amos_sim::{BatchTables, Schedule};
use amos_workloads::{configs, ops};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Same operator set as the `screening_throughput` bench: one shape per
/// Figure-6 family exercised by the explorer (model cost depends on axis
/// count and operand structure, not extents).
fn operator_set() -> Vec<(&'static str, ComputeDef)> {
    vec![
        ("gmm", ops::gmm(256, 256, 256)),
        ("gmv", ops::gmv(1024, 1024)),
        (
            "c2d",
            ops::c2d(amos_workloads::ops::ConvShape {
                n: 8,
                c: 64,
                k: 64,
                p: 14,
                q: 14,
                r: 3,
                s: 3,
                stride: 1,
            }),
        ),
        ("dep", ops::dep(8, 64, 14, 14, 3, 3)),
    ]
}

/// Throughput sample for one operator family.
struct OpSample {
    name: &'static str,
    scalar_cps: f64,
    batched_cps: f64,
}

/// Best-of-`sets` wall time for `reps` calls of `f`, as seconds per call.
/// Taking the minimum over several timing sets filters scheduler noise,
/// which matters for a file whose values gate CI.
fn best_time(mut f: impl FnMut(), reps: usize, sets: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..sets {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn assert_bitwise_equal(name: &str, a: &PerfBreakdown, b: &PerfBreakdown) {
    for (field, x, y) in [
        ("cycles", a.cycles, b.cycles),
        ("l0_compute", a.l0_compute, b.l0_compute),
        ("r_register", a.r_register, b.r_register),
        ("r_shared", a.r_shared, b.r_shared),
        ("r_device", a.r_device, b.r_device),
        ("w_device", a.w_device, b.w_device),
        ("s_device", a.s_device, b.s_device),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}: scalar and batched screening disagree on {field} ({x} vs {y})"
        );
    }
}

/// Measures scalar and batched screening throughput over every operator
/// family, gating on bit-identity before timing anything.
fn measure_ops() -> Vec<OpSample> {
    let accel = catalog::v100();
    let generator = MappingGenerator::new();
    let mut samples = Vec::new();
    for (name, def) in operator_set() {
        let mappings = generator.enumerate(&def, &accel.intrinsic);
        let prog = mappings[0].lower(&def, &accel.intrinsic).expect("lower");
        let ctx = prog.screening_context(&accel);
        let mut rng = StdRng::seed_from_u64(amos_bench::stable_seed(name));
        let schedules: Vec<Schedule> = (0..512)
            .map(|_| random_schedule(&prog, &accel, &mut rng))
            .collect();
        let refs: Vec<&Schedule> = schedules.iter().collect();
        let mut tables = BatchTables::default();
        let mut batched = Vec::with_capacity(refs.len());
        predict_batch_with(&ctx, &refs, &mut tables, &mut batched);
        for (s, b) in schedules.iter().zip(&batched) {
            let scalar = predict_with(&ctx, s).expect("scalar model");
            assert_bitwise_equal(name, &scalar, b.as_ref().expect("batched model"));
        }
        let t_scalar = best_time(
            || {
                for s in &schedules {
                    std::hint::black_box(predict_with(&ctx, s).unwrap());
                }
            },
            30,
            5,
        );
        let t_batched = best_time(
            || {
                batched.clear();
                predict_batch_with(&ctx, std::hint::black_box(&refs), &mut tables, &mut batched);
                std::hint::black_box(&batched);
            },
            30,
            5,
        );
        samples.push(OpSample {
            name,
            scalar_cps: schedules.len() as f64 / t_scalar,
            batched_cps: schedules.len() as f64 / t_batched,
        });
    }
    samples
}

/// Wall seconds for one representative Figure-6 exploration (the ResNet-18
/// C5 layer at batch 16 on the A100-like accelerator — the same kernel the
/// `fig6_operators` bench times), tying the micro-throughput numbers to an
/// end-to-end cost in the same file.
fn measure_fig6_wall() -> f64 {
    let accel = catalog::a100();
    let def = ops::c2d(configs::resnet18_conv_layers(16)[5].1);
    let start = Instant::now();
    std::hint::black_box(evaluate(System::Amos, &def, &accel, 5));
    start.elapsed().as_secs_f64()
}

/// Path of the committed trajectory file: the repository root, two levels
/// above this crate's manifest.
fn trajectory_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_screening.json")
}

fn render_json(samples: &[OpSample], fig6_wall: f64) -> String {
    let scalar: Vec<f64> = samples.iter().map(|s| s.scalar_cps).collect();
    let batched: Vec<f64> = samples.iter().map(|s| s.batched_cps).collect();
    let speedups: Vec<f64> = samples
        .iter()
        .map(|s| s.batched_cps / s.scalar_cps)
        .collect();
    let mut out = String::from("{\n  \"schema\": 1,\n  \"ops\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_cps\": {:.0}, \"batched_cps\": {:.0}, \"speedup\": {:.3}}}{}\n",
            s.name,
            s.scalar_cps,
            s.batched_cps,
            speedups[i],
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"geomean_scalar_cps\": {:.0},\n  \"geomean_batched_cps\": {:.0},\n  \"geomean_speedup\": {:.3},\n  \"fig6_c5_wall_seconds\": {:.3}\n}}\n",
        geomean(&scalar),
        geomean(&batched),
        geomean(&speedups),
        fig6_wall
    ));
    out
}

fn record() {
    let samples = measure_ops();
    let fig6_wall = measure_fig6_wall();
    let json = render_json(&samples, fig6_wall);
    let path = trajectory_path();
    std::fs::write(&path, &json).expect("write BENCH_screening.json");
    println!("wrote {}:\n{json}", path.display());
}

fn check() {
    let path = trajectory_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let schema = json_number(&text, "schema");
    let recorded_cps = json_number(&text, "geomean_batched_cps");
    let recorded_speedup = json_number(&text, "geomean_speedup");
    let (Some(schema), Some(recorded_cps), Some(recorded_speedup)) =
        (schema, recorded_cps, recorded_speedup)
    else {
        eprintln!("FAIL: {} is malformed (missing keys)", path.display());
        std::process::exit(1);
    };
    assert_eq!(schema, 1.0, "unknown trajectory schema");
    if recorded_speedup < 2.0 {
        eprintln!(
            "FAIL: recorded batched/scalar geomean speedup {recorded_speedup:.3}x is below the 2.0x floor"
        );
        std::process::exit(1);
    }
    let samples = measure_ops();
    let live_cps = geomean(&samples.iter().map(|s| s.batched_cps).collect::<Vec<_>>());
    println!(
        "recorded {recorded_cps:.3e} c/s ({recorded_speedup:.2}x over scalar), live {live_cps:.3e} c/s"
    );
    if live_cps < 0.8 * recorded_cps {
        eprintln!(
            "FAIL: live batched throughput {live_cps:.3e} c/s regressed below 0.8x the recorded {recorded_cps:.3e} c/s"
        );
        std::process::exit(1);
    }
    println!("OK: trajectory file is well-formed and live throughput is within budget");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => record(),
        Some("--check") if args.len() == 1 => check(),
        _ => {
            eprintln!("usage: record_screening [--check]");
            std::process::exit(2);
        }
    }
}

//! Records the whole-network exploration trajectory to `BENCH_network.json`.
//!
//! Network evaluation is the end-to-end workload this repo optimises: every
//! distinct layer shape costs one genetic exploration, so wall-clock is
//! governed by (a) how many shapes explore concurrently and (b) whether a
//! previous process already persisted the answers. This binary measures one
//! ResNet-18 AMOS evaluation on the V100-like accelerator through three
//! layers — sequential cold, parallel cold, and disk-warm (a fresh process
//! image answering everything from a populated `--cache-dir`) — asserts all
//! of them bit-identical first, and writes the committed trajectory file at
//! the repository root:
//!
//! ```text
//! cargo run --release -p amos-bench --bin record_network            # re-record
//! cargo run --release -p amos-bench --bin record_network -- --check # CI gate
//! ```
//!
//! `--check` fails (exit 1) when the committed file is malformed, when its
//! recorded warm-process speedup is below 2.0x, or when the live warm
//! speedup has regressed to under 0.8x the recorded one.
//!
//! JSON is written and read by tiny flat-schema helpers — the build
//! environment is offline, so no serde.

use amos_baselines::{NetworkCost, NetworkEvaluator, System};
use amos_core::{CacheConfig, Engine, ExplorerConfig};
use amos_hw::catalog;
use amos_workloads::networks;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One ResNet-18 AMOS evaluation through an evaluator built by `make`,
/// returning the cost and the wall seconds. Each call builds a fresh
/// evaluator, so nothing leaks between timing sets.
fn run_once(make: impl Fn() -> NetworkEvaluator) -> (NetworkCost, f64) {
    let accel = catalog::v100();
    let net = networks::resnet18();
    let mut ev = make();
    let start = Instant::now();
    let cost = ev.evaluate(System::Amos, &net, 1, &accel);
    (cost, start.elapsed().as_secs_f64())
}

/// Best-of-`sets` wall seconds (and the cost, asserted stable across sets).
/// The minimum filters scheduler noise, which matters for a file whose
/// values gate CI.
fn best_run(make: impl Fn() -> NetworkEvaluator, sets: usize) -> (NetworkCost, f64) {
    let mut best = f64::INFINITY;
    let mut cost: Option<NetworkCost> = None;
    for _ in 0..sets {
        let (c, secs) = run_once(&make);
        if let Some(prev) = &cost {
            assert_eq!(prev, &c, "evaluation must be deterministic across runs");
        }
        cost = Some(c);
        best = best.min(secs);
    }
    (cost.expect("at least one set"), best)
}

fn disk_evaluator(dir: &Path) -> NetworkEvaluator {
    let engine = Engine::with_cache(
        ExplorerConfig::default(),
        CacheConfig {
            cache_dir: Some(dir.to_path_buf()),
        },
    );
    NetworkEvaluator::with_engine(engine)
}

struct Sample {
    sequential_cold_seconds: f64,
    parallel_cold_seconds: f64,
    populate_seconds: f64,
    warm_seconds: f64,
}

impl Sample {
    fn parallel_speedup(&self) -> f64 {
        self.sequential_cold_seconds / self.parallel_cold_seconds
    }
    fn warm_speedup(&self) -> f64 {
        self.parallel_cold_seconds / self.warm_seconds
    }
}

/// Measures every layer, asserting all of them bit-identical before any
/// number is trusted.
fn measure() -> Sample {
    let dir = std::env::temp_dir().join(format!("amos-record-network-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (seq_cost, sequential_cold_seconds) = best_run(|| NetworkEvaluator::new().with_jobs(1), 3);
    let (par_cost, parallel_cold_seconds) = best_run(NetworkEvaluator::new, 3);
    // Populate the disk tier once (a cold process writing through)...
    let (populate_cost, populate_seconds) = run_once(|| disk_evaluator(&dir));
    // ... then time fresh process images answering purely from disk.
    let (warm_cost, warm_seconds) = best_run(|| disk_evaluator(&dir), 3);

    assert_eq!(seq_cost, par_cost, "parallel wave must not change the cost");
    assert_eq!(
        seq_cost, populate_cost,
        "disk tier must not change the cost"
    );
    assert_eq!(
        seq_cost, warm_cost,
        "persisted answers must be bit-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
    Sample {
        sequential_cold_seconds,
        parallel_cold_seconds,
        populate_seconds,
        warm_seconds,
    }
}

/// Path of the committed trajectory file: the repository root, two levels
/// above this crate's manifest.
fn trajectory_path() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_network.json")
}

fn render_json(s: &Sample) -> String {
    format!(
        "{{\n  \"schema\": 1,\n  \"network\": \"resnet18\",\n  \"accelerator\": \"v100\",\n  \
         \"sequential_cold_seconds\": {:.6},\n  \"parallel_cold_seconds\": {:.6},\n  \
         \"populate_seconds\": {:.6},\n  \"warm_seconds\": {:.6},\n  \
         \"parallel_speedup\": {:.3},\n  \"warm_speedup\": {:.3}\n}}\n",
        s.sequential_cold_seconds,
        s.parallel_cold_seconds,
        s.populate_seconds,
        s.warm_seconds,
        s.parallel_speedup(),
        s.warm_speedup()
    )
}

/// Extracts the number following `"key":` in the flat JSON this binary
/// writes. `None` (missing or unparsable) counts as "malformed" for the
/// `--check` gate.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn record() {
    let sample = measure();
    let json = render_json(&sample);
    let path = trajectory_path();
    std::fs::write(&path, &json).expect("write BENCH_network.json");
    println!("wrote {}:\n{json}", path.display());
}

fn check() {
    let path = trajectory_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let schema = json_number(&text, "schema");
    let recorded_warm = json_number(&text, "warm_speedup");
    let recorded_parallel = json_number(&text, "parallel_speedup");
    let (Some(schema), Some(recorded_warm), Some(_)) = (schema, recorded_warm, recorded_parallel)
    else {
        eprintln!("FAIL: {} is malformed (missing keys)", path.display());
        std::process::exit(1);
    };
    assert_eq!(schema, 1.0, "unknown trajectory schema");
    if recorded_warm < 2.0 {
        eprintln!(
            "FAIL: recorded warm-process speedup {recorded_warm:.3}x is below the 2.0x floor"
        );
        std::process::exit(1);
    }
    let live = measure();
    let live_warm = live.warm_speedup();
    println!(
        "recorded warm speedup {recorded_warm:.2}x, live {live_warm:.2}x \
         (cold {:.3}s -> warm {:.3}s)",
        live.parallel_cold_seconds, live.warm_seconds
    );
    if live_warm < 0.8 * recorded_warm {
        eprintln!(
            "FAIL: live warm speedup {live_warm:.2}x regressed below 0.8x the recorded {recorded_warm:.2}x"
        );
        std::process::exit(1);
    }
    println!("OK: trajectory file is well-formed and the disk tier still pays for itself");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => record(),
        Some("--check") if args.len() == 1 => check(),
        _ => {
            eprintln!("usage: record_network [--check]");
            std::process::exit(2);
        }
    }
}

//! Records the whole-network exploration trajectory to `BENCH_network.json`.
//!
//! Network evaluation is the end-to-end workload this repo optimises: every
//! distinct layer shape costs one genetic exploration, so wall-clock is
//! governed by (a) how many shapes explore concurrently on the persistent
//! worker pool and (b) whether a previous process already persisted the
//! answers. This binary measures AMOS evaluations of a multi-network
//! workload (ResNet-18/50, MobileNet-V1, BERT-base, ShuffleNet and
//! MI-LSTM across several batch sizes, exploration depth raised so a cold
//! sequential pass takes ≥ 1 s — small enough for
//! CI, large enough that parallelism is measurable) on the V100-like
//! accelerator through four layers — a cold jobs-scaling curve
//! (jobs ∈ {1, 2, 4, 8}), parallel cold at the machine's full budget, and
//! disk-warm (a fresh process image answering everything from a populated
//! `--cache-dir`) — asserts every layer bit-identical first, and writes the
//! committed trajectory file at the repository root:
//!
//! ```text
//! cargo run --release -p amos-bench --bin record_network            # re-record
//! cargo run --release -p amos-bench --bin record_network -- --check # CI gate
//! ```
//!
//! `--check` fails (exit 1) when the committed file is malformed, when its
//! recorded warm-process speedup is below 2.0x, when the live warm speedup
//! has regressed to under 0.8x the recorded one, or — on machines with at
//! least [`MIN_PARALLEL_CORES`] cores — when the recorded or live parallel
//! speedup is below 2.0x. The parallel floor is conditional on the core
//! count (recorded `cores` for the recorded value, the live machine for
//! the live value): a 1- or 2-core runner cannot honestly show 2x.
//!
//! JSON is written and read by tiny flat-schema helpers — the build
//! environment is offline, so no serde.

use amos_baselines::{NetworkCost, NetworkEvaluator, System};
use amos_bench::json_number;
use amos_core::{CacheConfig, Engine, ExplorerConfig};
use amos_hw::catalog;
use amos_workloads::networks::{self, Network};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Exploration-budget multiplier for every search in this workload (see
/// `NetworkEvaluator::with_depth`): scales each search's generation count
/// so the cold sequential pass runs ≥ 1 s.
const DEPTH: usize = 48;

/// Core count below which the 2.0x parallel-speedup floor is not enforced.
const MIN_PARALLEL_CORES: f64 = 4.0;

/// The jobs values of the recorded cold scaling curve.
const CURVE_JOBS: [usize; 4] = [1, 2, 4, 8];

/// The evaluated (network, batch) combinations. Distinct batches produce
/// distinct layer shapes, so each combo adds a fresh set of explorations —
/// wall-clock scales with the distinct-shape count, and a wide shape set
/// keeps a multi-core wave busy (the speedup on N cores is limited by the
/// longest single-shape search relative to the total).
fn combos() -> Vec<(Network, i64)> {
    let batches = [1, 2, 4, 8, 16];
    let mut combos: Vec<(Network, i64)> = Vec::new();
    for b in batches {
        combos.push((networks::resnet18(), b));
        combos.push((networks::mobilenet_v1(), b));
    }
    for b in [1, 16] {
        combos.push((networks::resnet50(), b));
        combos.push((networks::bert_base(), b));
        combos.push((networks::shufflenet(), b));
    }
    combos.push((networks::mi_lstm(), 1));
    combos
}

fn workload_name() -> String {
    "resnet18+mobilenet_v1 @ batch {1,2,4,8,16}; resnet50+bert_base+shufflenet @ batch {1,16}; mi_lstm @ 1".to_string()
}

/// One AMOS pass over every combo through an evaluator built by `make`,
/// returning the per-combo costs and the wall seconds. Each call builds a
/// fresh evaluator, so nothing leaks between timing sets.
fn run_once(make: impl Fn() -> NetworkEvaluator) -> (Vec<NetworkCost>, f64) {
    let accel = catalog::v100();
    let mut ev = make();
    let start = Instant::now();
    let costs = combos()
        .iter()
        .map(|(net, batch)| ev.evaluate(System::Amos, net, *batch, &accel))
        .collect();
    (costs, start.elapsed().as_secs_f64())
}

/// Best-of-`sets` wall seconds (and the costs, asserted stable across
/// sets). The minimum filters scheduler noise, which matters for a file
/// whose values gate CI.
fn best_run(make: impl Fn() -> NetworkEvaluator, sets: usize) -> (Vec<NetworkCost>, f64) {
    let mut best = f64::INFINITY;
    let mut costs: Option<Vec<NetworkCost>> = None;
    for _ in 0..sets {
        let (c, secs) = run_once(&make);
        if let Some(prev) = &costs {
            assert_eq!(prev, &c, "evaluation must be deterministic across runs");
        }
        costs = Some(c);
        best = best.min(secs);
    }
    (costs.expect("at least one set"), best)
}

fn fresh_evaluator(jobs: usize) -> NetworkEvaluator {
    NetworkEvaluator::new().with_depth(DEPTH).with_jobs(jobs)
}

fn disk_evaluator(dir: &Path) -> NetworkEvaluator {
    let engine = Engine::with_cache(
        ExplorerConfig::default(),
        CacheConfig {
            cache_dir: Some(dir.to_path_buf()),
        },
    );
    NetworkEvaluator::with_engine(engine).with_depth(DEPTH)
}

struct Sample {
    cores: usize,
    /// Cold wall seconds per `CURVE_JOBS` entry.
    curve: [f64; CURVE_JOBS.len()],
    parallel_cold_seconds: f64,
    populate_seconds: f64,
    warm_seconds: f64,
    pool: amos_core::PoolStats,
}

impl Sample {
    fn sequential_cold_seconds(&self) -> f64 {
        self.curve[0]
    }
    fn parallel_speedup(&self) -> f64 {
        self.sequential_cold_seconds() / self.parallel_cold_seconds
    }
    fn warm_speedup(&self) -> f64 {
        self.parallel_cold_seconds / self.warm_seconds
    }
}

/// Measures every layer, asserting all of them bit-identical before any
/// number is trusted.
fn measure() -> Sample {
    let dir = std::env::temp_dir().join(format!("amos-record-network-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold jobs-scaling curve. jobs=1 is the sequential baseline.
    let mut curve = [0.0; CURVE_JOBS.len()];
    let mut reference: Option<Vec<NetworkCost>> = None;
    for (slot, &jobs) in CURVE_JOBS.iter().enumerate() {
        let (costs, secs) = best_run(|| fresh_evaluator(jobs), 2);
        if let Some(prev) = &reference {
            assert_eq!(prev, &costs, "jobs={jobs} must not change any cost");
        }
        reference = Some(costs);
        curve[slot] = secs;
    }
    let reference = reference.expect("curve ran");

    // Cold at the machine's full thread budget (jobs = 0).
    let (par_costs, parallel_cold_seconds) = best_run(|| fresh_evaluator(0), 2);
    assert_eq!(
        reference, par_costs,
        "full-budget wave must not change any cost"
    );

    // Populate the disk tier once (a cold process writing through)...
    let (populate_costs, populate_seconds) = run_once(|| disk_evaluator(&dir));
    assert_eq!(reference, populate_costs, "disk tier must not change costs");
    // ... then time fresh process images answering purely from disk.
    let (warm_costs, warm_seconds) = best_run(|| disk_evaluator(&dir), 2);
    assert_eq!(
        reference, warm_costs,
        "persisted answers must be bit-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
    Sample {
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        curve,
        parallel_cold_seconds,
        populate_seconds,
        warm_seconds,
        pool: amos_core::pool_stats(),
    }
}

/// Path of the committed trajectory file: the repository root, two levels
/// above this crate's manifest.
fn trajectory_path() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_network.json")
}

fn render_json(s: &Sample) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"workload\": \"{}\",\n", workload_name()));
    out.push_str("  \"accelerator\": \"v100\",\n");
    out.push_str(&format!("  \"depth\": {DEPTH},\n"));
    out.push_str(&format!("  \"cores\": {},\n", s.cores));
    for (slot, &jobs) in CURVE_JOBS.iter().enumerate() {
        out.push_str(&format!(
            "  \"cold_seconds_jobs{jobs}\": {:.6},\n",
            s.curve[slot]
        ));
    }
    out.push_str(&format!(
        "  \"sequential_cold_seconds\": {:.6},\n",
        s.sequential_cold_seconds()
    ));
    out.push_str(&format!(
        "  \"parallel_cold_seconds\": {:.6},\n",
        s.parallel_cold_seconds
    ));
    out.push_str(&format!(
        "  \"populate_seconds\": {:.6},\n",
        s.populate_seconds
    ));
    out.push_str(&format!("  \"warm_seconds\": {:.6},\n", s.warm_seconds));
    out.push_str(&format!(
        "  \"parallel_speedup\": {:.3},\n",
        s.parallel_speedup()
    ));
    out.push_str(&format!("  \"warm_speedup\": {:.3},\n", s.warm_speedup()));
    out.push_str(&format!("  \"pool_threads\": {},\n", s.pool.threads));
    out.push_str(&format!("  \"pool_waves\": {},\n", s.pool.waves));
    out.push_str(&format!("  \"pool_tasks\": {},\n", s.pool.tasks));
    out.push_str(&format!("  \"pool_chunks\": {}\n", s.pool.chunks));
    out.push_str("}\n");
    out
}

fn record() {
    let sample = measure();
    let json = render_json(&sample);
    let path = trajectory_path();
    std::fs::write(&path, &json).expect("write BENCH_network.json");
    println!("wrote {}:\n{json}", path.display());
}

fn check() {
    let path = trajectory_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let schema = json_number(&text, "schema");
    let recorded_cores = json_number(&text, "cores");
    let recorded_warm = json_number(&text, "warm_speedup");
    let recorded_parallel = json_number(&text, "parallel_speedup");
    let recorded_seq = json_number(&text, "sequential_cold_seconds");
    let (
        Some(schema),
        Some(recorded_cores),
        Some(recorded_warm),
        Some(recorded_parallel),
        Some(recorded_seq),
    ) = (
        schema,
        recorded_cores,
        recorded_warm,
        recorded_parallel,
        recorded_seq,
    )
    else {
        eprintln!("FAIL: {} is malformed (missing keys)", path.display());
        std::process::exit(1);
    };
    assert_eq!(schema, 2.0, "unknown trajectory schema");
    if recorded_seq < 1.0 {
        eprintln!(
            "FAIL: recorded sequential cold pass took {recorded_seq:.3}s — the workload is \
             too small to measure parallelism (floor: 1 s)"
        );
        std::process::exit(1);
    }
    if recorded_warm < 2.0 {
        eprintln!(
            "FAIL: recorded warm-process speedup {recorded_warm:.3}x is below the 2.0x floor"
        );
        std::process::exit(1);
    }
    if recorded_cores >= MIN_PARALLEL_CORES && recorded_parallel < 2.0 {
        eprintln!(
            "FAIL: recorded parallel speedup {recorded_parallel:.3}x is below the 2.0x floor \
             (recorded on {recorded_cores:.0} cores)"
        );
        std::process::exit(1);
    }
    let live = measure();
    let live_warm = live.warm_speedup();
    let live_parallel = live.parallel_speedup();
    println!(
        "recorded warm speedup {recorded_warm:.2}x, live {live_warm:.2}x \
         (cold {:.3}s -> warm {:.3}s)",
        live.parallel_cold_seconds, live.warm_seconds
    );
    println!(
        "recorded parallel speedup {recorded_parallel:.2}x on {recorded_cores:.0} cores, \
         live {live_parallel:.2}x on {} cores (seq {:.3}s -> parallel {:.3}s)",
        live.cores,
        live.sequential_cold_seconds(),
        live.parallel_cold_seconds
    );
    if live_warm < 0.8 * recorded_warm {
        eprintln!(
            "FAIL: live warm speedup {live_warm:.2}x regressed below 0.8x the recorded {recorded_warm:.2}x"
        );
        std::process::exit(1);
    }
    if live.cores as f64 >= MIN_PARALLEL_CORES && live_parallel < 2.0 {
        eprintln!(
            "FAIL: live parallel speedup {live_parallel:.2}x is below the 2.0x floor on a \
             {}-core machine",
            live.cores
        );
        std::process::exit(1);
    }
    println!(
        "OK: trajectory file is well-formed; the pool and the disk tier still pay for themselves"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => record(),
        Some("--check") if args.len() == 1 => check(),
        _ => {
            eprintln!("usage: record_network [--check]");
            std::process::exit(2);
        }
    }
}

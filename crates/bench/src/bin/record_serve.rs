//! Records the `amosd` service trajectory to `BENCH_serve.json`.
//!
//! The serve layer's value is measured on two axes: (a) in-flight request
//! deduplication — N concurrent identical requests must collapse onto one
//! exploration, so the dedup ratio under a synchronized burst should be
//! close to 1.0 — and (b) answer latency once the disk tier holds the
//! result, reported as p50/p99 over a run of sequential cached repeats.
//! Both are measured against a live in-process daemon over a real Unix
//! socket, so the numbers include the full request path (connect, encode,
//! dispatch, cache lookup, render, reply):
//!
//! ```text
//! cargo run --release -p amos-bench --bin record_serve            # re-record
//! cargo run --release -p amos-bench --bin record_serve -- --check # CI gate
//! ```
//!
//! `--check` fails (exit 1) when the committed file is malformed, when it
//! records unanswered requests or a dedup ratio below 0.5, or when a live
//! re-measurement violates the same floors. The latency gate is
//! deliberately loose (p50 under 500 ms for a cached repeat) — it pins the
//! structural fact that repeats are served from cache rather than
//! re-explored, not a machine-dependent microsecond figure.
//!
//! JSON is written and read by tiny flat-schema helpers — the build
//! environment is offline, so no serde.

use amos_bench::json_number;
use amos_core::ExplorerConfig;
use amos_serve::proto::{ExploreRequest, Request, Response};
use amos_serve::{client, RetryPolicy, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Concurrent identical requests in the dedup burst.
const BURST: usize = 8;

/// Sequential cached repeats timed for the latency distribution.
const REPEATS: usize = 20;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("amos-record-serve-{tag}-{}", std::process::id()))
}

fn one_shot() -> RetryPolicy {
    RetryPolicy {
        attempts: 1,
        ..RetryPolicy::default()
    }
}

fn explore_req(deadline_ms: Option<u64>) -> Request {
    Request::Explore(ExploreRequest {
        spec: "gmm:64x64x64".into(),
        accel: None,
        seed: None,
        deadline_ms,
        max_evaluations: None,
        max_measurements: None,
    })
}

fn start(config: ServeConfig) -> (PathBuf, std::thread::JoinHandle<Result<(), String>>) {
    let socket = config.socket.clone();
    let server = Server::bind(config).expect("bind amosd");
    let handle = std::thread::spawn(move || server.run());
    (socket, handle)
}

fn drain(socket: &Path, handle: std::thread::JoinHandle<Result<(), String>>) {
    let (resp, _) = client::submit(socket, &Request::Drain, &one_shot()).expect("drain");
    assert_eq!(resp, Response::Drained);
    handle.join().unwrap().expect("daemon must exit cleanly");
}

fn server_stats(socket: &Path) -> amos_serve::ServerStats {
    match client::submit(socket, &Request::Stats, &one_shot())
        .unwrap()
        .0
    {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

struct Sample {
    requests: usize,
    answered: usize,
    dedup_candidates: u64,
    dedup_joined: u64,
    repeat_requests: usize,
    p50_ms: f64,
    p99_ms: f64,
}

impl Sample {
    fn dedup_ratio(&self) -> f64 {
        if self.dedup_candidates == 0 {
            return 1.0;
        }
        self.dedup_joined as f64 / self.dedup_candidates as f64
    }
}

/// A synchronized burst of identical requests against a search far slower
/// than their shared deadline: every request must be answered, and all but
/// the flight owner should join the owner's exploration.
fn measure_dedup() -> (usize, usize, u64, u64) {
    let socket = tmp_path("dedup.sock");
    let _ = std::fs::remove_file(&socket);
    let mut config = ServeConfig::new(&socket);
    config.base = ExplorerConfig {
        generations: 1_000_000,
        population: 8,
        survivors: 4,
        measure_top: 2,
        seed: 11,
        jobs: 1,
        ..ExplorerConfig::default()
    };
    config.grace_ms = 10_000;
    let (socket, handle) = start(config);

    let mut threads = Vec::new();
    for _ in 0..BURST {
        let socket = socket.clone();
        threads.push(std::thread::spawn(move || {
            client::submit(&socket, &explore_req(Some(1_000)), &one_shot())
                .expect("submit")
                .0
        }));
    }
    let answered = threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .filter(|r| matches!(r, Response::Ok(_)))
        .count();
    let stats = server_stats(&socket);
    drain(&socket, handle);
    (BURST, answered, (BURST - 1) as u64, stats.dedup_joined)
}

/// One cold exploration to populate the disk tier, then timed sequential
/// repeats — each a full socket round-trip answered from cache.
fn measure_latency() -> (usize, f64, f64) {
    let socket = tmp_path("latency.sock");
    let cache_dir = tmp_path("latency-cache");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut config = ServeConfig::new(&socket);
    config.base = ExplorerConfig {
        population: 6,
        generations: 2,
        survivors: 3,
        measure_top: 2,
        seed: 11,
        jobs: 1,
        ..ExplorerConfig::default()
    };
    config.cache_dir = Some(cache_dir.clone());
    let (socket, handle) = start(config);

    let (cold, _) = client::submit(&socket, &explore_req(None), &one_shot()).expect("cold");
    assert!(matches!(cold, Response::Ok(_)), "{cold:?}");

    let mut latencies_ms: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let started = Instant::now();
            let (resp, _) =
                client::submit(&socket, &explore_req(None), &one_shot()).expect("repeat");
            assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
            started.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = latencies_ms[REPEATS / 2];
    let p99 = latencies_ms[REPEATS - 1];

    drain(&socket, handle);
    let _ = std::fs::remove_dir_all(&cache_dir);
    (REPEATS, p50, p99)
}

fn measure() -> Sample {
    let (requests, answered, dedup_candidates, dedup_joined) = measure_dedup();
    let (repeat_requests, p50_ms, p99_ms) = measure_latency();
    Sample {
        requests,
        answered,
        dedup_candidates,
        dedup_joined,
        repeat_requests,
        p50_ms,
        p99_ms,
    }
}

/// Path of the committed trajectory file: the repository root, two levels
/// above this crate's manifest.
fn trajectory_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

fn render_json(s: &Sample) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"workload\": \"gmm:64x64x64 on v100 via amosd over a unix socket\",\n");
    out.push_str(&format!("  \"requests\": {},\n", s.requests));
    out.push_str(&format!("  \"answered\": {},\n", s.answered));
    out.push_str(&format!(
        "  \"dedup_candidates\": {},\n",
        s.dedup_candidates
    ));
    out.push_str(&format!("  \"dedup_joined\": {},\n", s.dedup_joined));
    out.push_str(&format!("  \"dedup_ratio\": {:.3},\n", s.dedup_ratio()));
    out.push_str(&format!("  \"repeat_requests\": {},\n", s.repeat_requests));
    out.push_str(&format!("  \"p50_ms\": {:.3},\n", s.p50_ms));
    out.push_str(&format!("  \"p99_ms\": {:.3}\n", s.p99_ms));
    out.push_str("}\n");
    out
}

/// The floors a sample must clear, recorded or live. These are structural
/// facts about the service, not machine-speed figures.
fn enforce_floors(tag: &str, requests: f64, answered: f64, dedup_ratio: f64, p50_ms: f64) {
    if answered < requests {
        eprintln!("FAIL: {tag} answered {answered:.0} of {requests:.0} requests");
        std::process::exit(1);
    }
    if dedup_ratio < 0.5 {
        eprintln!("FAIL: {tag} dedup ratio {dedup_ratio:.3} is below the 0.5 floor");
        std::process::exit(1);
    }
    if p50_ms >= 500.0 {
        eprintln!(
            "FAIL: {tag} cached-repeat p50 {p50_ms:.1} ms — repeats are not being served \
             from cache (floor: 500 ms)"
        );
        std::process::exit(1);
    }
}

fn record() {
    let sample = measure();
    let json = render_json(&sample);
    let path = trajectory_path();
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {}:\n{json}", path.display());
}

fn check() {
    let path = trajectory_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let (Some(schema), Some(requests), Some(answered), Some(ratio), Some(p50), Some(p99)) = (
        json_number(&text, "schema"),
        json_number(&text, "requests"),
        json_number(&text, "answered"),
        json_number(&text, "dedup_ratio"),
        json_number(&text, "p50_ms"),
        json_number(&text, "p99_ms"),
    ) else {
        eprintln!("FAIL: {} is malformed (missing keys)", path.display());
        std::process::exit(1);
    };
    assert_eq!(schema, 1.0, "unknown trajectory schema");
    enforce_floors("recorded", requests, answered, ratio, p50);
    let live = measure();
    println!(
        "recorded dedup ratio {ratio:.3}, live {:.3} ({} joined of {} candidates)",
        live.dedup_ratio(),
        live.dedup_joined,
        live.dedup_candidates
    );
    println!(
        "recorded cached-repeat p50 {p50:.2} ms / p99 {p99:.2} ms, live p50 {:.2} ms / p99 {:.2} ms",
        live.p50_ms, live.p99_ms
    );
    enforce_floors(
        "live",
        live.requests as f64,
        live.answered as f64,
        live.dedup_ratio(),
        live.p50_ms,
    );
    println!("OK: trajectory file is well-formed; dedup and the cached fast path still hold");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => record(),
        Some("--check") if args.len() == 1 => check(),
        _ => {
            eprintln!("usage: record_serve [--check]");
            std::process::exit(2);
        }
    }
}

//! §7.5 "New Accelerators": mapping 3D convolution onto three virtual
//! spatial accelerators whose intrinsics sit at the three BLAS levels —
//! AXPY (level 1), GEMV (level 2) and a pointwise/line CONV engine
//! (level 3) — defined purely through the hardware abstraction.

use amos_core::{Explorer, ExplorerConfig, MappingGenerator};
use amos_hw::catalog;
use amos_workloads::ops;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_section() {
    amos_bench::banner("Section 7.5: C3D mapping counts on virtual accelerators");
    let generator = MappingGenerator::new();
    let c3d = ops::c3d(2, 8, 8, 6, 6, 6, 3, 3, 3);
    let paper = [
        ("virtual-axpy", 15),
        ("virtual-gemv", 7),
        ("virtual-conv", 31),
    ];
    println!("{:<16} {:>6}  paper", "accelerator", "ours");
    for (accel, (_, p)) in [
        catalog::virtual_axpy(),
        catalog::virtual_gemv(),
        catalog::virtual_conv(),
    ]
    .iter()
    .zip(paper)
    {
        println!(
            "{:<16} {:>6}  {}",
            accel.name,
            generator.count(&c3d, &accel.intrinsic),
            p
        );
    }

    println!("\nend-to-end exploration on each unit:");
    for accel in [
        catalog::virtual_axpy(),
        catalog::virtual_gemv(),
        catalog::virtual_conv(),
    ] {
        let explorer = Explorer::with_config(ExplorerConfig {
            population: 16,
            generations: 4,
            survivors: 4,
            measure_top: 3,
            seed: 75,
            jobs: 0,
            ..Default::default()
        });
        match explorer.explore(&c3d, &accel) {
            Ok(r) => println!(
                "  {:<16} best {} -> {:.0} cycles",
                accel.name,
                r.best_program.mapping_string(),
                r.cycles()
            ),
            Err(e) => println!("  {:<16} {e}", accel.name),
        }
    }
}

fn bench(c: &mut Criterion) {
    print_section();
    let generator = MappingGenerator::new();
    let c3d = ops::c3d(2, 8, 8, 6, 6, 6, 3, 3, 3);
    let conv_unit = catalog::conv_unit();
    let mut group = c.benchmark_group("sec75");
    group.sample_size(20);
    group.bench_function("enumerate_c3d_on_conv_unit", |b| {
        b.iter(|| {
            generator
                .enumerate(std::hint::black_box(&c3d), &conv_unit)
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 8: other accelerators.
//!
//! Part a — C2D layers C0–C11 on the AVX-512 VNNI CPU, AMOS relative to the
//! TVM expert template (paper: 1.37x average, TVM wins only C2).
//!
//! Part b — MobileNet-V2 C2D and DEP layers on the Mali G76 dot units,
//! absolute GOPS for AutoTVM and AMOS (paper: up to 25.04x; AutoTVM fails
//! with internal errors on depthwise layers 2-4, reproduced here as template
//! failures).

use amos_baselines::{evaluate, fixed_mapping, geomean, FixedKind, System};
use amos_core::Explorer;
use amos_hw::{catalog, AcceleratorSpec};
use amos_ir::ComputeDef;
use amos_workloads::{configs, ops};
use criterion::{criterion_group, criterion_main, Criterion};

fn part_a() {
    amos_bench::banner("Figure 8a: ResNet-18 C2D on AVX-512 VNNI CPU, relative to TVM");
    let accel = catalog::xeon_avx512();
    println!("{:<6} {:>10} {:>12}", "layer", "TVM", "AMOS");
    let mut speedups = Vec::new();
    for (label, mut sh) in configs::resnet18_conv_layers(16) {
        sh.n = 1; // the CPU experiment runs single-image inference
        let def = ops::c2d(sh);
        let seed = amos_bench::stable_seed(&label);
        let tvm = evaluate(System::Tvm, &def, &accel, seed);
        let amos = evaluate(System::Amos, &def, &accel, seed);
        let s = tvm.cycles / amos.cycles;
        speedups.push(s);
        println!("{:<6} {:>10.2} {:>12.2}", label, 1.0, s);
    }
    println!(
        "GEO    {:>10.2} {:>12.2}  (paper: 1.37x)",
        1.0,
        geomean(&speedups)
    );
}

/// AutoTVM's Bifrost template, including the internal errors the paper
/// reports on depthwise layers 2-4 (it cannot generate code for them).
fn autotvm_mali(
    def: &ComputeDef,
    accel: &AcceleratorSpec,
    dep_layer: Option<usize>,
    seed: u64,
) -> Option<f64> {
    if matches!(dep_layer, Some(1..=3)) {
        return None; // reproduced internal errors on layers 2-4 (1-indexed)
    }
    let mapping = fixed_mapping(def, &accel.intrinsic, FixedKind::FuseHw)?;
    let explorer = Explorer::with_config(amos_baselines::systems::tuning_budget(seed));
    explorer
        .explore_mappings(def, accel, Some(vec![mapping]))
        .ok()
        .map(|r| r.cycles())
}

fn part_b() {
    amos_bench::banner("Figure 8b: MobileNet-V2 layers on Mali G76 dot units (absolute GOPS)");
    let accel = catalog::mali_g76();
    // Seven pointwise conv / depthwise pairs from MobileNet-V2.
    let layers: [(i64, i64); 7] = [
        (32, 112),
        (96, 56),
        (144, 56),
        (144, 28),
        (192, 14),
        (384, 14),
        (576, 7),
    ];
    println!(
        "{:<10} {:>14} {:>14}   {:>14} {:>14}",
        "layer", "C2D AutoTVM", "C2D AMOS", "DEP AutoTVM", "DEP AMOS"
    );
    for (idx, (c, p)) in layers.iter().enumerate() {
        let conv = ops::c2d(ops::ConvShape {
            n: 1,
            c: *c,
            k: *c,
            p: *p,
            q: *p,
            r: 1,
            s: 1,
            stride: 1,
        });
        let dep = ops::dep(1, *c, *p, *p, 3, 3);
        let seed = amos_bench::stable_seed(&format!("mali{idx}"));

        let gops = |def: &ComputeDef, cycles: Option<f64>| -> String {
            match cycles {
                Some(cy) => format!("{:.2}", accel.gflops(def.scalar_ops(), cy)),
                None => "failed".to_string(),
            }
        };
        let conv_autotvm = autotvm_mali(&conv, &accel, None, seed);
        let conv_amos = Some(evaluate(System::Amos, &conv, &accel, seed).cycles);
        let dep_autotvm = autotvm_mali(&dep, &accel, Some(idx), seed);
        let dep_amos = Some(evaluate(System::Amos, &dep, &accel, seed).cycles);
        println!(
            "{:<10} {:>14} {:>14}   {:>14} {:>14}",
            format!("L{} c{}", idx + 1, c),
            gops(&conv, conv_autotvm),
            gops(&conv, conv_amos),
            gops(&dep, dep_autotvm),
            gops(&dep, dep_amos),
        );
    }
    println!("\npaper: AMOS up to 25.04x AutoTVM; AutoTVM fails DEP layers 2-4");
}

fn bench(c: &mut Criterion) {
    part_a();
    part_b();

    let accel = catalog::xeon_avx512();
    let def = ops::c2d(ops::ConvShape {
        n: 1,
        c: 64,
        k: 64,
        p: 28,
        q: 28,
        r: 3,
        s: 3,
        stride: 1,
    });
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("amos_on_vnni_cpu", |b| {
        b.iter(|| evaluate(System::Amos, &def, &accel, 8).cycles)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: the compiled simulation hot path.
//!
//! Two experiments back the "compile, don't interpret" claim:
//!
//! * **interp-vs-compiled** — functional execution of mapped programs over a
//!   Figure-6-style operator set, once through the compiled affine lane
//!   programs (`execute_mapped`) and once through the retained tree-walking
//!   interpreter (`execute_mapped_reference`). Outputs are asserted
//!   bit-identical before timing; the table reports lane throughput and the
//!   affine-hit ratio of the compiled index programs.
//! * **bitset-vs-naive** — Algorithm 1 validation (paper §5.2) through the
//!   word-parallel bit-packed kernels vs the naive `Vec<bool>`-style
//!   references, on conv-sized matching matrices.

use amos_core::validate::{algorithm1, algorithm1_naive, validation_calls};
use amos_core::MappingGenerator;
use amos_hw::catalog;
use amos_ir::{interp, BinMatrix, ComputeDef};
use amos_sim::{execute_mapped, execute_mapped_reference, execute_mapped_with_stats};
use amos_workloads::ops::{self, ConvShape};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Small instances of the Figure-6 operator families: large enough to spend
/// their time in the per-lane hot loops, small enough that the tree-walking
/// baseline still finishes quickly.
fn operator_set() -> Vec<(&'static str, ComputeDef)> {
    vec![
        ("gmm", ops::gmm(32, 32, 32)),
        ("gmv", ops::gmv(64, 64)),
        (
            "c2d",
            ops::c2d(ConvShape {
                n: 1,
                c: 16,
                k: 16,
                p: 7,
                q: 7,
                r: 3,
                s: 3,
                stride: 1,
            }),
        ),
        ("dep", ops::dep(1, 16, 7, 7, 3, 3)),
    ]
}

fn time_runs(mut f: impl FnMut(), reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn print_interp_vs_compiled() {
    amos_bench::banner("Ablation: compiled lane programs vs tree-walking interpreter");
    let intr = catalog::mini_mma_2x2x2();
    let generator = MappingGenerator::new();
    println!(
        "{:<5} {:>12} {:>14} {:>14} {:>8} {:>12}",
        "op", "lanes", "interp s/run", "compiled s/run", "speedup", "affine hits"
    );
    let mut speedups = Vec::new();
    for (name, def) in operator_set() {
        let mappings = generator.enumerate(&def, &intr);
        let prog = mappings[0].lower(&def, &intr).expect("lower");
        let tensors = interp::make_inputs(&def, amos_bench::stable_seed(name));
        // Correctness gate: the two executors must agree bit-for-bit
        // (this also warms the program's compiled cache).
        let (compiled_out, stats) = execute_mapped_with_stats(&prog, &tensors).expect("compiled");
        let interp_out = execute_mapped_reference(&prog, &tensors).expect("interp");
        assert_eq!(
            compiled_out.max_abs_diff(&interp_out),
            0.0,
            "{name}: compiled and interpreted executions diverge"
        );
        let reps = 10;
        let t_interp = time_runs(
            || {
                black_box(execute_mapped_reference(&prog, &tensors).unwrap());
            },
            reps,
        );
        let t_compiled = time_runs(
            || {
                black_box(execute_mapped(&prog, &tensors).unwrap());
            },
            reps,
        );
        let speedup = t_interp / t_compiled;
        speedups.push(speedup);
        println!(
            "{:<5} {:>12} {:>14.6} {:>14.6} {:>7.2}x {:>11.1}%",
            name,
            stats.total_lanes,
            t_interp,
            t_compiled,
            speedup,
            stats.affine_hit_ratio() * 100.0
        );
    }
    let geo = amos_baselines::geomean(&speedups);
    println!("GEO   {geo:>62.2}x (target: >= 3x)");
}

fn print_bitset_vs_naive() {
    amos_bench::banner("Ablation: bit-packed Algorithm 1 vs naive references");
    // Conv-on-WMMA-sized matrices (7 software iterations, 3 intrinsic
    // iterations, 3 operands), filled pseudo-randomly.
    let mut lcg = 0x2545f4914f6cdd1du64;
    let mut random = |rows: usize, cols: usize, density: u64| {
        let mut m = BinMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                m.set(i, j, lcg >> 61 < density);
            }
        }
        m
    };
    let cases: Vec<(BinMatrix, BinMatrix, BinMatrix)> = (0..64)
        .map(|_| (random(3, 7, 3), random(3, 7, 3), random(3, 3, 3)))
        .collect();
    let reps = 2_000;
    for (x, y, z) in &cases {
        assert_eq!(
            algorithm1(x, y, z),
            algorithm1_naive(x, y, z),
            "packed and naive Algorithm 1 disagree"
        );
    }
    let t_naive = time_runs(
        || {
            for (x, y, z) in &cases {
                black_box(algorithm1_naive(x, y, z));
            }
        },
        reps,
    );
    let t_packed = time_runs(
        || {
            for (x, y, z) in &cases {
                black_box(algorithm1(x, y, z));
            }
        },
        reps,
    );
    println!(
        "algorithm1 on 64 conv-sized triples: naive {:.2e} s, packed {:.2e} s, {:.2}x",
        t_naive,
        t_packed,
        t_naive / t_packed
    );
    let a = random(16, 130, 4);
    let b = random(130, 16, 4);
    let t_mul_naive = time_runs(
        || {
            black_box(a.bool_mul_naive(&b));
        },
        reps,
    );
    let t_mul = time_runs(
        || {
            black_box(a.bool_mul(&b));
        },
        reps,
    );
    println!(
        "bool_mul 16x130 * 130x16:            naive {:.2e} s, packed {:.2e} s, {:.2}x",
        t_mul_naive,
        t_mul,
        t_mul_naive / t_mul
    );
    println!(
        "Algorithm-1 validation calls this process: {}",
        validation_calls()
    );
}

fn bench(c: &mut Criterion) {
    print_interp_vs_compiled();
    print_bitset_vs_naive();

    let intr = catalog::mini_mma_2x2x2();
    let def = ops::gmm(32, 32, 32);
    let mapping = &MappingGenerator::new().enumerate(&def, &intr)[0];
    let prog = mapping.lower(&def, &intr).unwrap();
    let tensors = interp::make_inputs(&def, 7);

    let mut group = c.benchmark_group("interp-vs-compiled");
    group.sample_size(10);
    group.bench_function("compiled_gmm32", |b| {
        b.iter(|| execute_mapped(&prog, &tensors).unwrap())
    });
    group.bench_function("interp_gmm32", |b| {
        b.iter(|| execute_mapped_reference(&prog, &tensors).unwrap())
    });
    group.finish();

    let mut lcg = 0x9e3779b97f4a7c15u64;
    let mut random = |rows: usize, cols: usize| {
        let mut m = BinMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                m.set(i, j, lcg >> 62 == 0);
            }
        }
        m
    };
    let (x, y, z) = (random(3, 7), random(3, 7), random(3, 3));
    let mut group = c.benchmark_group("bitset-vs-naive");
    group.bench_function("algorithm1_packed", |b| {
        b.iter(|| algorithm1(black_box(&x), black_box(&y), black_box(&z)))
    });
    group.bench_function("algorithm1_naive", |b| {
        b.iter(|| algorithm1_naive(black_box(&x), black_box(&y), black_box(&z)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 2: operators mapped to Tensor Core per network — the fragile
//! XLA-style template matcher versus AMOS's automatic generation.

use amos_baselines::TemplateMatcher;
use amos_core::MappingGenerator;
use amos_hw::catalog;
use amos_workloads::networks;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    amos_bench::banner("Table 2: network operator coverage (XLA vs AMOS)");
    let matcher = TemplateMatcher::new();
    let generator = MappingGenerator::new();
    let wmma = catalog::wmma_16x16x16();
    let paper = [
        ("ShuffleNet", 70, 6, 50),
        ("ResNet-50", 71, 15, 54),
        ("MobileNet-V1", 30, 7, 29),
        ("Bert", 204, 42, 84),
        ("MI-LSTM", 11, 0, 9),
    ];
    println!(
        "{:<14} {:>6} {:>10} {:>11}   paper (total/xla/amos)",
        "network", "total", "XLA mapped", "AMOS mapped"
    );
    let nets = [
        networks::shufflenet(),
        networks::resnet50(),
        networks::mobilenet_v1(),
        networks::bert_base(),
        networks::mi_lstm(),
    ];
    for (net, (pname, pt, px, pa)) in nets.iter().zip(paper) {
        let mut xla = 0usize;
        let mut amos = 0usize;
        for grp in &net.groups {
            if let Some(def) = grp.op.compute_def(1) {
                if matcher.matches(&def) {
                    xla += grp.count;
                }
                if generator.count(&def, &wmma) > 0 {
                    amos += grp.count;
                }
            }
        }
        println!(
            "{:<14} {:>6} {:>10} {:>11}   {pname} {pt}/{px}/{pa}",
            net.name,
            net.total_ops(),
            xla,
            amos
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let matcher = TemplateMatcher::new();
    let generator = MappingGenerator::new();
    let wmma = catalog::wmma_16x16x16();
    let bert = networks::bert_base();
    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    group.bench_function("classify_bert_204_ops", |b| {
        b.iter(|| {
            let mut mapped = 0usize;
            for grp in &bert.groups {
                if let Some(def) = grp.op.compute_def(1) {
                    if matcher.matches(&def) || generator.count(&def, &wmma) > 0 {
                        mapped += grp.count;
                    }
                }
            }
            mapped
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

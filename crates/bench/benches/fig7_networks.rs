//! Figure 7: end-to-end network performance.
//!
//! Parts a–d — network speedup of AMOS over the PyTorch library path on
//! V100 and A100 at batch 1 and 16 (paper range: 0.91x on Bert/bs16/A100 up
//! to 10.42x on ShuffleNet/bs1/A100).
//!
//! Part e — ResNet-18/50 and MobileNet-V1 at batch 16/32 on A100 relative
//! to UNIT, comparing TVM and AMOS (paper: AMOS best in most cases).

use amos_baselines::{NetworkEvaluator, System};
use amos_hw::catalog;
use amos_workloads::networks;
use criterion::{criterion_group, criterion_main, Criterion};

fn parts_a_to_d(ev: &mut NetworkEvaluator) {
    for accel in [catalog::v100(), catalog::a100()] {
        for batch in [1i64, 16] {
            amos_bench::banner(&format!(
                "Figure 7: network speedup vs PyTorch, {} (batch {batch})",
                accel.name
            ));
            println!(
                "{:<14} {:>10} {:>16}",
                "network", "speedup", "AMOS tensor ops"
            );
            for net in networks::all_networks() {
                let torch = ev.evaluate(System::PyTorch, &net, batch, &accel);
                let amos = ev.evaluate(System::Amos, &net, batch, &accel);
                println!(
                    "{:<14} {:>10.2} {:>13}/{}",
                    net.name,
                    torch.total_cycles / amos.total_cycles,
                    amos.mapped_ops,
                    amos.total_ops
                );
            }
        }
    }
    println!("\npaper: 2.50x-10.42x at batch 1; Bert bs16/A100 is the 0.91x case");
}

fn part_e(ev: &mut NetworkEvaluator) {
    amos_bench::banner("Figure 7e: TVM and AMOS relative to UNIT, A100");
    let accel = catalog::a100();
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "network/batch", "UNIT", "TVM", "AMOS"
    );
    for net in [
        networks::resnet18(),
        networks::resnet50(),
        networks::mobilenet_v1(),
    ] {
        for batch in [16i64, 32] {
            let unit = ev.evaluate(System::Unit, &net, batch, &accel).total_cycles;
            let tvm = ev.evaluate(System::Tvm, &net, batch, &accel).total_cycles;
            let amos = ev.evaluate(System::Amos, &net, batch, &accel).total_cycles;
            println!(
                "{:<22} {:>8.2} {:>8.2} {:>8.2}",
                format!("{}-bs{batch}", net.name),
                1.0,
                unit / tvm,
                unit / amos
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut ev = NetworkEvaluator::new();
    parts_a_to_d(&mut ev);
    part_e(&mut ev);

    let accel = catalog::a100();
    let net = networks::mi_lstm();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("mi_lstm_network_evaluation", |b| {
        b.iter(|| {
            let mut fresh = NetworkEvaluator::new();
            fresh.evaluate(System::Amos, &net, 1, &accel).total_cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

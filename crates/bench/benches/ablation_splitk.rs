//! Ablation: the split-K schedule extension.
//!
//! The paper's schedule table (Table 3a) has no reduction-axis
//! parallelisation; AMOS-rs adds a split-K dimension with a combine-pass
//! epilogue. This ablation quantifies when it matters: skinny GEMMs whose
//! spatial extent cannot fill the device. Random schedule search is run with
//! and without split-K genes under identical budgets.

use amos_core::{random_schedule_with, MappingGenerator};
use amos_hw::catalog;
use amos_sim::simulate;
use amos_workloads::ops;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn best_of_random(
    prog: &amos_sim::MappedProgram,
    accel: &amos_hw::AcceleratorSpec,
    allow_split_k: bool,
    samples: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let s = random_schedule_with(prog, accel, &mut rng, allow_split_k);
        if let Ok(r) = simulate(prog, &s, accel) {
            best = best.min(r.cycles);
        }
    }
    best
}

fn print_ablation() {
    amos_bench::banner("Ablation: split-K schedules on skinny GEMMs (V100, 256 samples each)");
    let accel = catalog::v100();
    let generator = MappingGenerator::new();
    println!(
        "{:<18} {:>14} {:>14} {:>8}",
        "shape (m x n x k)", "no split-K", "with split-K", "gain"
    );
    for (m, n, k) in [
        (16i64, 16i64, 65536i64), // pathological: one output tile
        (32, 32, 16384),
        (64, 64, 8192),
        (256, 256, 4096),
        (2048, 2048, 512), // wide: split-K should not help
    ] {
        let def = ops::gmm(m, n, k);
        let mapping = &generator.enumerate(&def, &accel.intrinsic)[0];
        let prog = mapping.lower(&def, &accel.intrinsic).unwrap();
        let seed = amos_bench::stable_seed(&format!("splitk{m}x{n}x{k}"));
        let without = best_of_random(&prog, &accel, false, 256, seed);
        let with = best_of_random(&prog, &accel, true, 256, seed);
        println!(
            "{:<18} {:>14.0} {:>14.0} {:>7.2}x",
            format!("{m} x {n} x {k}"),
            without,
            with,
            without / with
        );
    }
}

fn bench(c: &mut Criterion) {
    print_ablation();
    let accel = catalog::v100();
    let def = ops::gmm(32, 32, 16384);
    let generator = MappingGenerator::new();
    let mapping = &generator.enumerate(&def, &accel.intrinsic)[0];
    let prog = mapping.lower(&def, &accel.intrinsic).unwrap();
    let mut group = c.benchmark_group("ablation_splitk");
    group.sample_size(10);
    group.bench_function("random_search_64_schedules", |b| {
        b.iter(|| best_of_random(&prog, &accel, true, 64, 42))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 6: number of feasible mappings per operator on Tensor Core.
//!
//! Prints our enumeration next to the paper's counts (12/15 exact; the
//! DEP/CAP/BCV deltas are analysed in EXPERIMENTS.md), then times the
//! enumeration itself — the cost AMOS pays once per operator at the start
//! of tuning.

use amos_core::MappingGenerator;
use amos_hw::catalog;
use amos_workloads::ops;
use criterion::{criterion_group, criterion_main, Criterion};

const PAPER: [usize; 15] = [1, 1, 6, 35, 180, 7, 35, 35, 11, 105, 11, 1, 1, 1, 1];

fn print_table() {
    amos_bench::banner("Table 6: feasible mappings per operator on Tensor Core");
    let generator = MappingGenerator::new();
    let wmma = catalog::wmma_16x16x16();
    println!("{:<6} {:>6} {:>6}", "op", "ours", "paper");
    for (def, paper) in ops::representative_ops().iter().zip(PAPER) {
        println!(
            "{:<6} {:>6} {:>6}",
            def.name().to_uppercase(),
            generator.count(def, &wmma),
            paper
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let generator = MappingGenerator::new();
    let wmma = catalog::wmma_16x16x16();
    let c2d = &ops::representative_ops()[3];
    let c3d = &ops::representative_ops()[4];
    let mut group = c.benchmark_group("table6");
    group.sample_size(20);
    group.bench_function("enumerate_c2d_35_mappings", |b| {
        b.iter(|| generator.enumerate(std::hint::black_box(c2d), &wmma).len())
    });
    group.bench_function("enumerate_c3d_180_mappings", |b| {
        b.iter(|| generator.enumerate(std::hint::black_box(c3d), &wmma).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 6: single-operator performance.
//!
//! Parts a/b — speedup of AMOS over the PyTorch-library baseline for all 15
//! operator families (geometric mean over the 113 configurations of §7.3) at
//! batch 1 on the V100- and A100-like accelerators. Paper geomeans: 2.50x
//! (V100) and 2.80x (A100).
//!
//! Part c — the ResNet-18 C2D layers C0–C11 at batch 16 on A100, relative
//! to cuDNN, against Ansor / AutoTVM stock / AutoTVM-Expert / UNIT. Paper
//! average speedups over: CuDNN 2.38x, Ansor 1.79x, AutoTVM-Expert 1.30x,
//! UNIT 4.96x.

use amos_baselines::{geomean, System};
use amos_bench::EvalCache;
use amos_hw::catalog;
use amos_workloads::{configs, ops};
use criterion::{criterion_group, criterion_main, Criterion};

fn part_ab(cache: &mut EvalCache) {
    for accel in [catalog::v100(), catalog::a100()] {
        amos_bench::banner(&format!(
            "Figure 6{}: operator speedup vs PyTorch, {} (batch 1)",
            if accel.name == "v100" { "a" } else { "b" },
            accel.name
        ));
        let configs = configs::operator_configs();
        let mut all_speedups = Vec::new();
        println!("{:<5} {:>8}  (configs)", "op", "speedup");
        for family in ops::OPERATOR_NAMES {
            let mut speedups = Vec::new();
            for cfg in configs.iter().filter(|c| c.family == family) {
                let key = format!("{}/{}", cfg.family, cfg.label);
                let amos = cache.eval(System::Amos, &key, &cfg.def, &accel);
                let torch = cache.eval(System::PyTorch, &key, &cfg.def, &accel);
                speedups.push(torch.cycles / amos.cycles);
            }
            let g = geomean(&speedups);
            all_speedups.extend(speedups.iter().copied());
            println!("{:<5} {:>8.2}  ({})", family, g, speedups.len());
        }
        println!(
            "GEO   {:>8.2}  (paper: {})",
            geomean(&all_speedups),
            if accel.name == "v100" { "2.50" } else { "2.80" }
        );
    }
}

fn part_c(cache: &mut EvalCache) {
    amos_bench::banner(
        "Figure 6c: ResNet-18 C2D layers vs compilers, A100 (batch 16), relative to cuDNN",
    );
    let accel = catalog::a100();
    let systems = [
        System::CuDnn,
        System::Ansor,
        System::AutoTvm,
        System::AutoTvmExpert,
        System::Unit,
        System::Amos,
    ];
    print!("{:<5}", "layer");
    for s in systems {
        print!(" {:>14}", s.name());
    }
    println!();
    let mut rel: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    for (label, sh) in configs::resnet18_conv_layers(16) {
        let def = ops::c2d(sh);
        let key = format!("fig6c/{label}");
        let cudnn = cache.eval(System::CuDnn, &key, &def, &accel).cycles;
        print!("{:<5}", label);
        for (i, s) in systems.iter().enumerate() {
            let cost = cache.eval(*s, &key, &def, &accel).cycles;
            let r = cudnn / cost;
            rel[i].push(r);
            print!(" {:>14.2}", r);
        }
        println!();
    }
    print!("{:<5}", "GEO");
    for r in &rel {
        print!(" {:>14.2}", geomean(r));
    }
    println!();
    println!(
        "\npaper (AMOS speedup over): CuDNN 2.38x, Ansor 1.79x, AutoTVM-Expert 1.30x, UNIT 4.96x"
    );
}

fn bench(c: &mut Criterion) {
    let mut cache = EvalCache::new();
    part_ab(&mut cache);
    part_c(&mut cache);

    let accel = catalog::a100();
    let def = ops::c2d(configs::resnet18_conv_layers(16)[5].1);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("amos_full_pipeline_c5", |b| {
        b.iter(|| amos_baselines::evaluate(System::Amos, &def, &accel, 5).cycles)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: precomputed screening contexts vs the reference analytic model.
//!
//! The genetic explorer screens thousands of (mapping, schedule) candidates
//! per generation through the analytic performance model (paper §5.3), so
//! model throughput bounds exploration throughput. This bench compares the
//! two query paths over identical pre-generated schedule sets:
//!
//! * **reference** — `predict(prog, schedule, accel)`: re-derives operand
//!   axis usage, fragment sizes and memory-level parameters from the program
//!   and accelerator on every call;
//! * **precomputed** — `predict_with(ctx, schedule)`: straight-line
//!   arithmetic over the flat tables of a `ScreeningContext` built once per
//!   (program, accelerator) pair;
//! * **batched** — `predict_batch_with(ctx, lanes, ...)`: the same
//!   arithmetic over 8 candidates at a time in structure-of-arrays layout,
//!   the path the explorer's generation loop actually drives.
//!
//! All three are asserted bit-identical on every schedule before timing (no
//! rewrite may move the search trajectory by even one ulp); the table
//! reports candidates/second for each path and their ratios.

use amos_core::perf_model::{predict, predict_batch_with, predict_with, PerfBreakdown};
use amos_core::{random_schedule, MappingGenerator};
use amos_hw::catalog;
use amos_ir::ComputeDef;
use amos_sim::{BatchTables, Schedule};
use amos_workloads::ops::{self, ConvShape};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Figure-6 operator families at exploration-realistic sizes; the model's
/// cost depends on axis count and operand structure, not extents.
fn operator_set() -> Vec<(&'static str, ComputeDef)> {
    vec![
        ("gmm", ops::gmm(256, 256, 256)),
        ("gmv", ops::gmv(1024, 1024)),
        (
            "c2d",
            ops::c2d(ConvShape {
                n: 8,
                c: 64,
                k: 64,
                p: 14,
                q: 14,
                r: 3,
                s: 3,
                stride: 1,
            }),
        ),
        ("dep", ops::dep(8, 64, 14, 14, 3, 3)),
    ]
}

fn time_runs(mut f: impl FnMut(), reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn assert_bitwise_equal(name: &str, a: &PerfBreakdown, b: &PerfBreakdown) {
    for (field, x, y) in [
        ("cycles", a.cycles, b.cycles),
        ("l0_compute", a.l0_compute, b.l0_compute),
        ("r_register", a.r_register, b.r_register),
        ("r_shared", a.r_shared, b.r_shared),
        ("r_device", a.r_device, b.r_device),
        ("w_device", a.w_device, b.w_device),
        ("s_device", a.s_device, b.s_device),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}: predict and predict_with disagree on {field} ({x} vs {y})"
        );
    }
}

fn print_screening_throughput() {
    amos_bench::banner("Ablation: reference vs precomputed vs batched screening");
    let accel = catalog::v100();
    let generator = MappingGenerator::new();
    println!(
        "{:<5} {:>6} {:>14} {:>14} {:>14} {:>8} {:>8}",
        "op", "axes", "reference c/s", "precomp c/s", "batched c/s", "pre/ref", "bat/pre"
    );
    let mut ratios = Vec::new();
    let mut batch_ratios = Vec::new();
    for (name, def) in operator_set() {
        let mappings = generator.enumerate(&def, &accel.intrinsic);
        let prog = mappings[0].lower(&def, &accel.intrinsic).expect("lower");
        let ctx = prog.screening_context(&accel);
        let mut rng = StdRng::seed_from_u64(amos_bench::stable_seed(name));
        let schedules: Vec<Schedule> = (0..512)
            .map(|_| random_schedule(&prog, &accel, &mut rng))
            .collect();
        let refs: Vec<&Schedule> = schedules.iter().collect();
        let mut tables = BatchTables::default();
        let mut batched = Vec::with_capacity(schedules.len());
        // Correctness gate: all three paths must agree bit-for-bit on every
        // schedule before anything is timed.
        predict_batch_with(&ctx, &refs, &mut tables, &mut batched);
        assert_eq!(batched.len(), schedules.len());
        for (s, b) in schedules.iter().zip(&batched) {
            let reference = predict(&prog, s, &accel).expect("reference model");
            let fast = predict_with(&ctx, s).expect("precomputed model");
            assert_bitwise_equal(name, &reference, &fast);
            assert_bitwise_equal(name, &fast, b.as_ref().expect("batched model"));
        }
        let reps = 50;
        let t_ref = time_runs(
            || {
                for s in &schedules {
                    black_box(predict(&prog, s, &accel).unwrap());
                }
            },
            reps,
        );
        let t_fast = time_runs(
            || {
                for s in &schedules {
                    black_box(predict_with(&ctx, s).unwrap());
                }
            },
            reps,
        );
        let t_batch = time_runs(
            || {
                batched.clear();
                predict_batch_with(&ctx, black_box(&refs), &mut tables, &mut batched);
                black_box(&batched);
            },
            reps,
        );
        let ref_cps = schedules.len() as f64 / t_ref;
        let fast_cps = schedules.len() as f64 / t_fast;
        let batch_cps = schedules.len() as f64 / t_batch;
        let ratio = t_ref / t_fast;
        let batch_ratio = t_fast / t_batch;
        ratios.push(ratio);
        batch_ratios.push(batch_ratio);
        println!(
            "{:<5} {:>6} {:>14.3e} {:>14.3e} {:>14.3e} {:>7.2}x {:>7.2}x",
            name,
            ctx.axes.len(),
            ref_cps,
            fast_cps,
            batch_cps,
            ratio,
            batch_ratio
        );
    }
    let geo = amos_baselines::geomean(&ratios);
    let batch_geo = amos_baselines::geomean(&batch_ratios);
    println!("GEO precomputed/reference {geo:>24.2}x (target: >= 5x)");
    println!("GEO batched/precomputed   {batch_geo:>24.2}x (target: >= 2x)");
}

fn bench(c: &mut Criterion) {
    print_screening_throughput();

    let accel = catalog::v100();
    let def = ops::gmm(256, 256, 256);
    let mapping = &MappingGenerator::new().enumerate(&def, &accel.intrinsic)[0];
    let prog = mapping.lower(&def, &accel.intrinsic).unwrap();
    let ctx = prog.screening_context(&accel);
    let mut rng = StdRng::seed_from_u64(0x5c12ee);
    let schedule = random_schedule(&prog, &accel, &mut rng);

    let mut group = c.benchmark_group("screening-throughput");
    group.bench_function("predict_reference_gmm256", |b| {
        b.iter(|| predict(black_box(&prog), black_box(&schedule), black_box(&accel)).unwrap())
    });
    group.bench_function("predict_precomputed_gmm256", |b| {
        b.iter(|| predict_with(black_box(&ctx), black_box(&schedule)).unwrap())
    });
    let schedules: Vec<Schedule> = (0..64)
        .map(|_| random_schedule(&prog, &accel, &mut rng))
        .collect();
    let refs: Vec<&Schedule> = schedules.iter().collect();
    let mut tables = BatchTables::default();
    let mut out = Vec::with_capacity(refs.len());
    group.bench_function("predict_batch_gmm256x64", |b| {
        b.iter(|| {
            out.clear();
            predict_batch_with(black_box(&ctx), black_box(&refs), &mut tables, &mut out);
            black_box(&out);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

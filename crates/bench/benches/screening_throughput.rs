//! Ablation: precomputed screening contexts vs the reference analytic model.
//!
//! The genetic explorer screens thousands of (mapping, schedule) candidates
//! per generation through the analytic performance model (paper §5.3), so
//! model throughput bounds exploration throughput. This bench compares the
//! two query paths over identical pre-generated schedule sets:
//!
//! * **reference** — `predict(prog, schedule, accel)`: re-derives operand
//!   axis usage, fragment sizes and memory-level parameters from the program
//!   and accelerator on every call;
//! * **precomputed** — `predict_with(ctx, schedule)`: straight-line
//!   arithmetic over the flat tables of a `ScreeningContext` built once per
//!   (program, accelerator) pair.
//!
//! The two are asserted bit-identical on every schedule before timing (the
//! rewrite must not move the search trajectory by even one ulp); the table
//! reports candidates/second for both paths and their ratio.

use amos_core::perf_model::{predict, predict_with, PerfBreakdown};
use amos_core::{random_schedule, MappingGenerator};
use amos_hw::catalog;
use amos_ir::ComputeDef;
use amos_sim::Schedule;
use amos_workloads::ops::{self, ConvShape};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Figure-6 operator families at exploration-realistic sizes; the model's
/// cost depends on axis count and operand structure, not extents.
fn operator_set() -> Vec<(&'static str, ComputeDef)> {
    vec![
        ("gmm", ops::gmm(256, 256, 256)),
        ("gmv", ops::gmv(1024, 1024)),
        (
            "c2d",
            ops::c2d(ConvShape {
                n: 8,
                c: 64,
                k: 64,
                p: 14,
                q: 14,
                r: 3,
                s: 3,
                stride: 1,
            }),
        ),
        ("dep", ops::dep(8, 64, 14, 14, 3, 3)),
    ]
}

fn time_runs(mut f: impl FnMut(), reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn assert_bitwise_equal(name: &str, a: &PerfBreakdown, b: &PerfBreakdown) {
    for (field, x, y) in [
        ("cycles", a.cycles, b.cycles),
        ("l0_compute", a.l0_compute, b.l0_compute),
        ("r_register", a.r_register, b.r_register),
        ("r_shared", a.r_shared, b.r_shared),
        ("r_device", a.r_device, b.r_device),
        ("w_device", a.w_device, b.w_device),
        ("s_device", a.s_device, b.s_device),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}: predict and predict_with disagree on {field} ({x} vs {y})"
        );
    }
}

fn print_screening_throughput() {
    amos_bench::banner("Ablation: precomputed screening context vs reference analytic model");
    let accel = catalog::v100();
    let generator = MappingGenerator::new();
    println!(
        "{:<5} {:>6} {:>16} {:>16} {:>8}",
        "op", "axes", "reference c/s", "precomputed c/s", "ratio"
    );
    let mut ratios = Vec::new();
    for (name, def) in operator_set() {
        let mappings = generator.enumerate(&def, &accel.intrinsic);
        let prog = mappings[0].lower(&def, &accel.intrinsic).expect("lower");
        let ctx = prog.screening_context(&accel);
        let mut rng = StdRng::seed_from_u64(amos_bench::stable_seed(name));
        let schedules: Vec<Schedule> = (0..512)
            .map(|_| random_schedule(&prog, &accel, &mut rng))
            .collect();
        // Correctness gate: both paths must agree bit-for-bit on every
        // schedule before anything is timed.
        for s in &schedules {
            let reference = predict(&prog, s, &accel).expect("reference model");
            let fast = predict_with(&ctx, s).expect("precomputed model");
            assert_bitwise_equal(name, &reference, &fast);
        }
        let reps = 50;
        let t_ref = time_runs(
            || {
                for s in &schedules {
                    black_box(predict(&prog, s, &accel).unwrap());
                }
            },
            reps,
        );
        let t_fast = time_runs(
            || {
                for s in &schedules {
                    black_box(predict_with(&ctx, s).unwrap());
                }
            },
            reps,
        );
        let ref_cps = schedules.len() as f64 / t_ref;
        let fast_cps = schedules.len() as f64 / t_fast;
        let ratio = t_ref / t_fast;
        ratios.push(ratio);
        println!(
            "{:<5} {:>6} {:>16.3e} {:>16.3e} {:>7.2}x",
            name,
            ctx.axes.len(),
            ref_cps,
            fast_cps,
            ratio
        );
    }
    let geo = amos_baselines::geomean(&ratios);
    println!("GEO   {geo:>52.2}x (target: >= 5x)");
}

fn bench(c: &mut Criterion) {
    print_screening_throughput();

    let accel = catalog::v100();
    let def = ops::gmm(256, 256, 256);
    let mapping = &MappingGenerator::new().enumerate(&def, &accel.intrinsic)[0];
    let prog = mapping.lower(&def, &accel.intrinsic).unwrap();
    let ctx = prog.screening_context(&accel);
    let mut rng = StdRng::seed_from_u64(0x5c12ee);
    let schedule = random_schedule(&prog, &accel, &mut rng);

    let mut group = c.benchmark_group("screening-throughput");
    group.bench_function("predict_reference_gmm256", |b| {
        b.iter(|| predict(black_box(&prog), black_box(&schedule), black_box(&accel)).unwrap())
    });
    group.bench_function("predict_precomputed_gmm256", |b| {
        b.iter(|| predict_with(black_box(&ctx), black_box(&schedule)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: explorer design choices (paper §5.3).
//!
//! AMOS combines an analytic performance model (screening) with genetic
//! tuning and ground-truth measurement. This ablation compares, under equal
//! measurement budgets:
//!
//! * **random** — measure uniformly random (mapping, schedule) candidates,
//! * **model-screened** — the full explorer: model ranks candidates, only
//!   the most promising are measured, survivors are mutated.
//!
//! The gap is the value of the performance model, the paper's core argument
//! for Figure 5.

use amos_core::{random_schedule, Explorer, ExplorerConfig, MappingGenerator};
use amos_hw::catalog;
use amos_sim::simulate;
use amos_workloads::{configs, ops};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pure random search with a fixed number of ground-truth measurements.
fn random_search(
    def: &amos_ir::ComputeDef,
    accel: &amos_hw::AcceleratorSpec,
    measurements: usize,
    seed: u64,
) -> f64 {
    let generator = MappingGenerator::new();
    let mappings = generator.enumerate(def, &accel.intrinsic);
    let programs: Vec<_> = mappings
        .iter()
        .map(|m| m.lower(def, &accel.intrinsic).expect("lowers"))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = f64::INFINITY;
    for _ in 0..measurements {
        let prog = &programs[rng.gen_range(0..programs.len())];
        let s = random_schedule(prog, accel, &mut rng);
        if let Ok(r) = simulate(prog, &s, accel) {
            best = best.min(r.cycles);
        }
    }
    best
}

fn print_ablation() {
    amos_bench::banner("Ablation: model-screened genetic search vs random search (A100)");
    let accel = catalog::a100();
    println!(
        "{:<6} {:>14} {:>16} {:>8}  (equal ground-truth measurement budgets)",
        "layer", "random", "model+genetic", "gain"
    );
    for (label, sh) in configs::resnet18_conv_layers(16).into_iter().step_by(3) {
        let def = ops::c2d(sh);
        let seed = amos_bench::stable_seed(&label);
        let explorer = Explorer::with_config(ExplorerConfig {
            population: 24,
            generations: 5,
            survivors: 6,
            measure_top: 4,
            seed,
            jobs: 0,
            ..Default::default()
        });
        let guided = explorer.explore(&def, &accel).expect("explores");
        // Equalise the measurement budget to what the explorer spent.
        let budget = guided.evaluations.len();
        let random = random_search(&def, &accel, budget, seed);
        println!(
            "{:<6} {:>14.0} {:>16.0} {:>7.2}x",
            label,
            random,
            guided.cycles(),
            random / guided.cycles()
        );
    }
}

/// Quality-vs-budget curves for nearest-shape warm-start transfer: the same
/// target explored cold and warm-started from a previously-tuned neighbour
/// shape, at increasing generation budgets. The warm similarity index is
/// keyed by operator class alone (not by budget), so one donor exploration
/// seeds every budget point.
fn print_warm_start_curve() {
    amos_bench::banner("Warm start: best cycles vs generation budget, cold vs warm (V100)");
    let accel = catalog::v100();
    // C5 and C8 share stride and filter size, so they are one operator
    // class (the warm index key is extent-free but stride-sensitive: the
    // stride is a constant inside the access expressions).
    let layers = configs::resnet18_conv_layers(16);
    let donor = ops::c2d(layers[5].1);
    let target = ops::c2d(layers[8].1);
    let config = |generations, warm_start| ExplorerConfig {
        population: 12,
        generations,
        survivors: 4,
        measure_top: 3,
        seed: 17,
        jobs: 0,
        warm_start,
        ..Default::default()
    };
    println!(
        "{:<12} {:>14} {:>14} {:>8}  (donor: {}, target: {})",
        "generations",
        "cold cycles",
        "warm cycles",
        "gain",
        donor.name(),
        target.name()
    );
    for generations in [1, 2, 3, 5] {
        // Fresh engines per budget point so each row measures exactly one
        // donor -> target transfer (a persistent engine would also record
        // the target's own earlier, cheaper runs as distance-0 donors).
        let cold = amos_core::Engine::with_config(config(generations, false))
            .explore_op(&target, &accel)
            .expect("cold explores");
        let warm_engine = amos_core::Engine::with_config(config(6, true));
        warm_engine
            .explore_op(&donor, &accel)
            .expect("donor explores");
        let warm = warm_engine
            .explore_op_with(config(generations, true), &target, &accel)
            .expect("warm explores");
        assert!(
            warm.warm_start.donors > 0,
            "warm arm must actually consult a donor"
        );
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>7.2}x",
            generations,
            cold.cycles(),
            warm.cycles(),
            cold.cycles() / warm.cycles()
        );
    }
}

/// Wall-clock scaling of the parallel engine: the same search at jobs=1 and
/// jobs=N returns bit-identical winners (asserted here), only faster.
fn print_jobs_scaling() {
    // At least 2 so the parallel leg differs from the serial one even on a
    // single-core host (where the speedup honestly reports ~1x or below).
    let n = amos_core::default_jobs().max(2);
    amos_bench::banner(&format!(
        "Parallel engine: exploration wall clock, jobs=1 vs jobs={n} (A100)"
    ));
    let accel = catalog::a100();
    let def = ops::c2d(configs::resnet18_conv_layers(16)[6].1);
    let config = |jobs| ExplorerConfig {
        population: 24,
        generations: 5,
        survivors: 6,
        measure_top: 4,
        seed: 6,
        jobs,
        ..Default::default()
    };
    let time_one = |jobs: usize| {
        let explorer = Explorer::with_config(config(jobs));
        let start = std::time::Instant::now();
        let result = explorer.explore(&def, &accel).expect("explores");
        (start.elapsed(), result)
    };
    let (t1, r1) = time_one(1);
    let (tn, rn) = time_one(n);
    assert_eq!(
        r1.best_schedule, rn.best_schedule,
        "jobs must not change the winner"
    );
    assert_eq!(
        r1.cycles(),
        rn.cycles(),
        "jobs must not change measured cycles"
    );
    println!(
        "jobs=1: {t1:>10.2?}   jobs={n}: {tn:>10.2?}   speedup: {:.2}x (same winner)",
        t1.as_secs_f64() / tn.as_secs_f64()
    );
}

fn bench(c: &mut Criterion) {
    print_ablation();
    print_warm_start_curve();
    print_jobs_scaling();
    let accel = catalog::a100();
    let def = ops::c2d(configs::resnet18_conv_layers(16)[6].1);
    let mut group = c.benchmark_group("ablation_explorer");
    group.sample_size(10);
    group.bench_function("random_search_50_measurements", |b| {
        b.iter(|| random_search(&def, &accel, 50, 6))
    });
    group.bench_function("explore_jobs_1", |b| {
        let explorer = Explorer::with_config(ExplorerConfig {
            population: 16,
            generations: 3,
            survivors: 4,
            measure_top: 3,
            seed: 6,
            jobs: 1,
            ..Default::default()
        });
        b.iter(|| explorer.explore(&def, &accel).expect("explores"))
    });
    group.bench_function("explore_jobs_all_cores", |b| {
        let explorer = Explorer::with_config(ExplorerConfig {
            population: 16,
            generations: 3,
            survivors: 4,
            measure_top: 3,
            seed: 6,
            jobs: 0,
            ..Default::default()
        });
        b.iter(|| explorer.explore(&def, &accel).expect("explores"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 5: the software-hardware compute mappings AMOS selects for each
//! ResNet-18 convolution layer on the A100 (batch 16).
//!
//! Absolute mapping choices depend on the cost model, so the reproduced
//! property is the paper's *qualitative* finding: AMOS picks several
//! distinct mapping types across the twelve layers instead of one template.

use amos_core::{Explorer, ExplorerConfig};
use amos_hw::catalog;
use amos_workloads::{configs, ops};
use criterion::{criterion_group, criterion_main, Criterion};

/// Paper Table 5 mappings, for side-by-side comparison.
const PAPER: [&str; 12] = [
    "[(n*112+q) mod 16, k mod 16, (c*49+r*7+s) mod 16]",
    "[(n*56+q) mod 16, k mod 16, (c*3+r) mod 16]",
    "[(p*56+q) mod 16, k mod 16, c mod 16]",
    "[(n*784+p*28+q) mod 16, k mod 16, (c*3+s) mod 16]",
    "[(p*28+q) mod 16, k mod 16, c mod 16]",
    "[(p*28+q) mod 16, k mod 16, c mod 16]",
    "[n mod 16, k mod 16, (c*3+s) mod 16]",
    "[(n*196+p*14+q) mod 16, k mod 16, c mod 16]",
    "[(p*14+q) mod 16, k mod 16, c mod 16]",
    "[(n*49+p*7+q) mod 16, k mod 16, (c*9+r*3+s) mod 16]",
    "[(n*49+p*7+q) mod 16, k mod 16, c mod 16]",
    "[n mod 16, k mod 16, (c*9+r*3+s) mod 16]",
];

fn print_table() -> Vec<String> {
    amos_bench::banner("Table 5: chosen compute mapping per ResNet-18 layer (A100, bs16)");
    let accel = catalog::a100();
    let explorer = Explorer::with_config(ExplorerConfig {
        population: 24,
        generations: 5,
        survivors: 6,
        measure_top: 4,
        seed: 55,
        jobs: 0,
        ..Default::default()
    });
    let mut chosen = Vec::new();
    println!("{:<5} {:<62} paper", "layer", "ours");
    for (i, (label, sh)) in configs::resnet18_conv_layers(16).into_iter().enumerate() {
        let def = ops::c2d(sh);
        let result = explorer.explore(&def, &accel).expect("layer explores");
        let mapping = result.best_program.mapping_string();
        println!("{:<5} {:<62} {}", label, mapping, PAPER[i]);
        chosen.push(mapping);
    }
    let distinct: std::collections::BTreeSet<_> = chosen.iter().collect();
    println!(
        "\ndistinct mapping types: {} of 12 layers (paper: 8 of 12)",
        distinct.len()
    );
    chosen
}

fn bench(c: &mut Criterion) {
    print_table();
    let accel = catalog::a100();
    let (_, sh) = configs::resnet18_conv_layers(16).remove(7); // C7
    let def = ops::c2d(sh);
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("explore_resnet18_c7", |b| {
        b.iter(|| {
            let explorer = Explorer::with_config(ExplorerConfig {
                population: 16,
                generations: 3,
                survivors: 4,
                measure_top: 3,
                seed: 55,
                jobs: 0,
                ..Default::default()
            });
            explorer.explore(&def, &accel).unwrap().cycles()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

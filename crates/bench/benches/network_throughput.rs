//! Whole-network exploration throughput: the three layers of the
//! network-evaluation fast path, timed over one ResNet-18 AMOS evaluation
//! on the V100-like accelerator.
//!
//! * `resnet18_cold_sequential` — one shape at a time, every exploration
//!   from scratch (the pre-parallel baseline);
//! * `resnet18_cold_parallel` — distinct layer shapes explored
//!   concurrently on all cores;
//! * `resnet18_disk_warm` — a fresh evaluator (fresh in-memory cache, as a
//!   new process would have) answering every shape from a populated
//!   on-disk cache directory.
//!
//! All three produce bit-identical [`NetworkCost`]s — asserted here before
//! timing — so the spread between them is pure wall-clock. The committed
//! trajectory numbers live in `BENCH_network.json` (see the
//! `record_network` binary).

use amos_baselines::{NetworkCost, NetworkEvaluator, System};
use amos_core::{CacheConfig, Engine, ExplorerConfig};
use amos_hw::catalog;
use amos_workloads::networks;
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::Path;

fn evaluate(mut ev: NetworkEvaluator) -> NetworkCost {
    ev.evaluate(System::Amos, &networks::resnet18(), 1, &catalog::v100())
}

fn disk_evaluator(dir: &Path) -> NetworkEvaluator {
    let engine = Engine::with_cache(
        ExplorerConfig::default(),
        CacheConfig {
            cache_dir: Some(dir.to_path_buf()),
        },
    );
    NetworkEvaluator::with_engine(engine)
}

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("amos-bench-network-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Populate the disk tier and pin down the one answer every layer of the
    // fast path must reproduce.
    let expected = evaluate(disk_evaluator(&dir));
    assert_eq!(evaluate(NetworkEvaluator::new().with_jobs(1)), expected);
    assert_eq!(evaluate(NetworkEvaluator::new()), expected);
    assert_eq!(evaluate(disk_evaluator(&dir)), expected);

    let mut group = c.benchmark_group("network_throughput");
    group.sample_size(10);
    group.bench_function("resnet18_cold_sequential", |b| {
        b.iter(|| evaluate(NetworkEvaluator::new().with_jobs(1)).total_cycles)
    });
    group.bench_function("resnet18_cold_parallel", |b| {
        b.iter(|| evaluate(NetworkEvaluator::new()).total_cycles)
    });
    group.bench_function("resnet18_disk_warm", |b| {
        b.iter(|| evaluate(disk_evaluator(&dir)).total_cycles)
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 9: the fixed-mapping ablation (paper §7.6).
//!
//! Compares, on the ResNet-18 C2D layers at batch 16 on A100:
//! cuDNN (fixed mapping + fixed heuristic schedule), AMOS-fixM1 (im2col
//! mapping, full schedule tuning), AMOS-fixM2 (fuse_hw mapping, full
//! schedule tuning), and full AMOS. Paper: fixM1 and fixM2 lose 36.8% and
//! 31.9% to AMOS; AMOS averages 2.38x over cuDNN.

use amos_baselines::{evaluate, fixed_mapping, geomean, FixedKind, System};
use amos_core::{Explorer, ExplorerConfig};
use amos_hw::catalog;
use amos_workloads::{configs, ops};
use criterion::{criterion_group, criterion_main, Criterion};

fn amos_budget(seed: u64) -> ExplorerConfig {
    ExplorerConfig {
        population: 24,
        generations: 5,
        survivors: 6,
        measure_top: 4,
        seed,
        jobs: 0,
        ..Default::default()
    }
}

fn print_figure() {
    amos_bench::banner(
        "Figure 9: cuDNN vs AMOS-fixM1 vs AMOS-fixM2 vs AMOS (A100, bs16), relative to cuDNN",
    );
    let accel = catalog::a100();
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>8}",
        "layer", "CuDNN", "AMOS-fixM1", "AMOS-fixM2", "AMOS"
    );
    let mut rel = [Vec::new(), Vec::new(), Vec::new()];
    for (label, sh) in configs::resnet18_conv_layers(16) {
        let def = ops::c2d(sh);
        let seed = amos_bench::stable_seed(&label);
        let cudnn = evaluate(System::CuDnn, &def, &accel, seed).cycles;

        // fixM1/fixM2: frozen mapping, the same tuner budget as AMOS.
        let fixed = |kind: FixedKind| -> f64 {
            let mapping = fixed_mapping(&def, &accel.intrinsic, kind)
                .expect("C2D always has a fixed mapping");
            Explorer::with_config(amos_budget(seed))
                .explore_mappings(&def, &accel, Some(vec![mapping]))
                .expect("fixed exploration succeeds")
                .cycles()
        };
        let m1 = fixed(FixedKind::Im2col);
        let m2 = fixed(FixedKind::FuseHw);
        let amos = Explorer::with_config(amos_budget(seed))
            .explore(&def, &accel)
            .expect("AMOS exploration succeeds")
            .cycles();

        rel[0].push(cudnn / m1);
        rel[1].push(cudnn / m2);
        rel[2].push(cudnn / amos);
        println!(
            "{:<6} {:>8.2} {:>12.2} {:>12.2} {:>8.2}",
            label,
            1.0,
            cudnn / m1,
            cudnn / m2,
            cudnn / amos
        );
    }
    let (g1, g2, ga) = (geomean(&rel[0]), geomean(&rel[1]), geomean(&rel[2]));
    println!(
        "{:<6} {:>8.2} {:>12.2} {:>12.2} {:>8.2}",
        "GEO", 1.0, g1, g2, ga
    );
    println!(
        "\nfixM1 at {:.1}% of AMOS, fixM2 at {:.1}% (paper: 63.2% and 68.1%)",
        g1 / ga * 100.0,
        g2 / ga * 100.0
    );
}

/// The §7.6 discussion: AMOS alleviates resource pressure and achieves
/// higher occupancy than the library's fixed im2col configuration (the
/// paper reports 3.66x on layer C3).
fn print_occupancy_discussion() {
    amos_bench::banner("§7.6 discussion: occupancy of AMOS vs the library configuration (C3)");
    let accel = catalog::a100();
    let (_, sh) = configs::resnet18_conv_layers(16).remove(3);
    let def = ops::c2d(sh);

    // Library configuration: im2col mapping + the heuristic schedule.
    let lib_mapping = fixed_mapping(&def, &accel.intrinsic, FixedKind::Im2col).expect("C2D maps");
    let lib_prog = lib_mapping.lower(&def, &accel.intrinsic).expect("lowers");
    let lib_schedule = amos_sim::Schedule::balanced(&lib_prog, &accel);
    let lib = amos_sim::simulate(&lib_prog, &lib_schedule, &accel).expect("simulates");

    let amos = Explorer::with_config(amos_budget(763))
        .explore(&def, &accel)
        .expect("explores");

    println!(
        "library (im2col): occupancy {:.2}, utilization {:.3}, {} blocks, mapping {}",
        lib.occupancy,
        lib.utilization,
        lib.blocks,
        lib_prog.mapping_string()
    );
    println!(
        "AMOS            : occupancy {:.2}, utilization {:.3}, {} blocks, mapping {}",
        amos.best_report.occupancy,
        amos.best_report.utilization,
        amos.best_report.blocks,
        amos.best_program.mapping_string()
    );
    println!(
        "occupancy ratio : {:.2}x (paper: 3.66x); utilization ratio {:.2}x",
        amos.best_report.occupancy / lib.occupancy.max(1e-9),
        amos.best_report.utilization / lib.utilization.max(1e-9)
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    print_occupancy_discussion();
    let accel = catalog::a100();
    let def = ops::c2d(configs::resnet18_conv_layers(16)[3].1);
    let mapping = fixed_mapping(&def, &accel.intrinsic, FixedKind::Im2col).unwrap();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("fixed_mapping_schedule_tuning_c3", |b| {
        b.iter(|| {
            Explorer::with_config(amos_budget(9))
                .explore_mappings(&def, &accel, Some(vec![mapping.clone()]))
                .unwrap()
                .cycles()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

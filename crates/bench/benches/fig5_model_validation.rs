//! Figure 5: validation of the analytic performance model against the
//! ground truth (the timing simulator here, a V100 in the paper) on
//! ResNet-18 2D-convolution workloads.
//!
//! Reports, like the paper: the predicted-vs-measured trend over exploration
//! steps, the overall pairwise (rank) accuracy (paper: 85.69%), the top-40%
//! recall (paper: 91.4%), and recall across top rates (paper Fig 5 inset:
//! 0.25/0.706/0.808/0.914/0.864/0.846 at 0.1..0.6).

use amos_core::{pairwise_accuracy, top_rate_recall, Explorer, ExplorerConfig};
use amos_hw::catalog;
use amos_workloads::{configs, ops};
use criterion::{criterion_group, criterion_main, Criterion};

fn collect_pairs() -> Vec<(f64, f64)> {
    let accel = catalog::v100();
    let mut pairs = Vec::new();
    for (label, mut sh) in configs::resnet18_conv_layers(16) {
        sh.n = 16;
        let def = ops::c2d(sh);
        let explorer = Explorer::with_config(ExplorerConfig {
            population: 24,
            generations: 6,
            survivors: 6,
            measure_top: 4,
            seed: amos_bench::stable_seed(&label),
            jobs: 0,
            ..Default::default()
        });
        if let Ok(result) = explorer.explore(&def, &accel) {
            pairs.extend(result.evaluations);
        }
    }
    pairs
}

fn print_figure() {
    amos_bench::banner("Figure 5: performance-model validation on ResNet-18 C2D (V100)");
    let pairs = collect_pairs();
    println!("ground-truth measurements collected: {}", pairs.len());

    // Trend over exploration steps (sampled every few steps).
    println!("\n{:>5} {:>14} {:>14}", "step", "predicted", "measured");
    let stride = (pairs.len() / 12).max(1);
    for (i, (p, m)) in pairs.iter().enumerate().step_by(stride) {
        println!("{:>5} {:>14.0} {:>14.0}", i, p, m);
    }

    let acc = pairwise_accuracy(&pairs);
    println!(
        "\npairwise rank accuracy: {:.1}% (paper: 85.69%)",
        acc * 100.0
    );
    println!("\n{:>8} {:>8}  paper", "top rate", "recall");
    let paper = [0.25, 0.706, 0.808, 0.914, 0.864, 0.846];
    for (i, rate) in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6].iter().enumerate() {
        println!(
            "{:>8.1} {:>8.3}  {:.3}",
            rate,
            top_rate_recall(&pairs, *rate),
            paper[i]
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let accel = catalog::v100();
    let (_, sh) = configs::resnet18_conv_layers(16).remove(5);
    let def = ops::c2d(sh);
    let generator = amos_core::MappingGenerator::new();
    let mapping = generator.enumerate(&def, &accel.intrinsic).remove(0);
    let prog = mapping.lower(&def, &accel.intrinsic).unwrap();
    let schedule = amos_sim::Schedule::balanced(&prog, &accel);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(30);
    group.bench_function("perf_model_predict", |b| {
        b.iter(|| amos_core::perf_model::predict_cycles(&prog, &schedule, &accel).unwrap())
    });
    group.bench_function("timing_simulate", |b| {
        b.iter(|| amos_sim::simulate(&prog, &schedule, &accel).unwrap().cycles)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace ships the
//! small slice of the `rand 0.8` API that AMOS-rs actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded through
//! SplitMix64), the [`Rng`] extension methods (`gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! Determinism is the only contract the explorer needs: the same seed always
//! yields the same stream, independent of platform and thread count. The
//! streams differ from upstream `rand`'s, which is fine — no test pins exact
//! draw values.

#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing generator methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into the generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: the recommended seeder for xoshiro-family generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Ranges a generator can sample uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample. Panics when the range is empty.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// FNV-1a over a byte string (64-bit offset basis / prime).
///
/// Not part of upstream `rand`'s API — this is the workspace's one shared
/// implementation of the seed-hash every layer uses (per-test seed streams,
/// per-shape exploration seeds, bench labels). It lives here, at the bottom
/// of the dependency graph, so both the `proptest` stand-in and `amos-core`
/// (which re-exports it as `amos_core::fnv1a`) can call the same loop
/// instead of keeping copies.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator.
    ///
    /// Upstream's `StdRng` is a ChaCha block cipher; for the explorer only
    /// determinism and statistical quality matter, so the much smaller
    /// xoshiro256++ stands in.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this build has one generator; `SmallRng` is it.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.next_u64() as usize % self.len();
                Some(&self[i])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_u64() as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u32);
            assert!(w <= 5);
            let n = rng.gen_range(-8i64..8);
            assert!((-8..8).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<i32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "a 32-element shuffle virtually never fixes all");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> i64 {
            let opts = [1i64, 2, 4];
            *opts.choose(rng).unwrap()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!([1, 2, 4].contains(&takes_impl(&mut rng)));
    }
}

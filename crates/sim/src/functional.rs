//! Functional execution of a mapped program.
//!
//! Interprets the tiled structure of a [`MappedProgram`] with *explicit
//! fragment semantics*: source tiles are staged into register fragments
//! through the operand index expressions of the compute abstraction, the
//! intrinsic is executed scalar-by-scalar over its full problem size
//! (including padding lanes), and destination fragments are scattered back
//! with padding dropped.
//!
//! Executing through the fragments — rather than reading software tensors
//! directly per scalar operation — means mappings that are not implementable
//! by the intrinsic's data layout produce either an
//! [`SimError::IncoherentFragment`] error or numerically wrong output, which
//! the equivalence tests against the reference interpreter catch.

use crate::error::SimError;
use crate::program::MappedProgram;
use amos_hw::OperandRef;
use amos_ir::{IterKind, OpKind, TensorData};

/// Execution statistics gathered by the functional run; cross-validated
/// against the analytic counts of [`MappedProgram`] in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Compute-intrinsic invocations.
    pub intrinsic_calls: u64,
    /// Scalar multiply-accumulate lanes executed, including padding.
    pub total_lanes: u64,
    /// Lanes that carried a real (non-padded, predicate-active) operation.
    pub active_lanes: u64,
    /// Source-fragment stagings (one per operand per call).
    pub fragment_loads: u64,
    /// Compiled software-access index evaluations (fragment staging and
    /// scatter-back, one per access dimension).
    pub index_evals: u64,
    /// Of [`ExecStats::index_evals`], how many took the affine-table fast
    /// path rather than the bytecode fallback.
    pub affine_index_evals: u64,
}

impl ExecStats {
    /// Fraction of lanes doing useful work.
    pub fn lane_efficiency(&self) -> f64 {
        if self.total_lanes == 0 {
            return 1.0;
        }
        self.active_lanes as f64 / self.total_lanes as f64
    }

    /// Fraction of compiled index evaluations served by the affine tables
    /// (1.0 when no indices were evaluated — an empty run has no misses).
    pub fn affine_hit_ratio(&self) -> f64 {
        if self.index_evals == 0 {
            return 1.0;
        }
        self.affine_index_evals as f64 / self.index_evals as f64
    }
}

/// Staged fragment content: which software element each position holds.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    /// Not written by any intrinsic point.
    Unset,
    /// Zero-padding.
    Pad,
    /// A real element, identified by its flat offset in the source tensor.
    Elem(usize),
}

/// Runs `f` over every point of a mixed-radix space.
pub(crate) fn odometer(extents: &[i64], mut f: impl FnMut(&[i64])) {
    let mut point = vec![0i64; extents.len()];
    if extents.iter().any(|&e| e <= 0) {
        return;
    }
    loop {
        f(&point);
        let mut dim = extents.len();
        loop {
            if dim == 0 {
                return;
            }
            dim -= 1;
            point[dim] += 1;
            if point[dim] < extents[dim] {
                break;
            }
            point[dim] = 0;
        }
    }
}

/// Executes a mapped program over concrete data (one tensor per declared
/// tensor, in declaration order; the output entry provides initial
/// accumulator values) and returns the output tensor.
///
/// # Errors
///
/// * [`SimError::IncoherentFragment`] when two intrinsic points demand
///   different software elements at one fragment position,
/// * [`SimError::UnsupportedOp`] for accumulations the intrinsic cannot
///   perform (max-reduction),
/// * [`SimError::Ir`] for out-of-bounds accesses.
pub fn execute_mapped(
    prog: &MappedProgram,
    tensors: &[TensorData],
) -> Result<TensorData, SimError> {
    execute_mapped_with_stats(prog, tensors).map(|(out, _)| out)
}

/// [`execute_mapped`] behind a panic-isolation boundary: a panic anywhere in
/// the functional executor surfaces as [`SimError::Panicked`] instead of
/// unwinding into the caller.
///
/// # Errors
///
/// Same as [`execute_mapped`], plus [`SimError::Panicked`] carrying the
/// payload text of a caught panic.
pub fn execute_mapped_isolated(
    prog: &MappedProgram,
    tensors: &[TensorData],
) -> Result<TensorData, SimError> {
    crate::isolate::run_isolated(|| execute_mapped(prog, tensors))
        .unwrap_or_else(|detail| Err(SimError::Panicked { detail }))
}

/// Like [`execute_mapped`], additionally returning execution statistics.
///
/// Runs through the program's cached compiled lane programs:
/// fragment staging, lane predicates and scatter-back evaluate affine
/// base/stride tables (or compact bytecode for non-affine residuals) over
/// reusable buffers instead of re-walking `Expr` trees per lane. The output
/// is bit-identical to [`execute_mapped_reference`].
///
/// # Errors
///
/// Same as [`execute_mapped`].
pub fn execute_mapped_with_stats(
    prog: &MappedProgram,
    tensors: &[TensorData],
) -> Result<(TensorData, ExecStats), SimError> {
    check_io(prog, tensors)?;
    let def = prog.def();
    let intr = prog.intrinsic();
    let op = def.op();
    let comp = prog.compiled();

    let num_srcs = intr.compute.num_srcs();
    let num_iters = comp.problem.len();
    let dst_len = comp.dst_shape.iter().product::<i64>() as usize;

    let mut out = tensors[def.output().tensor.index()].clone();

    // Extents of the sequential spaces.
    let sp_extents: Vec<i64> = comp
        .outer_sp
        .iter()
        .map(|&(_, e)| e)
        .chain(comp.spatial_t.iter().map(|&t| prog.tiles(t)))
        .collect();
    let red_extents: Vec<i64> = comp
        .outer_red
        .iter()
        .map(|&(_, e)| e)
        .chain(comp.reduction_t.iter().map(|&t| prog.tiles(t)))
        .collect();
    let mut spatial_space: Vec<i64> = vec![1; num_iters];
    for &t in &comp.spatial_t {
        spatial_space[t] = comp.problem[t];
    }

    // Reusable buffers — one allocation each for the whole run. `env` holds
    // the software environment (outer-spatial slots written per spatial
    // step, outer-reduction per reduction step, mapped slots per lane);
    // `scatter_env` is separate so outer-reduction slots stay zero during
    // scatter-back, matching the reference semantics.
    let mut env = vec![0i64; def.iters().len()];
    let mut scatter_env = vec![0i64; def.iters().len()];
    let mut stack: Vec<i64> = Vec::new();
    let mut tile = vec![0i64; num_iters];
    let mut frags: Vec<Vec<Slot>> = comp
        .frag_shapes
        .iter()
        .map(|s| vec![Slot::Unset; s.iter().product::<i64>() as usize])
        .collect();
    let mut frag_vals: Vec<Vec<f64>> = frags.iter().map(|f| vec![0.0f64; f.len()]).collect();
    let mut dst_frag = vec![0.0f64; dst_len];

    let mut stats = ExecStats::default();
    let mut result: Result<(), SimError> = Ok(());
    odometer(&sp_extents, |sp| {
        if result.is_err() {
            return;
        }
        let (outer_sp_vals, sp_tiles) = sp.split_at(comp.outer_sp.len());
        for (&(slot, _), &v) in comp.outer_sp.iter().zip(outer_sp_vals) {
            env[slot] = v;
            scatter_env[slot] = v;
        }
        dst_frag.fill(0.0);

        odometer(&red_extents, |red| {
            if result.is_err() {
                return;
            }
            let (outer_red_vals, red_tiles) = red.split_at(comp.outer_red.len());
            for (&(slot, _), &v) in comp.outer_red.iter().zip(outer_red_vals) {
                env[slot] = v;
            }
            for (ti, &t) in comp.spatial_t.iter().enumerate() {
                tile[t] = sp_tiles[ti];
            }
            for (ti, &t) in comp.reduction_t.iter().enumerate() {
                tile[t] = red_tiles[ti];
            }

            // Stage the source fragments.
            for frag in frags.iter_mut() {
                frag.fill(Slot::Unset);
            }
            odometer(&comp.problem, |j| {
                if result.is_err() {
                    return;
                }
                // Predicate-inactive points stage padding: their product
                // term must vanish, exactly like a masked scalar iteration.
                let active =
                    comp.build_env_into(&mut env, &tile, j) && comp.point_active(&env, &mut stack);
                for (m, frag) in frags.iter_mut().enumerate() {
                    let pos = comp.src_frags[m].position(j);
                    let slot = if active {
                        let acc = &comp.src_accesses[m];
                        stats.index_evals += acc.dims.len() as u64;
                        stats.affine_index_evals += acc.affine_dims;
                        match acc.flat_offset(&env, &mut stack) {
                            Ok(off) => Slot::Elem(off),
                            Err(e) => {
                                result = Err(e);
                                return;
                            }
                        }
                    } else {
                        Slot::Pad
                    };
                    let cur = frag[pos];
                    match (cur, slot) {
                        (Slot::Unset, s) => frag[pos] = s,
                        (Slot::Pad, s @ Slot::Elem(_)) => frag[pos] = s,
                        (Slot::Elem(_), Slot::Pad) | (Slot::Pad, Slot::Pad) => {}
                        (Slot::Elem(a), Slot::Elem(b)) if a == b => {}
                        (Slot::Elem(_), Slot::Elem(_)) => {
                            result = Err(SimError::IncoherentFragment {
                                operand: intr.compute.srcs()[m].name.clone(),
                                position: unflatten(pos as i64, &comp.frag_shapes[m]),
                            });
                        }
                        (_, Slot::Unset) => unreachable!("slots are never written Unset"),
                    }
                }
            });
            if result.is_err() {
                return;
            }

            // Materialise fragment values.
            for (m, frag) in frags.iter().enumerate() {
                let input = &tensors[comp.src_accesses[m].tensor];
                for (v, slot) in frag_vals[m].iter_mut().zip(frag.iter()) {
                    *v = match slot {
                        Slot::Elem(off) => input.data[*off],
                        _ => 0.0,
                    };
                }
            }

            // Execute the intrinsic over its full problem size. Padding
            // lanes read staged zeros and contribute nothing.
            stats.intrinsic_calls += 1;
            stats.fragment_loads += num_srcs as u64;
            odometer(&comp.problem, |j| {
                stats.total_lanes += 1;
                let active =
                    comp.build_env_into(&mut env, &tile, j) && comp.point_active(&env, &mut stack);
                if active {
                    stats.active_lanes += 1;
                }
                let dpos = comp.dst_frag.position(j);
                let mut srcs = [0.0f64; 4];
                for (m, vals) in frag_vals.iter().enumerate() {
                    srcs[m] = vals[comp.src_frags[m].position(j)];
                }
                // Reduction-padding lanes must contribute zero; they do,
                // because at least one operand position is uniquely padded.
                dst_frag[dpos] = op.accumulate(dst_frag[dpos], &srcs[..num_srcs]);
            });
        });
        if result.is_err() {
            return;
        }

        // Scatter the destination fragment, dropping spatial padding.
        // Reduction tiles pin to zero so reduction groups decode their
        // (always valid) zero point; outer-reduction slots stay zero in
        // `scatter_env`.
        for &t in &comp.reduction_t {
            tile[t] = 0;
        }
        for (ti, &t) in comp.spatial_t.iter().enumerate() {
            tile[t] = sp_tiles[ti];
        }
        odometer(&spatial_space, |j| {
            if result.is_err() {
                return;
            }
            if !comp.build_env_into(&mut scatter_env, &tile, j) {
                return; // spatial padding lane
            }
            let dpos = comp.dst_frag.position(j);
            stats.index_evals += comp.dst_access.dims.len() as u64;
            stats.affine_index_evals += comp.dst_access.affine_dims;
            match comp.dst_access.flat_offset(&scatter_env, &mut stack) {
                Ok(off) => out.data[off] += dst_frag[dpos],
                Err(e) => result = Err(e),
            }
        });
    });
    result.map(|()| (out, stats))
}

/// Shared up-front validation of the op kind and tensor shapes.
fn check_io(prog: &MappedProgram, tensors: &[TensorData]) -> Result<(), SimError> {
    let def = prog.def();
    let intr = prog.intrinsic();
    let op = def.op();
    if op == OpKind::MaxAcc {
        return Err(SimError::UnsupportedOp {
            detail: "max accumulation cannot be lowered to a multiply-add intrinsic".into(),
        });
    }
    if op != intr.compute.op() {
        return Err(SimError::UnsupportedOp {
            detail: format!(
                "software op {} does not match intrinsic op {}",
                op,
                intr.compute.op()
            ),
        });
    }
    for (decl, data) in def.tensors().iter().zip(tensors.iter()) {
        if decl.shape != data.shape {
            return Err(SimError::Ir(amos_ir::IrError::InvalidShape {
                name: decl.name.clone(),
                shape: data.shape.clone(),
            }));
        }
    }
    Ok(())
}

/// The original tree-walking executor: re-interprets every index `Expr` per
/// lane through [`amos_ir::Expr::eval`]. Kept as the semantic baseline — the
/// compiled path is asserted bit-identical against it in tests and measured
/// against it in the `interp-vs-compiled` ablation bench.
///
/// # Errors
///
/// Same as [`execute_mapped`].
pub fn execute_mapped_reference(
    prog: &MappedProgram,
    tensors: &[TensorData],
) -> Result<TensorData, SimError> {
    check_io(prog, tensors)?;
    let def = prog.def();
    let intr = prog.intrinsic();
    let op = def.op();

    let num_iters = intr.compute.iters().len();
    let problem: Vec<i64> = intr.compute.problem_size();
    let spatial_t: Vec<usize> = (0..num_iters)
        .filter(|&t| intr.compute.iters()[t].kind == IterKind::Spatial)
        .collect();
    let reduction_t: Vec<usize> = (0..num_iters)
        .filter(|&t| intr.compute.iters()[t].kind == IterKind::Reduction)
        .collect();

    // Outer software loops split by kind.
    let outer_sp: Vec<_> = prog
        .outer()
        .iter()
        .copied()
        .filter(|&id| def.iter_var(id).kind == IterKind::Spatial)
        .collect();
    let outer_red: Vec<_> = prog
        .outer()
        .iter()
        .copied()
        .filter(|&id| def.iter_var(id).kind == IterKind::Reduction)
        .collect();

    let num_srcs = intr.compute.num_srcs();
    let frag_shapes: Vec<Vec<i64>> = (0..num_srcs)
        .map(|m| intr.compute.fragment_shape(OperandRef::Src(m)))
        .collect();
    let dst_shape = intr.compute.fragment_shape(OperandRef::Dst);
    let dst_len: i64 = dst_shape.iter().product();

    let mut out = tensors[def.output().tensor.index()].clone();

    // Extents of the sequential spaces.
    let sp_extents: Vec<i64> = outer_sp
        .iter()
        .map(|&id| def.iter_var(id).extent)
        .chain(spatial_t.iter().map(|&t| prog.tiles(t)))
        .collect();
    let red_extents: Vec<i64> = outer_red
        .iter()
        .map(|&id| def.iter_var(id).extent)
        .chain(reduction_t.iter().map(|&t| prog.tiles(t)))
        .collect();

    let mut result: Result<(), SimError> = Ok(());
    odometer(&sp_extents, |sp| {
        if result.is_err() {
            return;
        }
        // Split the spatial odometer point.
        let (outer_sp_vals, sp_tiles) = sp.split_at(outer_sp.len());

        let mut dst_frag = vec![0.0f64; dst_len as usize];

        odometer(&red_extents, |red| {
            if result.is_err() {
                return;
            }
            let (outer_red_vals, red_tiles) = red.split_at(outer_red.len());

            // Tile coordinate for every intrinsic iteration.
            let mut tile = vec![0i64; num_iters];
            for (ti, &t) in spatial_t.iter().enumerate() {
                tile[t] = sp_tiles[ti];
            }
            for (ti, &t) in reduction_t.iter().enumerate() {
                tile[t] = red_tiles[ti];
            }

            // Stage the source fragments.
            let mut frags: Vec<Vec<Slot>> = frag_shapes
                .iter()
                .map(|s| vec![Slot::Unset; s.iter().product::<i64>() as usize])
                .collect();

            odometer(&problem, |j| {
                if result.is_err() {
                    return;
                }
                // Build the software environment for this intrinsic point.
                let env = build_env(
                    prog,
                    &tile,
                    j,
                    &outer_sp,
                    outer_sp_vals,
                    &outer_red,
                    outer_red_vals,
                )
                // Predicate-inactive points stage padding: their product
                // term must vanish, exactly like a masked scalar iteration.
                .filter(|env| def.point_active(env));
                for m in 0..num_srcs {
                    let pos = frag_position(prog, OperandRef::Src(m), j, &frag_shapes[m]);
                    let slot = match &env {
                        None => Slot::Pad,
                        Some(env) => {
                            let access = &def.inputs()[prog.correspondence()[m]];
                            let decl = def.tensor(access.tensor);
                            match checked_flat(access, decl, env) {
                                Ok(off) => Slot::Elem(off),
                                Err(e) => {
                                    result = Err(e);
                                    return;
                                }
                            }
                        }
                    };
                    let cur = frags[m][pos];
                    match (cur, slot) {
                        (Slot::Unset, s) => frags[m][pos] = s,
                        (Slot::Pad, s @ Slot::Elem(_)) => frags[m][pos] = s,
                        (Slot::Elem(_), Slot::Pad) | (Slot::Pad, Slot::Pad) => {}
                        (Slot::Elem(a), Slot::Elem(b)) if a == b => {}
                        (Slot::Elem(_), Slot::Elem(_)) => {
                            result = Err(SimError::IncoherentFragment {
                                operand: intr.compute.srcs()[m].name.clone(),
                                position: unflatten(pos as i64, &frag_shapes[m]),
                            });
                        }
                        (_, Slot::Unset) => unreachable!("slots are never written Unset"),
                    }
                }
            });
            if result.is_err() {
                return;
            }

            // Materialise fragment values.
            let frag_vals: Vec<Vec<f64>> = frags
                .iter()
                .enumerate()
                .map(|(m, frag)| {
                    let input = &tensors[def.inputs()[prog.correspondence()[m]].tensor.index()];
                    frag.iter()
                        .map(|slot| match slot {
                            Slot::Elem(off) => input.data[*off],
                            _ => 0.0,
                        })
                        .collect()
                })
                .collect();

            // Execute the intrinsic over its full problem size. Padding
            // lanes read staged zeros and contribute nothing.
            odometer(&problem, |j| {
                let dpos = frag_position(prog, OperandRef::Dst, j, &dst_shape);
                let mut srcs = [0.0f64; 4];
                for (m, vals) in frag_vals.iter().enumerate() {
                    let pos = frag_position(prog, OperandRef::Src(m), j, &frag_shapes[m]);
                    srcs[m] = vals[pos];
                }
                // Reduction-padding lanes must contribute zero; they do,
                // because at least one operand position is uniquely padded.
                dst_frag[dpos] = op.accumulate(dst_frag[dpos], &srcs[..num_srcs]);
            });
        });
        if result.is_err() {
            return;
        }

        // Scatter the destination fragment, dropping spatial padding.
        let mut spatial_space: Vec<i64> = vec![1; num_iters];
        for &t in &spatial_t {
            spatial_space[t] = problem[t];
        }
        odometer(&spatial_space, |j| {
            if result.is_err() {
                return;
            }
            let mut tile = vec![0i64; num_iters];
            for (ti, &t) in spatial_t.iter().enumerate() {
                tile[t] = sp_tiles[ti];
            }
            let env = build_env(prog, &tile, j, &outer_sp, outer_sp_vals, &[], &[]);
            let Some(env) = env else { return }; // spatial padding lane
            let dpos = frag_position(prog, OperandRef::Dst, j, &dst_shape);
            let decl = def.tensor(def.output().tensor);
            match checked_flat(def.output(), decl, &env) {
                Ok(off) => out.data[off] += dst_frag[dpos],
                Err(e) => result = Err(e),
            }
        });
    });
    result.map(|()| out)
}

/// Builds the software iteration environment for one intrinsic point, or
/// `None` when any *decoded* group lands in a padding region. Iterations not
/// supplied (e.g. reductions during scatter) default to zero.
#[allow(clippy::too_many_arguments)]
fn build_env(
    prog: &MappedProgram,
    tile: &[i64],
    j: &[i64],
    outer_sp: &[amos_ir::IterId],
    outer_sp_vals: &[i64],
    outer_red: &[amos_ir::IterId],
    outer_red_vals: &[i64],
) -> Option<Vec<i64>> {
    let def = prog.def();
    let problem = prog.intrinsic().compute.problem_size();
    let mut env = vec![0i64; def.iters().len()];
    for (t, p) in problem.iter().enumerate() {
        // During scatter only the spatial sub-space is supplied; reduction
        // groups decode their zero point, which is always valid.
        let fused = tile[t] * p + j[t];
        let decoded = prog.decode_group(t, fused)?;
        for (id, v) in decoded {
            env[id.index()] = v;
        }
    }
    for (id, v) in outer_sp.iter().zip(outer_sp_vals) {
        env[id.index()] = *v;
    }
    for (id, v) in outer_red.iter().zip(outer_red_vals) {
        env[id.index()] = *v;
    }
    Some(env)
}

/// Flat fragment position of one operand at intrinsic point `j`.
fn frag_position(prog: &MappedProgram, r: OperandRef, j: &[i64], shape: &[i64]) -> usize {
    let dims = &prog.intrinsic().compute.operand(r).dims;
    let mut pos = 0i64;
    for (e, &extent) in dims.iter().zip(shape.iter()) {
        let v = e.eval(j);
        debug_assert!(v >= 0 && v < extent, "fragment position out of range");
        pos = pos * extent + v;
    }
    pos as usize
}

fn unflatten(mut pos: i64, shape: &[i64]) -> Vec<i64> {
    let mut out = vec![0i64; shape.len()];
    for d in (0..shape.len()).rev() {
        out[d] = pos % shape[d];
        pos /= shape[d];
    }
    out
}

fn checked_flat(
    acc: &amos_ir::Access,
    decl: &amos_ir::TensorDecl,
    env: &[i64],
) -> Result<usize, SimError> {
    let strides = decl.strides();
    let mut off = 0i64;
    for (dim, (e, s)) in acc.indices.iter().zip(strides.iter()).enumerate() {
        let idx = e.eval(env);
        if idx < 0 || idx >= decl.shape[dim] {
            return Err(SimError::Ir(amos_ir::IrError::OutOfBounds {
                tensor: decl.name.clone(),
                dim,
                index: idx,
                extent: decl.shape[dim],
            }));
        }
        off += idx * s;
    }
    Ok(off as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FusedGroup, MappedProgram};
    use amos_hw::catalog;
    use amos_ir::{interp, ComputeBuilder, DType};

    fn fig3_def() -> amos_ir::ComputeDef {
        let mut b = ComputeBuilder::new("conv2d_fig3");
        let n = b.spatial("n", 1);
        let k = b.spatial("k", 4);
        let p = b.spatial("p", 2);
        let q = b.spatial("q", 2);
        let c = b.reduce("c", 1);
        let r = b.reduce("r", 3);
        let s = b.reduce("s", 3);
        let image = b.input("image", &[1, 1, 4, 4], DType::F32);
        let weight = b.input("weight", &[4, 1, 3, 3], DType::F32);
        let out = b.output("out", &[1, 4, 2, 2], DType::F32);
        b.mul_acc(
            out.at([n.ex(), k.ex(), p.ex(), q.ex()]),
            image.at([n.ex(), c.ex(), p.ex() + r.ex(), q.ex() + s.ex()]),
            weight.at([k.ex(), c.ex(), r.ex(), s.ex()]),
        );
        b.finish().unwrap()
    }

    fn run_equivalence(prog: &MappedProgram, seed: u64) {
        let tensors = interp::make_inputs(prog.def(), seed);
        let reference = interp::execute(prog.def(), &tensors).unwrap();
        let mapped = execute_mapped(prog, &tensors).unwrap();
        assert_eq!(
            reference.max_abs_diff(&mapped),
            0.0,
            "mapped execution diverged for {}",
            prog.mapping_string()
        );
        // The compiled hot path must also agree bit-for-bit with the
        // retained tree-walking executor.
        let interpreted = execute_mapped_reference(prog, &tensors).unwrap();
        assert_eq!(
            interpreted.max_abs_diff(&mapped),
            0.0,
            "compiled execution diverged from the tree-walking reference for {}",
            prog.mapping_string()
        );
    }

    #[test]
    fn fig3_mapping_is_numerically_exact() {
        let def = fig3_def();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![ids[0], ids[2], ids[3]]), // n, p, q -> i1
                FusedGroup::of(vec![ids[1]]),                 // k -> i2
                FusedGroup::of(vec![ids[4], ids[5], ids[6]]), // c, r, s -> r1
            ],
            vec![0, 1],
        )
        .unwrap();
        run_equivalence(&prog, 3);
    }

    #[test]
    fn partial_mapping_with_outer_loops_is_exact() {
        // Map only q -> i1, k -> i2, s -> r1; n, p, c, r stay outer.
        let def = fig3_def();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![ids[3]]),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[6]]),
            ],
            vec![0, 1],
        )
        .unwrap();
        run_equivalence(&prog, 11);
    }

    #[test]
    fn empty_intrinsic_axis_is_padded() {
        // GEMV-style: out[i] += a[i,k] * x[k] on the 2x2x2 mma; i2 is empty.
        let mut b = ComputeBuilder::new("gemv");
        let i = b.spatial("i", 5);
        let k = b.reduce("k", 3);
        let a = b.input("a", &[5, 3], DType::F32);
        let x = b.input("x", &[3], DType::F32);
        let o = b.output("o", &[5], DType::F32);
        b.mul_acc(o.at([i]), a.at([i, k]), x.at([k]));
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![ids[0]]),
                FusedGroup::empty(),
                FusedGroup::of(vec![ids[1]]),
            ],
            vec![0, 1],
        )
        .unwrap();
        run_equivalence(&prog, 5);
    }

    #[test]
    fn swapped_correspondence_is_exact() {
        // weight -> Src1, image -> Src2: k fuses into i1, (n,p,q) into i2.
        let def = fig3_def();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![ids[1]]),                 // k -> i1
                FusedGroup::of(vec![ids[0], ids[2], ids[3]]), // n,p,q -> i2
                FusedGroup::of(vec![ids[4], ids[5], ids[6]]), // c,r,s -> r1
            ],
            vec![1, 0],
        )
        .unwrap();
        run_equivalence(&prog, 17);
    }

    #[test]
    fn invalid_mapping_produces_wrong_numerics_or_error() {
        // Map n and k to the same intrinsic axis i1 — the paper's §5.2
        // counter-example. The fragment staging becomes incoherent or the
        // result diverges from the reference.
        let def = fig3_def();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def.clone(),
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![ids[0], ids[1]]), // n, k -> i1 (WRONG)
                FusedGroup::of(vec![ids[2], ids[3]]), // p, q -> i2
                FusedGroup::of(vec![ids[4], ids[5], ids[6]]),
            ],
            vec![0, 1],
        )
        .unwrap();
        let tensors = interp::make_inputs(&def, 23);
        let reference = interp::execute(&def, &tensors).unwrap();
        match execute_mapped(&prog, &tensors) {
            Err(_) => {}
            Ok(out) => assert!(
                out.max_abs_diff(&reference) > 0.0,
                "invalid mapping must not reproduce the reference"
            ),
        }
    }

    #[test]
    fn vnni_style_intrinsic_executes() {
        // out[i] += a[i,k] * v[k] on the VNNI matrix-vector abstraction.
        let mut bld = ComputeBuilder::new("matvec");
        let i = bld.spatial("i", 20);
        let k = bld.reduce("k", 7);
        let a = bld.input("a", &[20, 7], DType::F32);
        let b2 = bld.input("v", &[7], DType::F32);
        let o = bld.output("o", &[20], DType::F32);
        bld.mul_acc(o.at([i]), a.at([i, k]), b2.at([k]));
        let def = bld.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        let mut intr = catalog::avx512_vnni();
        // The functional path is dtype-agnostic; reuse as-is.
        intr.name = "vnni_test".into();
        let prog = MappedProgram::new(
            def,
            intr,
            vec![FusedGroup::of(vec![ids[0]]), FusedGroup::of(vec![ids[1]])],
            vec![0, 1],
        )
        .unwrap();
        run_equivalence(&prog, 31);
    }

    #[test]
    fn stats_match_the_analytic_counts() {
        // Functional instruction counts must agree with the analytic tile
        // arithmetic of MappedProgram: the two halves of the simulator
        // describe the same execution.
        let def = fig3_def();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![ids[0], ids[2], ids[3]]),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[4], ids[5], ids[6]]),
            ],
            vec![0, 1],
        )
        .unwrap();
        let tensors = interp::make_inputs(prog.def(), 9);
        let (_, stats) = execute_mapped_with_stats(&prog, &tensors).unwrap();
        assert_eq!(stats.intrinsic_calls as i64, prog.total_calls());
        assert_eq!(
            stats.total_lanes as i64,
            prog.total_calls() * prog.intrinsic().scalar_ops()
        );
        // Every real scalar operation executes exactly once.
        assert_eq!(stats.active_lanes as i64, prog.def().domain_size());
        // Lane efficiency equals the analytic padding efficiency.
        assert!(
            (stats.lane_efficiency() - prog.padding_efficiency()).abs() < 1e-12,
            "functional {} vs analytic {}",
            stats.lane_efficiency(),
            prog.padding_efficiency()
        );
        assert_eq!(stats.fragment_loads, 2 * stats.intrinsic_calls);
        // Every fig3 index expression is affine, so the compiled run must
        // never fall back to bytecode.
        assert!(stats.index_evals > 0);
        assert_eq!(stats.affine_hit_ratio(), 1.0);
    }

    #[test]
    fn odometer_empty_and_zero() {
        let mut count = 0;
        odometer(&[], |_| count += 1);
        assert_eq!(count, 1, "empty space has exactly one point");
        let mut count = 0;
        odometer(&[3, 0], |_| count += 1);
        assert_eq!(count, 0, "zero extent yields no points");
    }

    #[test]
    fn op_mismatch_rejected() {
        let mut b = ComputeBuilder::new("sum");
        let i = b.spatial("i", 2);
        let k = b.reduce("k", 2);
        let a = b.input("a", &[2, 2], DType::F32);
        let o = b.output("o", &[2], DType::F32);
        b.add_acc(o.at([i]), a.at([i, k]));
        let def = b.finish().unwrap();
        // mini mma is MulAcc with 2 sources; AddAcc def has 1 input, so the
        // correspondence length check fires first.
        let err = MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::empty(),
                FusedGroup::empty(),
                FusedGroup::empty(),
            ],
            vec![0],
        )
        .unwrap_err();
        assert!(matches!(err, SimError::MalformedMapping { .. }));
    }
}

//! Optimization schedules for mapped programs (paper Table 3a).
//!
//! A schedule decides how the mapped loop nest is tiled over the accelerator
//! hierarchy: which spatial axes are split across cores (`bind`/`parallel`),
//! how work is divided among sub-cores, how deeply reduction tiles are staged
//! in shared memory (`cache`), register-level blocking (`tile`), and the
//! `unroll`/`vectorize`/double-buffer toggles.
//!
//! Every vector is aligned with [`MappedProgram::axes`].

use crate::error::SimError;
use crate::program::{div_ceil, Axis, AxisKind, MappedProgram};
use amos_hw::{AcceleratorSpec, OperandRef};

/// A complete schedule for one mapped program.
///
/// `Hash` lets the explorer key its measured-candidate cache by
/// `(mapping index, schedule)` directly instead of formatting a string key.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Per-axis split across cores (grid dimension); must be 1 on reduction
    /// axes.
    pub grid: Vec<i64>,
    /// Per-axis *split-K* factor: parallelises a reduction axis across
    /// blocks that produce partial sums, combined by a follow-up reduction
    /// pass. Must be 1 on spatial axes. An extension over the paper's
    /// schedule table (which has no split-K), exercised by the
    /// `ablation_splitk` bench.
    pub split_k: Vec<i64>,
    /// Per-axis split across the sub-cores inside one core; must be 1 on
    /// reduction axes, and the product is bounded by the sub-core count.
    pub subcore: Vec<i64>,
    /// Per-axis shared-memory staging chunk (in tiles) for reduction axes;
    /// 1 elsewhere. Larger chunks need more shared memory but amortise
    /// synchronisation.
    pub stage: Vec<i64>,
    /// Per-axis register blocking factor for spatial tile axes: how many
    /// destination fragments along this axis stay resident, enabling source
    /// fragment reuse. 1 elsewhere.
    pub warp: Vec<i64>,
    /// Overlap data movement with compute (software pipelining); doubles the
    /// staging footprint.
    pub double_buffer: bool,
    /// Unroll inner loops (improves issue efficiency).
    pub unroll: bool,
    /// Vectorise staging transfers (improves achieved bandwidth).
    pub vectorize: bool,
}

/// Hand-written so `clone_from` reuses the five per-axis buffers — the
/// explorer's breeding loop copies parent schedules into arena slots every
/// generation, and the derived impl would reallocate all five `Vec`s.
impl Clone for Schedule {
    fn clone(&self) -> Self {
        Schedule {
            grid: self.grid.clone(),
            split_k: self.split_k.clone(),
            subcore: self.subcore.clone(),
            stage: self.stage.clone(),
            warp: self.warp.clone(),
            double_buffer: self.double_buffer,
            unroll: self.unroll,
            vectorize: self.vectorize,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.grid.clone_from(&src.grid);
        self.split_k.clone_from(&src.split_k);
        self.subcore.clone_from(&src.subcore);
        self.stage.clone_from(&src.stage);
        self.warp.clone_from(&src.warp);
        self.double_buffer = src.double_buffer;
        self.unroll = src.unroll;
        self.vectorize = src.vectorize;
    }
}

impl Schedule {
    /// The identity schedule: fully sequential on one core, minimal staging.
    pub fn naive(prog: &MappedProgram) -> Self {
        let n = prog.axes().len();
        Schedule {
            grid: vec![1; n],
            split_k: vec![1; n],
            subcore: vec![1; n],
            stage: vec![1; n],
            warp: vec![1; n],
            double_buffer: false,
            unroll: false,
            vectorize: false,
        }
    }

    /// An empty schedule with no per-axis entries; an arena placeholder to
    /// be filled via [`Schedule::reset_naive`] or `clone_from`.
    pub fn empty() -> Self {
        Schedule {
            grid: Vec::new(),
            split_k: Vec::new(),
            subcore: Vec::new(),
            stage: Vec::new(),
            warp: Vec::new(),
            double_buffer: false,
            unroll: false,
            vectorize: false,
        }
    }

    /// Resets to the identity schedule for an `n`-axis program in place,
    /// reusing the existing buffers ([`Schedule::naive`] without the
    /// allocations).
    pub fn reset_naive(&mut self, n: usize) {
        for v in [
            &mut self.grid,
            &mut self.split_k,
            &mut self.subcore,
            &mut self.stage,
            &mut self.warp,
        ] {
            v.clear();
            v.resize(n, 1);
        }
        self.double_buffer = false;
        self.unroll = false;
        self.vectorize = false;
    }

    /// A reasonable default: greedily bind the largest spatial axes across
    /// cores until the device is oversubscribed ~2x, split the largest
    /// remaining spatial axis over sub-cores, and enable the toggles.
    pub fn balanced(prog: &MappedProgram, accel: &AcceleratorSpec) -> Self {
        let axes = prog.axes();
        let mut s = Schedule::naive(prog);
        // A degenerate accelerator with no memory hierarchy admits no
        // parallelism or staging decisions; the naive schedule is the only
        // sensible (and panic-free) answer.
        if accel.levels.is_empty() {
            return s;
        }
        s.double_buffer = true;
        s.unroll = true;
        s.vectorize = true;

        let cores = accel.total_units(accel.shared_level()) as i64;
        let target_blocks = 2 * cores;
        let mut blocks = 1i64;
        let spatial: Vec<usize> = (0..axes.len())
            .filter(|&i| axes[i].kind.is_spatial())
            .collect();
        // Grow the grid by doubling the axis with the largest remaining
        // per-block chunk — a roughly square grid minimises operand re-reads.
        while blocks < target_blocks {
            let Some(&i) = spatial
                .iter()
                .filter(|&&i| s.grid[i] < axes[i].extent)
                .max_by_key(|&&i| div_ceil(axes[i].extent, s.grid[i]))
            else {
                break;
            };
            let grown = (s.grid[i] * 2).min(axes[i].extent);
            blocks = blocks / s.grid[i] * grown;
            s.grid[i] = grown;
        }
        // Sub-core split on the spatial axis with the largest leftover chunk.
        let subcores = subcores_per_core(accel) as i64;
        if let Some(&i) = spatial
            .iter()
            .max_by_key(|&&i| s.block_chunk(axes, i))
            .filter(|&&i| s.block_chunk(axes, i) >= subcores)
        {
            s.subcore[i] = subcores;
        }
        // Register-block the spatial tile axes and stage a couple of
        // reduction tiles; shrink if the footprints overflow.
        for (i, a) in axes.iter().enumerate() {
            match a.kind {
                AxisKind::TileSpatial(_) => {
                    s.warp[i] = s.subcore_chunk(axes, i).min(2);
                }
                AxisKind::TileReduction(_) => {
                    s.stage[i] = a.extent.min(2);
                }
                _ => {}
            }
        }
        while s.validate(prog, accel).is_err() && s.warp.iter().any(|&w| w > 1) {
            for w in &mut s.warp {
                *w = (*w / 2).max(1);
            }
        }
        if s.validate(prog, accel).is_err() {
            for st in &mut s.stage {
                *st = 1;
            }
            s.double_buffer = false;
        }
        s
    }

    /// Validates the schedule against the program shape and the accelerator
    /// memory capacities.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidSchedule`] for malformed parameters and
    /// [`SimError::CapacityExceeded`] when staging or register footprints
    /// exceed the hardware.
    pub fn validate(&self, prog: &MappedProgram, accel: &AcceleratorSpec) -> Result<(), SimError> {
        // Guard the hierarchy lookups below: `shared_level()` (and the
        // register-capacity probe at level 0) would panic on an accelerator
        // description with no levels, which user code can construct.
        if accel.levels.is_empty() {
            return Err(SimError::InvalidSchedule {
                detail: format!(
                    "accelerator `{}` has no memory hierarchy levels",
                    accel.name
                ),
            });
        }
        let axes = prog.axes();
        let n = axes.len();
        for (name, v) in [
            ("grid", &self.grid),
            ("split_k", &self.split_k),
            ("subcore", &self.subcore),
            ("stage", &self.stage),
            ("warp", &self.warp),
        ] {
            if v.len() != n {
                return Err(SimError::InvalidSchedule {
                    detail: format!("{name} has {} entries for {n} axes", v.len()),
                });
            }
            if v.iter().any(|&x| x < 1) {
                return Err(SimError::InvalidSchedule {
                    detail: format!("{name} contains a factor < 1"),
                });
            }
        }
        for (i, a) in axes.iter().enumerate() {
            if !a.kind.is_spatial() && (self.grid[i] != 1 || self.subcore[i] != 1) {
                return Err(SimError::InvalidSchedule {
                    detail: "reduction axes are parallelised via split_k, not grid".into(),
                });
            }
            if a.kind.is_spatial() && self.split_k[i] != 1 {
                return Err(SimError::InvalidSchedule {
                    detail: "split-K factors apply to reduction axes only".into(),
                });
            }
            if a.kind.is_spatial() && self.stage[i] != 1 {
                return Err(SimError::InvalidSchedule {
                    detail: "staging factors apply to reduction axes only".into(),
                });
            }
            if self.warp[i] != 1 && !matches!(a.kind, AxisKind::TileSpatial(_)) {
                return Err(SimError::InvalidSchedule {
                    detail: "register blocking applies to spatial tile axes only".into(),
                });
            }
            if self.grid[i] * self.split_k[i] > a.extent || self.subcore[i] > a.extent {
                return Err(SimError::InvalidSchedule {
                    detail: format!("split larger than axis extent {}", a.extent),
                });
            }
        }
        let subcores = subcores_per_core(accel) as i64;
        let sub_product: i64 = self.subcore.iter().product();
        if sub_product > subcores {
            return Err(SimError::InvalidSchedule {
                detail: format!("{sub_product} sub-core splits for {subcores} sub-cores"),
            });
        }

        // Shared-memory staging footprint.
        let shared_level = accel.shared_level();
        let shared_cap = accel.levels[shared_level].memory.capacity_bytes;
        let needed = self.shared_footprint_bytes(prog);
        if needed > shared_cap {
            return Err(SimError::CapacityExceeded {
                level: accel.levels[shared_level].name.clone(),
                needed_bytes: needed,
                available_bytes: shared_cap,
            });
        }

        // Register footprint per PE array.
        let reg_cap = accel.levels[0].memory.capacity_bytes;
        let reg_needed = self.register_footprint_bytes(prog);
        if reg_needed > reg_cap {
            return Err(SimError::CapacityExceeded {
                level: accel.levels[0].name.clone(),
                needed_bytes: reg_needed,
                available_bytes: reg_cap,
            });
        }
        Ok(())
    }

    /// Per-block trip count of an axis (per core): the extent divided by the
    /// grid split (spatial axes) or the split-K factor (reduction axes).
    pub fn block_chunk(&self, axes: &[Axis], i: usize) -> i64 {
        div_ceil(axes[i].extent, self.grid[i] * self.split_k[i])
    }

    /// Total split-K parallelism across reduction axes.
    pub fn split_k_factor(&self) -> i64 {
        self.split_k.iter().product()
    }

    /// Per-sub-core trip count of an axis.
    pub fn subcore_chunk(&self, axes: &[Axis], i: usize) -> i64 {
        div_ceil(self.block_chunk(axes, i), self.subcore[i])
    }

    /// Number of blocks launched (grid splits times split-K partials).
    pub fn blocks(&self) -> i64 {
        self.grid.iter().product::<i64>() * self.split_k_factor()
    }

    /// Tiles of an axis resident in staging memory at one time: the
    /// concurrently-worked spatial tiles (sub-core x register blocking) or
    /// the staged reduction chunk.
    pub fn resident_tiles(&self, axes: &[Axis], i: usize) -> i64 {
        let chunk = self.block_chunk(axes, i);
        match axes[i].kind {
            AxisKind::TileSpatial(_) => (self.subcore[i] * self.warp[i]).min(chunk),
            AxisKind::TileReduction(_) => self.stage[i].min(chunk),
            AxisKind::OuterSpatial(_) | AxisKind::OuterReduction(_) => 1,
        }
    }

    /// Sequential staging steps a block takes along a spatial axis.
    pub fn spatial_steps(&self, axes: &[Axis], i: usize) -> i64 {
        debug_assert!(axes[i].kind.is_spatial());
        div_ceil(self.block_chunk(axes, i), self.resident_tiles(axes, i))
    }

    /// Shared-memory bytes staged per core at any time: for every source
    /// operand, the resident tile set along each axis it depends on, doubled
    /// when double-buffering.
    pub fn shared_footprint_bytes(&self, prog: &MappedProgram) -> u64 {
        let axes = prog.axes();
        let intr = prog.intrinsic();
        let mut total = 0u64;
        for m in 0..intr.compute.num_srcs() {
            let mut tiles = 1i64;
            for (i, a) in axes.iter().enumerate() {
                if prog.operand_uses_axis(m, a) {
                    tiles *= self.resident_tiles(axes, i);
                }
            }
            total += tiles as u64 * intr.fragment_bytes(OperandRef::Src(m));
        }
        if self.double_buffer {
            total *= 2;
        }
        total
    }

    /// Bytes of one operand loaded from global memory by one block: a full
    /// pass over the operand's footprint, repeated once per staging step of
    /// every *spatial* axis the operand does not depend on (the classic
    /// re-read model: larger resident tiles mean fewer passes).
    pub fn block_read_bytes(&self, prog: &MappedProgram, operand_row: usize) -> u64 {
        let axes = prog.axes();
        let intr = prog.intrinsic();
        let mut bytes_per_pass = 1i64;
        let mut passes = 1i64;
        for (i, a) in axes.iter().enumerate() {
            if prog.operand_uses_axis(operand_row, a) {
                bytes_per_pass *= self.block_chunk(axes, i);
            } else if a.kind.is_spatial() {
                passes *= self.spatial_steps(axes, i);
            }
        }
        let frag = intr.fragment_bytes(OperandRef::Src(operand_row));
        bytes_per_pass as u64 * passes as u64 * frag
    }

    /// Register bytes resident per PE array: the destination fragments of
    /// the warp tile plus one source fragment per operand per warp-tile axis
    /// it spans.
    pub fn register_footprint_bytes(&self, prog: &MappedProgram) -> u64 {
        let axes = prog.axes();
        let intr = prog.intrinsic();
        let num_srcs = intr.compute.num_srcs();
        let dst_row = num_srcs;
        let mut dst_tiles = 1i64;
        for (i, a) in axes.iter().enumerate() {
            if matches!(a.kind, AxisKind::TileSpatial(_)) && prog.operand_uses_axis(dst_row, a) {
                dst_tiles *= self.warp[i].min(self.subcore_chunk(axes, i));
            }
        }
        let mut total = dst_tiles as u64 * intr.fragment_bytes(OperandRef::Dst);
        for m in 0..num_srcs {
            let mut tiles = 1i64;
            for (i, a) in axes.iter().enumerate() {
                if matches!(a.kind, AxisKind::TileSpatial(_)) && prog.operand_uses_axis(m, a) {
                    tiles *= self.warp[i].min(self.subcore_chunk(axes, i));
                }
            }
            total += tiles as u64 * intr.fragment_bytes(OperandRef::Src(m));
        }
        total
    }
}

/// Sub-cores contained in one core (one unit of the shared-memory level).
pub fn subcores_per_core(accel: &AcceleratorSpec) -> u64 {
    let shared = accel.shared_level();
    accel.levels[1..=shared]
        .iter()
        .map(|l| l.inner_units)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FusedGroup, MappedProgram};
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn gemm_prog(m: i64, n: i64, k: i64) -> MappedProgram {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", m);
        let j = b.spatial("j", n);
        let kk = b.reduce("k", k);
        let a = b.input("a", &[m, k], DType::F16);
        let w = b.input("b", &[k, n], DType::F16);
        let c = b.output("c", &[m, n], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, kk]), w.at([kk, j]));
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        MappedProgram::new(
            def,
            catalog::wmma_16x16x16(),
            vec![
                FusedGroup::of(vec![ids[0]]),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[2]]),
            ],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn naive_schedule_validates() {
        let prog = gemm_prog(256, 256, 256);
        let s = Schedule::naive(&prog);
        s.validate(&prog, &catalog::v100()).unwrap();
        assert_eq!(s.blocks(), 1);
    }

    #[test]
    fn balanced_schedule_fills_the_device() {
        let prog = gemm_prog(4096, 4096, 1024);
        let accel = catalog::v100();
        let s = Schedule::balanced(&prog, &accel);
        s.validate(&prog, &accel).unwrap();
        let cores = accel.total_units(accel.shared_level()) as i64;
        assert!(s.blocks() >= cores, "balanced schedule underfills");
    }

    #[test]
    fn reduction_axis_cannot_be_grid_split() {
        let prog = gemm_prog(256, 256, 256);
        let mut s = Schedule::naive(&prog);
        // axes: [TileSpatial(i1), TileSpatial(i2), TileReduction(r1)]
        s.grid[2] = 2;
        assert!(matches!(
            s.validate(&prog, &catalog::v100()),
            Err(SimError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn oversized_staging_exceeds_shared_capacity() {
        let prog = gemm_prog(4096, 4096, 65536);
        let mut s = Schedule::naive(&prog);
        // Stage every reduction tile at once: 4096 tiles x 512 B x 2 operands
        // x (spatial chunk 256 tiles...) far beyond 96 KiB.
        s.stage[2] = prog.axes()[2].extent;
        assert!(matches!(
            s.validate(&prog, &catalog::v100()),
            Err(SimError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn warp_blocking_increases_register_footprint() {
        let prog = gemm_prog(512, 512, 512);
        let mut s = Schedule::naive(&prog);
        let base = s.register_footprint_bytes(&prog);
        s.warp[0] = 4;
        s.warp[1] = 2;
        let blocked = s.register_footprint_bytes(&prog);
        assert!(blocked > base);
        // dst: 4*2 frags (8 KiB) + src1: 4 frags + src2: 2 frags (3 KiB).
        assert_eq!(blocked, 8 * 1024 + 4 * 512 + 2 * 512);
    }

    #[test]
    fn double_buffer_doubles_shared_footprint() {
        let prog = gemm_prog(256, 256, 256);
        let mut s = Schedule::naive(&prog);
        let base = s.shared_footprint_bytes(&prog);
        s.double_buffer = true;
        assert_eq!(s.shared_footprint_bytes(&prog), 2 * base);
    }

    #[test]
    fn wrong_length_rejected() {
        let prog = gemm_prog(64, 64, 64);
        let mut s = Schedule::naive(&prog);
        s.grid.pop();
        assert!(matches!(
            s.validate(&prog, &catalog::v100()),
            Err(SimError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn split_k_multiplies_blocks_and_shrinks_chunks() {
        let prog = gemm_prog(256, 256, 4096);
        let mut s = Schedule::naive(&prog);
        // axes: [TileSpatial(i1), TileSpatial(i2), TileReduction(r1)]
        s.split_k[2] = 4;
        s.validate(&prog, &catalog::v100()).unwrap();
        assert_eq!(s.blocks(), 4);
        assert_eq!(s.split_k_factor(), 4);
        let axes = prog.axes();
        assert_eq!(s.block_chunk(axes, 2), 64); // 256 reduction tiles / 4
    }

    #[test]
    fn split_k_rejected_on_spatial_axes() {
        let prog = gemm_prog(256, 256, 256);
        let mut s = Schedule::naive(&prog);
        s.split_k[0] = 2;
        assert!(matches!(
            s.validate(&prog, &catalog::v100()),
            Err(SimError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn empty_hierarchy_is_a_typed_error_not_a_panic() {
        let prog = gemm_prog(64, 64, 64);
        let mut accel = catalog::v100();
        accel.levels.clear();
        let s = Schedule::naive(&prog);
        assert!(matches!(
            s.validate(&prog, &accel),
            Err(SimError::InvalidSchedule { .. })
        ));
        assert_eq!(Schedule::balanced(&prog, &accel), Schedule::naive(&prog));
    }

    #[test]
    fn subcores_per_core_counts_hierarchy() {
        assert_eq!(subcores_per_core(&catalog::v100()), 4);
        assert_eq!(subcores_per_core(&catalog::mali_g76()), 3);
    }

    #[test]
    fn reset_naive_matches_naive() {
        let prog = gemm_prog(256, 256, 256);
        let accel = catalog::v100();
        let mut s = Schedule::balanced(&prog, &accel);
        s.reset_naive(prog.axes().len());
        assert_eq!(s, Schedule::naive(&prog));
        let mut e = Schedule::empty();
        e.reset_naive(prog.axes().len());
        assert_eq!(e, Schedule::naive(&prog));
    }

    #[test]
    fn clone_from_copies_every_field() {
        let prog = gemm_prog(256, 256, 256);
        let accel = catalog::v100();
        let src = Schedule::balanced(&prog, &accel);
        let mut dst = Schedule::empty();
        dst.clone_from(&src);
        assert_eq!(dst, src);
    }
}

//! The compiled form of a [`MappedProgram`]: a one-time lowering of every
//! index expression, group decode and operand dependence into flat tables so
//! the functional executor and timing engine walk strides instead of
//! re-interpreting `Expr` trees per scalar lane.
//!
//! Built lazily (and exactly once) per program via
//! [`MappedProgram::compiled`]; the cache is shared by clones through an
//! `Arc`, so the explorer's heuristic-seed and measure-top stages pay the
//! lowering cost once per candidate, not once per evaluation.

use crate::error::SimError;
use crate::program::{Axis, AxisKind, MappedProgram};
use amos_hw::OperandRef;
use amos_ir::{IterId, IterKind, LaneExpr};

/// Mixed-radix decode table for one fused group: fused index → software
/// iteration values written straight into the environment buffer.
#[derive(Debug)]
pub(crate) struct GroupDecode {
    /// `(env slot, extent)` per member, fusion order (first most
    /// significant).
    pub members: Vec<(usize, i64)>,
    /// Intrinsic problem size along this iteration.
    pub problem: i64,
}

/// One compiled dimension of a tensor access: the lane program for its index
/// expression plus the tensor extent and row-major stride.
#[derive(Debug)]
pub(crate) struct CompiledDim {
    pub lane: LaneExpr,
    pub extent: i64,
    pub stride: i64,
}

/// A tensor access with every index expression compiled.
#[derive(Debug)]
pub(crate) struct CompiledAccess {
    /// Index of the backing tensor in the computation's declaration list.
    pub tensor: usize,
    /// Tensor name, for out-of-bounds diagnostics (cold path only).
    pub name: String,
    pub dims: Vec<CompiledDim>,
    /// How many of `dims` compiled to the affine fast path.
    pub affine_dims: u64,
}

impl CompiledAccess {
    /// Flat element offset under `env`, bounds-checked per dimension exactly
    /// like the interpreted `checked_flat`.
    #[inline]
    pub fn flat_offset(&self, env: &[i64], stack: &mut Vec<i64>) -> Result<usize, SimError> {
        let mut off = 0i64;
        for (dim, d) in self.dims.iter().enumerate() {
            let idx = d.lane.eval(env, stack);
            if idx < 0 || idx >= d.extent {
                return Err(SimError::Ir(amos_ir::IrError::OutOfBounds {
                    tensor: self.name.clone(),
                    dim,
                    index: idx,
                    extent: d.extent,
                }));
            }
            off += idx * d.stride;
        }
        Ok(off as usize)
    }
}

/// Affine fragment addressing for one intrinsic operand: the flat fragment
/// position at intrinsic point `j` is `base + Σ strides[t] · j[t]`. Always
/// exists because the compute abstraction validates its operand dimensions
/// as affine.
#[derive(Debug)]
pub(crate) struct FragAffine {
    pub base: i64,
    pub strides: Vec<i64>,
}

impl FragAffine {
    /// Flat fragment position of the operand at intrinsic point `j`.
    #[inline]
    pub fn position(&self, j: &[i64]) -> usize {
        let mut pos = self.base;
        for (s, v) in self.strides.iter().zip(j) {
            pos += s * v;
        }
        pos as usize
    }
}

/// Everything `execute_mapped`/`simulate` need per candidate, lowered once.
#[derive(Debug)]
pub(crate) struct CompiledProgram {
    /// The loop axes of the mapped program (see [`MappedProgram::axes`]).
    pub axes: Vec<Axis>,
    /// Decode tables, one per intrinsic iteration.
    pub groups: Vec<GroupDecode>,
    /// Intrinsic problem sizes per iteration.
    pub problem: Vec<i64>,
    /// Indices of spatial / reduction intrinsic iterations.
    pub spatial_t: Vec<usize>,
    pub reduction_t: Vec<usize>,
    /// Unmapped software iterations as `(env slot, extent)`, split by kind.
    pub outer_sp: Vec<(usize, i64)>,
    pub outer_red: Vec<(usize, i64)>,
    /// Per operand slot (sources then destination): does it depend on
    /// intrinsic iteration `t`? Mirror of the intrinsic access matrix `Z`.
    pub tile_deps: Vec<Vec<bool>>,
    /// Per operand slot: does its software access use software iteration
    /// `s`?
    pub outer_deps: Vec<Vec<bool>>,
    /// Compiled software accesses feeding each source slot, in slot order.
    pub src_accesses: Vec<CompiledAccess>,
    /// Compiled output access.
    pub dst_access: CompiledAccess,
    /// Fragment addressing per source slot, then the destination.
    pub src_frags: Vec<FragAffine>,
    pub dst_frag: FragAffine,
    /// Fragment shapes per source slot and for the destination.
    pub frag_shapes: Vec<Vec<i64>>,
    pub dst_shape: Vec<i64>,
    /// Compiled guard predicates; a point is active when all evaluate to 0.
    pub predicates: Vec<LaneExpr>,
}

impl CompiledProgram {
    /// Lowers a mapped program. Pure function of the program's logical
    /// fields, so the cache never goes stale.
    pub fn build(prog: &MappedProgram) -> CompiledProgram {
        let def = prog.def();
        let intr = prog.intrinsic();
        let num_iters = intr.compute.iters().len();
        let num_srcs = intr.compute.num_srcs();
        let extents = def.extents();

        // Axes, identical to the historical eager computation.
        let mut axes = Vec::new();
        for &id in prog.outer() {
            let v = def.iter_var(id);
            if v.kind == IterKind::Spatial {
                axes.push(Axis {
                    kind: AxisKind::OuterSpatial(id),
                    extent: v.extent,
                });
            }
        }
        for (t, it) in intr.compute.iters().iter().enumerate() {
            if it.kind == IterKind::Spatial {
                axes.push(Axis {
                    kind: AxisKind::TileSpatial(t),
                    extent: prog.tiles(t),
                });
            }
        }
        for &id in prog.outer() {
            let v = def.iter_var(id);
            if v.kind == IterKind::Reduction {
                axes.push(Axis {
                    kind: AxisKind::OuterReduction(id),
                    extent: v.extent,
                });
            }
        }
        for (t, it) in intr.compute.iters().iter().enumerate() {
            if it.kind == IterKind::Reduction {
                axes.push(Axis {
                    kind: AxisKind::TileReduction(t),
                    extent: prog.tiles(t),
                });
            }
        }

        let problem = intr.compute.problem_size();
        let groups = (0..num_iters)
            .map(|t| GroupDecode {
                members: prog.groups()[t]
                    .iters
                    .iter()
                    .map(|id| (id.index(), def.iter_var(*id).extent))
                    .collect(),
                problem: problem[t],
            })
            .collect();
        let spatial_t = (0..num_iters)
            .filter(|&t| intr.compute.iters()[t].kind == IterKind::Spatial)
            .collect();
        let reduction_t = (0..num_iters)
            .filter(|&t| intr.compute.iters()[t].kind == IterKind::Reduction)
            .collect();
        let split_outer = |kind: IterKind| -> Vec<(usize, i64)> {
            prog.outer()
                .iter()
                .filter(|&&id| def.iter_var(id).kind == kind)
                .map(|&id| (id.index(), def.iter_var(id).extent))
                .collect()
        };

        // Operand dependence tables (replaces the per-call access_matrix()
        // allocation the old operand_uses_axis performed).
        let z = intr.compute.access_matrix();
        let slot_access = |row: usize| -> &amos_ir::Access {
            if row < num_srcs {
                &def.inputs()[prog.correspondence()[row]]
            } else {
                def.output()
            }
        };
        let tile_deps = (0..num_srcs + 1)
            .map(|row| (0..num_iters).map(|t| z.get(row, t)).collect())
            .collect();
        let outer_deps = (0..num_srcs + 1)
            .map(|row| {
                let access = slot_access(row);
                (0..def.iters().len())
                    .map(|s| {
                        let id = IterId(s as u32);
                        access.indices.iter().any(|e| e.uses(id))
                    })
                    .collect()
            })
            .collect();

        let compile_access = |access: &amos_ir::Access| -> CompiledAccess {
            let decl = def.tensor(access.tensor);
            let strides = decl.strides();
            let dims: Vec<CompiledDim> = access
                .indices
                .iter()
                .zip(strides.iter())
                .enumerate()
                .map(|(dim, (e, &stride))| CompiledDim {
                    lane: LaneExpr::compile(e, &extents),
                    extent: decl.shape[dim],
                    stride,
                })
                .collect();
            let affine_dims = dims.iter().filter(|d| d.lane.is_affine()).count() as u64;
            CompiledAccess {
                tensor: access.tensor.index(),
                name: decl.name.clone(),
                dims,
                affine_dims,
            }
        };
        let src_accesses: Vec<CompiledAccess> = (0..num_srcs)
            .map(|m| compile_access(&def.inputs()[prog.correspondence()[m]]))
            .collect();
        let dst_access = compile_access(def.output());

        // Fragment addressing: fold the (affine) operand dimension
        // expressions and the fragment row-major strides into one
        // base-plus-stride table over the intrinsic point.
        let compile_frag = |r: OperandRef, shape: &[i64]| -> FragAffine {
            let mut base = 0i64;
            let mut strides = vec![0i64; num_iters];
            let mut row_stride = 1i64;
            let dims = &intr.compute.operand(r).dims;
            for d in (0..dims.len()).rev() {
                let (coeffs, c) = dims[d]
                    .affine_coefficients(num_iters)
                    .expect("intrinsic operand dimensions are validated affine");
                base += c * row_stride;
                for (t, coeff) in coeffs.iter().enumerate() {
                    strides[t] += coeff * row_stride;
                }
                row_stride *= shape[d];
            }
            FragAffine { base, strides }
        };
        let frag_shapes: Vec<Vec<i64>> = (0..num_srcs)
            .map(|m| intr.compute.fragment_shape(OperandRef::Src(m)))
            .collect();
        let dst_shape = intr.compute.fragment_shape(OperandRef::Dst);
        let src_frags = (0..num_srcs)
            .map(|m| compile_frag(OperandRef::Src(m), &frag_shapes[m]))
            .collect();
        let dst_frag = compile_frag(OperandRef::Dst, &dst_shape);

        let predicates = def
            .predicates()
            .iter()
            .map(|e| LaneExpr::compile(e, &extents))
            .collect();

        CompiledProgram {
            axes,
            groups,
            problem,
            spatial_t,
            reduction_t,
            outer_sp: split_outer(IterKind::Spatial),
            outer_red: split_outer(IterKind::Reduction),
            tile_deps,
            outer_deps,
            src_accesses,
            dst_access,
            src_frags,
            dst_frag,
            frag_shapes,
            dst_shape,
            predicates,
        }
    }

    /// Decodes every fused group at `(tile, j)` directly into the
    /// environment buffer, returning `false` when any group index lands in a
    /// trailing padding region (the buffer's mapped slots may then be
    /// partially written; callers must treat the point as padding).
    /// Outer-loop slots are untouched.
    #[inline]
    pub fn build_env_into(&self, env: &mut [i64], tile: &[i64], j: &[i64]) -> bool {
        for (t, g) in self.groups.iter().enumerate() {
            let mut rem = tile[t] * g.problem + j[t];
            for &(slot, extent) in g.members.iter().rev() {
                env[slot] = rem % extent;
                rem /= extent;
            }
            if rem != 0 {
                return false;
            }
        }
        true
    }

    /// True when the point is guard-active (every compiled predicate is 0).
    #[inline]
    pub fn point_active(&self, env: &[i64], stack: &mut Vec<i64>) -> bool {
        self.predicates.iter().all(|p| p.eval(env, stack) == 0)
    }
}

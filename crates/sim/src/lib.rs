//! # amos-sim — functional and timing simulation of spatial accelerators
//!
//! The AMOS paper evaluates on real Tensor Core GPUs, AVX-512 CPUs and Mali
//! GPUs; this crate is the substitute substrate (DESIGN.md §2): it executes
//! *mapped programs* — tensor computations bound to an intrinsic through a
//! compute mapping — both functionally (exact numerics through explicit
//! register-fragment staging) and temporally (a hierarchical cycle model that
//! serves as ground truth for mapping exploration).
//!
//! * [`MappedProgram`] — the tiled physical form of paper §5.1,
//! * [`functional::execute_mapped`] — numerics; compared bit-for-bit against
//!   the reference interpreter in tests,
//! * [`Schedule`] — the optimisation schedule space of paper Table 3a,
//! * [`timing::simulate`] — cycle-level ground truth with wave quantisation,
//!   pipeline fill and launch overhead,
//! * [`timing::scalar_fallback_cycles`] — the general-purpose-unit fallback
//!   used by baseline compilers when mapping fails.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compiled;
mod error;
mod program;
mod schedule;
mod screening;

pub mod functional;
pub mod isolate;
pub mod timing;

pub use error::SimError;
pub use functional::{
    execute_mapped, execute_mapped_isolated, execute_mapped_reference, execute_mapped_with_stats,
    ExecStats,
};
pub use program::{div_ceil, Axis, AxisKind, FusedGroup, MappedProgram};
pub use schedule::{subcores_per_core, Schedule};
pub use screening::{BatchTables, ScreeningContext, BATCH_LANES};
pub use timing::{scalar_fallback_cycles, simulate, simulate_isolated, TimingReport};

// The explorer shares programs, schedules and reports across worker threads
// by reference; these compile-time assertions keep the types thread-safe.
// (MappedProgram's compiled cache is a OnceLock — interior mutability, but
// write-once and Sync by construction.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MappedProgram>();
    assert_send_sync::<ScreeningContext>();
    assert_send_sync::<Schedule>();
    assert_send_sync::<TimingReport>();
    assert_send_sync::<SimError>();
};

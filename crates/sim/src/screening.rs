//! Precomputed screening tables for the analytic performance model.
//!
//! The genetic explorer screens thousands of (mapping × schedule) candidates
//! per generation. Every quantity the analytic model needs that depends only
//! on the `(MappedProgram, AcceleratorSpec)` pair — axis kinds, per-operand
//! axis-usage bitmasks, fragment byte sizes, bandwidth reciprocals, memory
//! capacities — is folded into a [`ScreeningContext`] once, so the per-
//! candidate evaluation is straight-line arithmetic over flat tables with no
//! allocation, no hash lookups and no `String` error construction.
//!
//! The context is cached on [`MappedProgram`] next to the compiled program
//! (see [`MappedProgram::screening_context`]); predictions computed through
//! it are bit-identical to the reference model, which the core crate asserts
//! in unit tests and a proptest.

use crate::program::{Axis, AxisKind, MappedProgram};
use crate::schedule::{subcores_per_core, Schedule};
use amos_hw::{AcceleratorSpec, OperandRef};

/// Number of candidate lanes the batched screening path evaluates together
/// (see [`ScreeningContext::fill_batch_tables`] and
/// `amos_core::perf_model::predict_batch`). Eight `f64` lanes fill two AVX2
/// registers (or one AVX-512 register), and the remainder chunk of a batch
/// simply runs with fewer live lanes.
pub const BATCH_LANES: usize = 8;

/// Reusable per-axis, per-lane integer tables for one chunk of schedules.
///
/// Layout is axis-major, lane-minor: entry `i * BATCH_LANES + l` belongs to
/// axis `i` of lane (candidate) `l`, so the model's per-axis loops walk
/// contiguous lanes — the shape auto-vectorisers want. The buffers grow to
/// the widest program seen and are never shrunk, so a caller that keeps one
/// `BatchTables` alive screens entire generations without allocating.
#[derive(Debug, Default)]
pub struct BatchTables {
    /// Per-block chunk of each axis (`Schedule::block_chunk`).
    pub blk: Vec<i64>,
    /// Per-sub-core chunk of each axis (`Schedule::subcore_chunk`).
    pub sub: Vec<i64>,
    /// Sequential staging steps along spatial axes
    /// (`Schedule::spatial_steps`); untouched on non-spatial axes.
    pub steps: Vec<i64>,
    /// Per-axis register reuse factor `warp.min(sub)` — the model's
    /// register-level walk reads it on tile-spatial axes, precomputed here so
    /// the walk never chases `Schedule` pointers.
    pub wsub: Vec<i64>,
    /// Blocks launched by each lane (`Schedule::blocks`).
    pub blocks: [i64; BATCH_LANES],
}

/// [`div_ceil`](crate::div_ceil) with a shift fast path for power-of-two
/// divisors — the only factors the schedule sampler emits. Value-identical
/// to the plain division for every positive divisor, so the batched tables
/// stay integer-identical to the scalar helpers.
#[inline]
fn div_ceil_pow2(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let t = a + b - 1;
    if b > 0 && b & (b - 1) == 0 {
        t >> b.trailing_zeros()
    } else {
        t / b
    }
}

/// Flat, allocation-free view of everything the analytic model and the
/// schedule sampler need about one `(MappedProgram, AcceleratorSpec)` pair.
///
/// Axis sets are stored twice: as `u64` bitmasks (for the model's masked
/// products) and as index lists (for the sampler's uniform `choose` draws,
/// which must see the same list lengths as the reference implementation).
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningContext {
    /// The program's loop axes, outer-to-inner (a copy of
    /// [`MappedProgram::axes`], so borrowing the context does not borrow the
    /// program).
    pub axes: Vec<Axis>,
    /// Number of intrinsic source operands.
    pub num_srcs: usize,
    /// Bit `i` set when axis `i` is spatial (outer or tile).
    pub spatial_mask: u64,
    /// Bit `i` set when axis `i` is a spatial tile loop.
    pub tile_spatial_mask: u64,
    /// Bit `i` set when axis `i` is a reduction tile loop.
    pub tile_reduction_mask: u64,
    /// `operand_masks[o]` has bit `i` set when operand row `o` (sources then
    /// destination) depends on axis `i` — the bitmask form of
    /// [`MappedProgram::operand_uses_axis`].
    pub operand_masks: Vec<u64>,
    /// Fragment bytes of each source operand.
    pub src_frag_bytes: Vec<u64>,
    /// Fragment bytes of the destination operand.
    pub dst_frag_bytes: u64,
    /// Intrinsic initiation interval, in cycles (as `f64`).
    pub initiation_interval: f64,
    /// Reciprocal register-level load bandwidth; `0.0` when the level
    /// reports zero bandwidth (the reference model skips the term).
    pub inv_register_bw: f64,
    /// Reciprocal staging-level load bandwidth; `0.0` on zero bandwidth.
    pub inv_shared_bw: f64,
    /// Reciprocal device load bandwidth (unguarded: zero bandwidth is a
    /// hard `inf`, matching the reference).
    pub inv_device_load_bw: f64,
    /// Reciprocal device store bandwidth (unguarded).
    pub inv_device_store_bw: f64,
    /// Cores below the staging level, as `f64`.
    pub cores: f64,
    /// `1.0 / cores`.
    pub inv_cores: f64,
    /// Sub-cores per core.
    pub subcores: i64,
    /// Staging-memory capacity per core, in bytes.
    pub shared_capacity_bytes: u64,
    /// Register capacity per PE array, in bytes.
    pub register_capacity_bytes: u64,
    /// Indices of spatial axes, ascending (the sampler's sub-core draw).
    pub spatial_axes: Vec<usize>,
    /// Indices of non-spatial (reduction) axes, ascending.
    pub nonspatial_axes: Vec<usize>,
    /// Indices of spatial tile axes, ascending.
    pub tile_spatial_axes: Vec<usize>,
    /// Indices of reduction tile axes, ascending.
    pub tile_reduction_axes: Vec<usize>,
}

impl ScreeningContext {
    /// Folds a `(program, accelerator)` pair into flat screening tables.
    ///
    /// # Panics
    ///
    /// When the program has more than 64 loop axes (the bitmask width);
    /// mapped programs have one axis per intrinsic iteration plus the outer
    /// software loops, far below that in practice.
    pub fn build(prog: &MappedProgram, accel: &AcceleratorSpec) -> Self {
        let axes = prog.axes().to_vec();
        assert!(
            axes.len() <= 64,
            "screening bitmasks hold at most 64 axes, program has {}",
            axes.len()
        );
        let intr = prog.intrinsic();
        let num_srcs = intr.compute.num_srcs();

        let mut spatial_mask = 0u64;
        let mut tile_spatial_mask = 0u64;
        let mut tile_reduction_mask = 0u64;
        let mut spatial_axes = Vec::new();
        let mut nonspatial_axes = Vec::new();
        let mut tile_spatial_axes = Vec::new();
        let mut tile_reduction_axes = Vec::new();
        for (i, a) in axes.iter().enumerate() {
            if a.kind.is_spatial() {
                spatial_mask |= 1 << i;
                spatial_axes.push(i);
            } else {
                nonspatial_axes.push(i);
            }
            match a.kind {
                AxisKind::TileSpatial(_) => {
                    tile_spatial_mask |= 1 << i;
                    tile_spatial_axes.push(i);
                }
                AxisKind::TileReduction(_) => {
                    tile_reduction_mask |= 1 << i;
                    tile_reduction_axes.push(i);
                }
                _ => {}
            }
        }
        let operand_masks: Vec<u64> = (0..=num_srcs)
            .map(|row| {
                let mut m = 0u64;
                for (i, a) in axes.iter().enumerate() {
                    if prog.operand_uses_axis(row, a) {
                        m |= 1 << i;
                    }
                }
                m
            })
            .collect();

        let shared_level = accel.shared_level();
        let device = accel.levels.last().expect("accelerator has levels");
        let reg_bw = accel.levels[0].memory.load_bytes_per_cycle;
        let shared_bw = accel.levels[shared_level].memory.load_bytes_per_cycle;
        let cores = accel.total_units(shared_level) as f64;

        ScreeningContext {
            num_srcs,
            spatial_mask,
            tile_spatial_mask,
            tile_reduction_mask,
            operand_masks,
            src_frag_bytes: (0..num_srcs)
                .map(|m| intr.fragment_bytes(OperandRef::Src(m)))
                .collect(),
            dst_frag_bytes: intr.fragment_bytes(OperandRef::Dst),
            initiation_interval: intr.initiation_interval as f64,
            inv_register_bw: if reg_bw > 0.0 { 1.0 / reg_bw } else { 0.0 },
            inv_shared_bw: if shared_bw > 0.0 {
                1.0 / shared_bw
            } else {
                0.0
            },
            inv_device_load_bw: 1.0 / device.memory.load_bytes_per_cycle,
            inv_device_store_bw: 1.0 / device.memory.store_bytes_per_cycle,
            cores,
            inv_cores: 1.0 / cores,
            subcores: subcores_per_core(accel) as i64,
            shared_capacity_bytes: accel.levels[shared_level].memory.capacity_bytes,
            register_capacity_bytes: accel.levels[0].memory.capacity_bytes,
            spatial_axes,
            nonspatial_axes,
            tile_spatial_axes,
            tile_reduction_axes,
            axes,
        }
    }

    /// Whether this context was built against an accelerator with the same
    /// model-relevant parameters as `accel`. Exact value comparison, not a
    /// hash — a mutated accelerator can never be mistaken for the cached one.
    pub fn matches(&self, accel: &AcceleratorSpec) -> bool {
        let shared_level = accel.shared_level();
        let device = accel.levels.last().expect("accelerator has levels");
        let reg_bw = accel.levels[0].memory.load_bytes_per_cycle;
        let shared_bw = accel.levels[shared_level].memory.load_bytes_per_cycle;
        self.inv_register_bw == if reg_bw > 0.0 { 1.0 / reg_bw } else { 0.0 }
            && self.inv_shared_bw
                == if shared_bw > 0.0 {
                    1.0 / shared_bw
                } else {
                    0.0
                }
            && self.inv_device_load_bw == 1.0 / device.memory.load_bytes_per_cycle
            && self.inv_device_store_bw == 1.0 / device.memory.store_bytes_per_cycle
            && self.cores == accel.total_units(shared_level) as f64
            && self.subcores == subcores_per_core(accel) as i64
            && self.shared_capacity_bytes == accel.levels[shared_level].memory.capacity_bytes
            && self.register_capacity_bytes == accel.levels[0].memory.capacity_bytes
    }

    /// Bytes of one source operand loaded from global memory by one block.
    /// Integer-identical to [`Schedule::block_read_bytes`].
    pub fn block_read_bytes(&self, s: &Schedule, m: usize) -> u64 {
        let axes = &self.axes[..];
        let mask = self.operand_masks[m];
        let mut bytes_per_pass = 1i64;
        let mut passes = 1i64;
        for (i, a) in axes.iter().enumerate() {
            if mask >> i & 1 == 1 {
                bytes_per_pass *= s.block_chunk(axes, i);
            } else if a.kind.is_spatial() {
                passes *= s.spatial_steps(axes, i);
            }
        }
        bytes_per_pass as u64 * passes as u64 * self.src_frag_bytes[m]
    }

    /// Staging bytes per core. Integer-identical to
    /// [`Schedule::shared_footprint_bytes`].
    pub fn shared_footprint_bytes(&self, s: &Schedule) -> u64 {
        let axes = &self.axes[..];
        let mut total = 0u64;
        for m in 0..self.num_srcs {
            let mask = self.operand_masks[m];
            let mut tiles = 1i64;
            for i in 0..axes.len() {
                if mask >> i & 1 == 1 {
                    tiles *= s.resident_tiles(axes, i);
                }
            }
            total += tiles as u64 * self.src_frag_bytes[m];
        }
        if s.double_buffer {
            total *= 2;
        }
        total
    }

    /// Register bytes per PE array. Integer-identical to
    /// [`Schedule::register_footprint_bytes`].
    pub fn register_footprint_bytes(&self, s: &Schedule) -> u64 {
        let axes = &self.axes[..];
        let dst_mask = self.operand_masks[self.num_srcs] & self.tile_spatial_mask;
        let mut dst_tiles = 1i64;
        let mut bits = dst_mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            dst_tiles *= s.warp[i].min(s.subcore_chunk(axes, i));
        }
        let mut total = dst_tiles as u64 * self.dst_frag_bytes;
        for m in 0..self.num_srcs {
            let mask = self.operand_masks[m] & self.tile_spatial_mask;
            let mut tiles = 1i64;
            let mut bits = mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                tiles *= s.warp[i].min(s.subcore_chunk(axes, i));
            }
            total += tiles as u64 * self.src_frag_bytes[m];
        }
        total
    }

    /// Fills the per-axis SoA tables for one full chunk of [`BATCH_LANES`]
    /// schedules, computing every integer quantity the analytic model needs
    /// exactly once per (axis, lane) — the scalar path re-derives block
    /// chunks and staging steps once per *operand*, so batching also halves
    /// the integer divisions before the float part even starts.
    ///
    /// Every lane must already have this context's axis count; the batched
    /// predictor rejects mismatched candidates and pads short chunks with a
    /// valid lane before gathering. The fixed width keeps every inner loop a
    /// constant [`BATCH_LANES`] trips, which is what lets the compiler
    /// unroll and vectorise them.
    #[inline]
    pub fn fill_batch_tables(&self, lanes: &[&Schedule; BATCH_LANES], t: &mut BatchTables) {
        let axes = &self.axes[..];
        let need = axes.len() * BATCH_LANES;
        if t.blk.len() < need {
            t.blk.resize(need, 1);
            t.sub.resize(need, 1);
            t.steps.resize(need, 1);
            t.wsub.resize(need, 1);
        }
        let n = axes.len();
        let (blk_t, sub_t) = (&mut t.blk[..need], &mut t.sub[..need]);
        let (wsub_t, steps_t) = (&mut t.wsub[..need], &mut t.steps[..need]);
        // Lane-major: each lane's schedule vectors are sliced to the axis
        // count once, hoisting both the `Schedule` pointer chase and the
        // bounds checks out of the per-axis loop.
        for (l, s) in lanes.iter().enumerate() {
            let grid = &s.grid[..n];
            let split_k = &s.split_k[..n];
            let subcore = &s.subcore[..n];
            let warp = &s.warp[..n];
            for (i, a) in axes.iter().enumerate() {
                let blk = div_ceil_pow2(a.extent, grid[i] * split_k[i]);
                let sub = div_ceil_pow2(blk, subcore[i]);
                let row = i * BATCH_LANES + l;
                blk_t[row] = blk;
                sub_t[row] = sub;
                wsub_t[row] = warp[i].min(sub);
                // Staging steps are only ever read on spatial axes (the
                // model's pass count for operands that skip the axis).
                if a.kind.is_spatial() {
                    let resident = if matches!(a.kind, AxisKind::TileSpatial(_)) {
                        (subcore[i] * warp[i]).min(blk)
                    } else {
                        1
                    };
                    steps_t[row] = div_ceil_pow2(blk, resident);
                }
            }
            t.blocks[l] = s.blocks();
        }
    }

    /// Allocation-free mirror of [`Schedule::validate`]: the same checks, a
    /// `bool` verdict instead of error construction. Used by schedule repair,
    /// which probes feasibility up to 16 times per candidate.
    pub fn schedule_feasible(&self, s: &Schedule) -> bool {
        let axes = &self.axes[..];
        let n = axes.len();
        if s.grid.len() != n
            || s.split_k.len() != n
            || s.subcore.len() != n
            || s.stage.len() != n
            || s.warp.len() != n
        {
            return false;
        }
        for v in [&s.grid, &s.split_k, &s.subcore, &s.stage, &s.warp] {
            if v.iter().any(|&x| x < 1) {
                return false;
            }
        }
        for (i, a) in axes.iter().enumerate() {
            let spatial = a.kind.is_spatial();
            if !spatial && (s.grid[i] != 1 || s.subcore[i] != 1) {
                return false;
            }
            if spatial && (s.split_k[i] != 1 || s.stage[i] != 1) {
                return false;
            }
            if s.warp[i] != 1 && !matches!(a.kind, AxisKind::TileSpatial(_)) {
                return false;
            }
            if s.grid[i] * s.split_k[i] > a.extent || s.subcore[i] > a.extent {
                return false;
            }
        }
        if s.subcore.iter().product::<i64>() > self.subcores {
            return false;
        }
        if self.shared_footprint_bytes(s) > self.shared_capacity_bytes {
            return false;
        }
        self.register_footprint_bytes(s) <= self.register_capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn gemm_prog(m: i64, n: i64, k: i64) -> MappedProgram {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", m);
        let j = b.spatial("j", n);
        let kk = b.reduce("k", k);
        let a = b.input("a", &[m, k], DType::F16);
        let w = b.input("b", &[k, n], DType::F16);
        let c = b.output("c", &[m, n], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, kk]), w.at([kk, j]));
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        MappedProgram::new(
            def,
            catalog::wmma_16x16x16(),
            vec![
                crate::FusedGroup::of(vec![ids[0]]),
                crate::FusedGroup::of(vec![ids[1]]),
                crate::FusedGroup::of(vec![ids[2]]),
            ],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn masks_agree_with_operand_uses_axis() {
        let prog = gemm_prog(256, 256, 256);
        let ctx = ScreeningContext::build(&prog, &catalog::v100());
        for (row, mask) in ctx.operand_masks.iter().enumerate() {
            for (i, a) in ctx.axes.iter().enumerate() {
                assert_eq!(mask >> i & 1 == 1, prog.operand_uses_axis(row, a));
            }
        }
        for (i, a) in ctx.axes.iter().enumerate() {
            assert_eq!(ctx.spatial_mask >> i & 1 == 1, a.kind.is_spatial());
        }
        assert_eq!(ctx.num_srcs, 2);
        assert_eq!(ctx.src_frag_bytes, vec![512, 512]);
        assert_eq!(ctx.dst_frag_bytes, 1024);
    }

    #[test]
    fn footprints_match_schedule_helpers() {
        let prog = gemm_prog(512, 512, 512);
        let accel = catalog::v100();
        let ctx = ScreeningContext::build(&prog, &accel);
        let mut s = Schedule::balanced(&prog, &accel);
        s.warp[0] = 4;
        s.stage[2] = 2;
        assert_eq!(
            ctx.shared_footprint_bytes(&s),
            s.shared_footprint_bytes(&prog)
        );
        assert_eq!(
            ctx.register_footprint_bytes(&s),
            s.register_footprint_bytes(&prog)
        );
        for m in 0..ctx.num_srcs {
            assert_eq!(ctx.block_read_bytes(&s, m), s.block_read_bytes(&prog, m));
        }
    }

    #[test]
    fn feasibility_agrees_with_validate() {
        let prog = gemm_prog(256, 256, 4096);
        let accel = catalog::v100();
        let ctx = ScreeningContext::build(&prog, &accel);
        // A deterministic sweep over legal and illegal parameter combos.
        let mut s = Schedule::naive(&prog);
        for grid0 in [1, 2, 16, 512] {
            for splitk in [1, 4] {
                for warp in [1, 4, 64] {
                    for stage in [1, 2, 4096] {
                        s.grid[0] = grid0;
                        s.split_k[2] = splitk;
                        s.warp[1] = warp;
                        s.stage[2] = stage;
                        assert_eq!(
                            ctx.schedule_feasible(&s),
                            s.validate(&prog, &accel).is_ok(),
                            "feasibility diverges at grid={grid0} splitk={splitk} warp={warp} stage={stage}"
                        );
                    }
                }
            }
        }
        // Structural breakage: wrong vector length.
        s = Schedule::naive(&prog);
        s.grid.pop();
        assert!(!ctx.schedule_feasible(&s));
        assert!(s.validate(&prog, &accel).is_err());
    }

    #[test]
    fn div_ceil_pow2_matches_div_ceil() {
        use crate::program::div_ceil;
        for a in 0..200 {
            for b in 1..40 {
                assert_eq!(div_ceil_pow2(a, b), div_ceil(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn batch_tables_match_scalar_schedule_helpers() {
        let prog = gemm_prog(512, 256, 1024);
        let accel = catalog::v100();
        let ctx = ScreeningContext::build(&prog, &accel);
        let axes = &ctx.axes[..];
        // A handful of distinct schedules, including non-trivial warp/stage
        // factors, batched together.
        let mut scheds = Vec::new();
        for (grid, splitk, warp, stage) in [
            (1, 1, 1, 1),
            (4, 2, 2, 2),
            (16, 1, 4, 4),
            (2, 4, 1, 8),
            (8, 2, 2, 1),
        ] {
            let mut s = Schedule::balanced(&prog, &accel);
            s.grid[0] = grid;
            s.split_k[2] = splitk;
            s.warp[1] = warp;
            s.stage[2] = stage;
            scheds.push(s);
        }
        // Short chunk padded to the fixed width with the first lane, as the
        // batched predictor does.
        let mut lanes = [&scheds[0]; BATCH_LANES];
        for (l, s) in scheds.iter().enumerate() {
            lanes[l] = s;
        }
        let mut t = BatchTables::default();
        ctx.fill_batch_tables(&lanes, &mut t);
        for (l, s) in lanes.iter().enumerate() {
            assert_eq!(t.blocks[l], s.blocks(), "lane {l}: blocks");
            for i in 0..axes.len() {
                let e = i * BATCH_LANES + l;
                assert_eq!(t.blk[e], s.block_chunk(axes, i), "lane {l} axis {i}: blk");
                assert_eq!(t.sub[e], s.subcore_chunk(axes, i), "lane {l} axis {i}: sub");
                assert_eq!(
                    t.wsub[e],
                    s.warp[i].min(s.subcore_chunk(axes, i)),
                    "lane {l} axis {i}: wsub"
                );
                if axes[i].kind.is_spatial() {
                    assert_eq!(
                        t.steps[e],
                        s.spatial_steps(axes, i),
                        "lane {l} axis {i}: steps"
                    );
                }
            }
        }
    }

    #[test]
    fn context_cache_is_shared_until_the_accel_changes() {
        let prog = gemm_prog(256, 256, 256);
        let mut accel = catalog::v100();
        let a = prog.screening_context(&accel);
        let b = prog.screening_context(&accel);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same accel must share");
        accel.levels.last_mut().unwrap().memory.load_bytes_per_cycle *= 2.0;
        let c = prog.screening_context(&accel);
        assert!(
            !std::sync::Arc::ptr_eq(&a, &c),
            "mutated accel must rebuild"
        );
        assert!(c.matches(&accel));
        assert!(!a.matches(&accel));
    }
}

//! The timing engine: cycle-level ground truth for mapped programs.
//!
//! The paper measures wall-clock time on real accelerators; our substitute is
//! this hierarchical timing model. It shares the paper's pipelined
//! `max(compute, load, store)` structure but additionally models the effects
//! a simple analytic model misses — wave quantisation across cores, pipeline
//! fill, kernel launch overhead, staging synchronisation, and issue/bandwidth
//! derating when `unroll`/`vectorize` are off — so the relationship between
//! AMOS's performance model and this "hardware" mirrors Figure 5.

use crate::error::SimError;
use crate::program::{div_ceil, AxisKind, MappedProgram};
use crate::schedule::Schedule;
use amos_hw::{AcceleratorSpec, OperandRef};

/// Fixed cost of launching a kernel, in cycles.
pub const LAUNCH_OVERHEAD_CYCLES: f64 = 2000.0;
/// Cost of one staging synchronisation barrier, in cycles.
pub const STAGE_SYNC_CYCLES: f64 = 40.0;
/// Issue-rate derating when inner loops are not unrolled.
pub const NO_UNROLL_PENALTY: f64 = 1.25;
/// Achieved-bandwidth derating when transfers are not vectorised.
pub const NO_VECTORIZE_PENALTY: f64 = 0.6;

/// Cycle-level result of simulating one mapped program under one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Total execution cycles.
    pub cycles: f64,
    /// Blocks launched.
    pub blocks: i64,
    /// Waves of blocks over the cores.
    pub waves: i64,
    /// Fraction of core slots busy in the launched waves.
    pub occupancy: f64,
    /// Fraction of peak tensor throughput achieved on *useful* (non-padded)
    /// scalar operations.
    pub utilization: f64,
    /// Bytes read from device memory.
    pub dram_read_bytes: u64,
    /// Bytes written to device memory.
    pub dram_write_bytes: u64,
    /// Bytes moved from staging buffers into register fragments.
    pub register_traffic_bytes: u64,
    /// Per-block compute cycles (pipeline view).
    pub block_compute_cycles: f64,
    /// Per-block data-movement cycles (the max over transfer paths).
    pub block_transfer_cycles: f64,
}

impl TimingReport {
    /// GFLOPS achieved for the program's useful scalar operations.
    pub fn gflops(&self, prog: &MappedProgram, accel: &AcceleratorSpec) -> f64 {
        accel.gflops(prog.def().scalar_ops(), self.cycles)
    }
}

/// Simulates a mapped program under a schedule on an accelerator.
///
/// ```
/// use amos_hw::catalog;
/// use amos_ir::{ComputeBuilder, DType};
/// use amos_sim::{simulate, FusedGroup, MappedProgram, Schedule};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ComputeBuilder::new("gemm");
/// let i = b.spatial("i", 256);
/// let j = b.spatial("j", 256);
/// let k = b.reduce("k", 256);
/// let a = b.input("a", &[256, 256], DType::F16);
/// let w = b.input("b", &[256, 256], DType::F16);
/// let c = b.output("c", &[256, 256], DType::F32);
/// b.mul_acc(c.at([i, j]), a.at([i, k]), w.at([k, j]));
/// let def = b.finish()?;
///
/// let accel = catalog::v100();
/// let prog = MappedProgram::new(
///     def,
///     accel.intrinsic.clone(),
///     vec![
///         FusedGroup::of(vec![i.id()]),
///         FusedGroup::of(vec![j.id()]),
///         FusedGroup::of(vec![k.id()]),
///     ],
///     vec![0, 1],
/// )?;
/// let report = simulate(&prog, &Schedule::balanced(&prog, &accel), &accel)?;
/// assert!(report.cycles > 0.0);
/// assert!(report.utilization <= 1.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns the schedule-validation error when the schedule does not fit the
/// program or the hardware.
pub fn simulate(
    prog: &MappedProgram,
    schedule: &Schedule,
    accel: &AcceleratorSpec,
) -> Result<TimingReport, SimError> {
    schedule.validate(prog, accel)?;
    simulate_unchecked(prog, schedule, accel)
}

/// [`simulate`] behind a panic-isolation boundary: a panic anywhere in the
/// timing model surfaces as [`SimError::Panicked`] instead of unwinding into
/// the caller. This is the ground-truth entry point for callers that must
/// survive individual candidate failures (the explorer's fault-tolerant
/// supervisor, long-running services).
///
/// # Errors
///
/// Same as [`simulate`], plus [`SimError::Panicked`] carrying the payload
/// text of a caught panic.
pub fn simulate_isolated(
    prog: &MappedProgram,
    schedule: &Schedule,
    accel: &AcceleratorSpec,
) -> Result<TimingReport, SimError> {
    crate::isolate::run_isolated(|| simulate(prog, schedule, accel))
        .unwrap_or_else(|detail| Err(SimError::Panicked { detail }))
}

fn simulate_unchecked(
    prog: &MappedProgram,
    schedule: &Schedule,
    accel: &AcceleratorSpec,
) -> Result<TimingReport, SimError> {
    let axes = prog.axes();
    let intr = prog.intrinsic();
    let num_srcs = intr.compute.num_srcs();

    let cores = accel.total_units(accel.shared_level()) as i64;
    let blocks = schedule.blocks();
    let waves = div_ceil(blocks, cores);
    let active_cores = blocks.min(cores);
    let occupancy = blocks as f64 / (waves * cores) as f64;

    // ---- per-block trip counts -------------------------------------------
    let mut calls_per_subcore = 1i64;
    for (i, _a) in axes.iter().enumerate() {
        calls_per_subcore *= schedule.subcore_chunk(axes, i);
    }

    // ---- traffic ---------------------------------------------------------
    // Packed global->staging traffic per operand: one pass over the
    // operand's block footprint, repeated for every staging step of a
    // spatial axis the operand does not depend on (re-reads), and once more
    // per block for the grid dimensions it does not depend on.
    let mut dram_read_bytes = 0u64;
    let per_block_read: Vec<u64> = (0..num_srcs)
        .map(|m| schedule.block_read_bytes(prog, m))
        .collect();
    for &bytes in &per_block_read {
        dram_read_bytes += bytes * blocks as u64;
    }

    // Destination store traffic: one packed dst tile set per block.
    let dst_row = num_srcs;
    let mut dst_tiles_per_block = 1i64;
    for (i, a) in axes.iter().enumerate() {
        if prog.operand_uses_axis(dst_row, a) && a.kind.is_spatial() {
            dst_tiles_per_block *= schedule.block_chunk(axes, i);
        }
    }
    let per_block_write = dst_tiles_per_block as u64 * intr.fragment_bytes(OperandRef::Dst);
    let dram_write_bytes = per_block_write * blocks as u64;

    // Staging->register traffic with warp-tile reuse: a source fragment is
    // reloaded once per intrinsic call, divided by the register-blocking
    // reuse along the spatial tile axes it does NOT depend on.
    let mut register_traffic_bytes = 0u64;
    for m in 0..num_srcs {
        let mut reuse = 1i64;
        for (i, a) in axes.iter().enumerate() {
            if matches!(a.kind, AxisKind::TileSpatial(_)) && !prog.operand_uses_axis(m, a) {
                reuse *= schedule.warp[i].min(schedule.subcore_chunk(axes, i));
            }
        }
        register_traffic_bytes += (calls_per_subcore as u64 / reuse.max(1) as u64)
            * intr.fragment_bytes(OperandRef::Src(m));
    }

    // ---- per-block pipeline stages ---------------------------------------
    let issue_penalty = if schedule.unroll {
        1.0
    } else {
        NO_UNROLL_PENALTY
    };
    let bw_penalty = if schedule.vectorize {
        1.0
    } else {
        NO_VECTORIZE_PENALTY
    };

    // Staging synchronisation: one barrier per staged reduction chunk.
    let mut stage_steps = 1i64;
    for (i, a) in axes.iter().enumerate() {
        if !a.kind.is_spatial() {
            stage_steps *= div_ceil(schedule.block_chunk(axes, i), schedule.stage[i]);
        }
    }

    let t_compute = calls_per_subcore as f64 * intr.initiation_interval as f64 * issue_penalty
        + intr.latency as f64
        + stage_steps as f64 * STAGE_SYNC_CYCLES;

    let reg_bw = accel.levels[0].memory.load_bytes_per_cycle * bw_penalty;
    let t_reg = if reg_bw > 0.0 {
        register_traffic_bytes as f64 / reg_bw
    } else {
        0.0
    };

    let shared_level = accel.shared_level();
    let shared_bw = accel.levels[shared_level].memory.load_bytes_per_cycle * bw_penalty;
    let block_read: u64 = per_block_read.iter().sum();
    let t_shared = if shared_bw > 0.0 {
        block_read as f64 / shared_bw
    } else {
        0.0
    };

    // Device bandwidth is shared by all concurrently active cores.
    let device = accel.levels.last().expect("accelerator has levels");
    let dev_read_bw = device.memory.load_bytes_per_cycle / active_cores as f64;
    let dev_write_bw = device.memory.store_bytes_per_cycle / active_cores as f64;
    let t_dram = block_read as f64 / dev_read_bw;
    let t_store = per_block_write as f64 / dev_write_bw;

    let transfer = t_reg.max(t_shared).max(t_dram).max(t_store);
    let block_time = if schedule.double_buffer {
        t_compute.max(transfer)
    } else {
        t_compute + t_dram.max(t_shared) + t_reg + t_store
    };

    let mut cycles = waves as f64 * block_time + LAUNCH_OVERHEAD_CYCLES;

    // Split-K epilogue: the partial outputs of the K-split blocks are
    // combined by a follow-up reduction pass (read all partials, write the
    // final tensor once), plus its own launch.
    let split_k = schedule.split_k_factor();
    if split_k > 1 {
        let full_dst = dram_write_bytes as f64 / split_k as f64;
        let combine_bytes = dram_write_bytes as f64 + full_dst;
        cycles += combine_bytes / device.memory.load_bytes_per_cycle + LAUNCH_OVERHEAD_CYCLES;
    }

    let useful_ops = prog.def().scalar_ops() as f64;
    let peak = accel.peak_tensor_ops_per_cycle();
    let utilization = if peak > 0.0 && cycles > 0.0 {
        (useful_ops / cycles) / peak
    } else {
        0.0
    };

    Ok(TimingReport {
        cycles,
        blocks,
        waves,
        occupancy,
        utilization,
        dram_read_bytes,
        dram_write_bytes,
        register_traffic_bytes,
        block_compute_cycles: t_compute,
        block_transfer_cycles: transfer,
    })
}

/// Average DRAM bytes touched per scalar multiply-add on the general-purpose
/// fallback path, modelling its weaker staging/reuse compared with the
/// explicit fragment pipeline of the spatial unit.
pub const SCALAR_BYTES_PER_OP: f64 = 0.5;

/// Estimated cycles to run the computation on the accelerator's
/// general-purpose scalar units — the fallback libraries and template
/// compilers take when an operator cannot be mapped to the spatial unit.
pub fn scalar_fallback_cycles(def: &amos_ir::ComputeDef, accel: &AcceleratorSpec) -> f64 {
    let cores = accel.total_units(accel.shared_level()) as f64;
    let ops = def.scalar_ops() as f64;
    let compute = ops / (accel.scalar_ops_per_core_cycle * cores);
    let tensor_bytes: u64 = def.tensors().iter().map(|t| t.bytes()).sum();
    let bytes = (ops * SCALAR_BYTES_PER_OP).max(tensor_bytes as f64);
    let device = accel.levels.last().expect("accelerator has levels");
    let mem = bytes / device.memory.load_bytes_per_cycle;
    compute.max(mem) + LAUNCH_OVERHEAD_CYCLES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FusedGroup;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn gemm_prog(m: i64, n: i64, k: i64) -> MappedProgram {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", m);
        let j = b.spatial("j", n);
        let kk = b.reduce("k", k);
        let a = b.input("a", &[m, k], DType::F16);
        let w = b.input("b", &[k, n], DType::F16);
        let c = b.output("c", &[m, n], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, kk]), w.at([kk, j]));
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        MappedProgram::new(
            def,
            catalog::wmma_16x16x16(),
            vec![
                FusedGroup::of(vec![ids[0]]),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[2]]),
            ],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn parallel_schedule_beats_naive() {
        let prog = gemm_prog(2048, 2048, 512);
        let accel = catalog::v100();
        let naive = simulate(&prog, &Schedule::naive(&prog), &accel).unwrap();
        let balanced = simulate(&prog, &Schedule::balanced(&prog, &accel), &accel).unwrap();
        assert!(
            balanced.cycles < naive.cycles / 10.0,
            "parallelism must pay off: {} vs {}",
            balanced.cycles,
            naive.cycles
        );
    }

    #[test]
    fn utilization_is_bounded() {
        let prog = gemm_prog(4096, 4096, 1024);
        let accel = catalog::a100();
        let r = simulate(&prog, &Schedule::balanced(&prog, &accel), &accel).unwrap();
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        assert!(r.occupancy > 0.0 && r.occupancy <= 1.0);
        assert!(r.gflops(&prog, &accel) > 0.0);
    }

    #[test]
    fn double_buffer_overlaps_transfers() {
        let prog = gemm_prog(2048, 2048, 512);
        let accel = catalog::v100();
        let mut s = Schedule::balanced(&prog, &accel);
        s.double_buffer = true;
        let overlapped = simulate(&prog, &s, &accel).unwrap();
        s.double_buffer = false;
        let serial = simulate(&prog, &s, &accel).unwrap();
        assert!(overlapped.cycles < serial.cycles);
    }

    #[test]
    fn register_blocking_reduces_register_traffic() {
        let prog = gemm_prog(2048, 2048, 512);
        let accel = catalog::v100();
        let mut s = Schedule::balanced(&prog, &accel);
        for w in &mut s.warp {
            *w = 1;
        }
        let base = simulate(&prog, &s, &accel).unwrap();
        s.warp[0] = 2;
        s.warp[1] = 2;
        let blocked = simulate(&prog, &s, &accel).unwrap();
        assert!(blocked.register_traffic_bytes < base.register_traffic_bytes);
    }

    #[test]
    fn larger_resident_tiles_reduce_dram_traffic() {
        let prog = gemm_prog(2048, 2048, 2048);
        let accel = catalog::v100();
        let mut s = Schedule::naive(&prog);
        s.grid[0] = 8;
        s.grid[1] = 8;
        let unblocked = simulate(&prog, &s, &accel).unwrap();
        // Register-blocking the j axis shrinks the number of passes blocks
        // make over the A operand.
        s.warp[1] = 4;
        let blocked = simulate(&prog, &s, &accel).unwrap();
        assert!(blocked.dram_read_bytes < unblocked.dram_read_bytes);
    }

    #[test]
    fn scalar_fallback_is_much_slower_than_tensor_units() {
        let prog = gemm_prog(1024, 1024, 1024);
        let accel = catalog::v100();
        let tensor = simulate(&prog, &Schedule::balanced(&prog, &accel), &accel).unwrap();
        let scalar = scalar_fallback_cycles(prog.def(), &accel);
        assert!(scalar > 2.0 * tensor.cycles);
    }

    #[test]
    fn split_k_helps_skinny_reductions() {
        // A tall-K GEMM with tiny spatial extent cannot fill the device
        // without splitting the reduction.
        let prog = gemm_prog(16, 16, 65536);
        let accel = catalog::v100();
        let serial = simulate(&prog, &Schedule::naive(&prog), &accel).unwrap();
        let mut s = Schedule::naive(&prog);
        s.split_k[2] = 8;
        let split = simulate(&prog, &s, &accel).unwrap();
        assert_eq!(split.blocks, 8);
        assert!(
            split.cycles < serial.cycles,
            "split-K {} vs serial {}",
            split.cycles,
            serial.cycles
        );
    }

    #[test]
    fn split_k_epilogue_is_charged() {
        let prog = gemm_prog(256, 256, 256);
        let accel = catalog::v100();
        let mut s = Schedule::naive(&prog);
        let base = simulate(&prog, &s, &accel).unwrap();
        s.split_k[2] = 2;
        let split = simulate(&prog, &s, &accel).unwrap();
        // Write traffic doubles (partial outputs) and the combine pass adds
        // a launch: the epilogue must be visible in the totals.
        assert_eq!(split.dram_write_bytes, 2 * base.dram_write_bytes);
    }

    #[test]
    fn wave_quantisation_is_visible() {
        // 321 blocks on 80 cores -> 5 waves with the last nearly empty.
        let prog = gemm_prog(16 * 321, 16, 16);
        let accel = catalog::v100();
        let mut s = Schedule::naive(&prog);
        s.grid[0] = 321;
        let r = simulate(&prog, &s, &accel).unwrap();
        assert_eq!(r.blocks, 321);
        assert_eq!(r.waves, 5);
        assert!(r.occupancy < 0.9);
    }
}

//! The mapped program: a tensor computation bound to an intrinsic through a
//! compute mapping, in the tiled physical form of paper §5.1 (Fig 3 g/h).
//!
//! Every intrinsic iteration carries a *fused group* of software iterations;
//! the fused index is restricted to the intrinsic problem size by `mod`, the
//! quotient becomes a tile loop, and trailing tiles are zero-padded. The
//! remaining software iterations stay as outer loops. [`MappedProgram`]
//! captures that structure; the functional executor and timing engine both
//! interpret it.

use crate::compiled::CompiledProgram;
use crate::error::SimError;
use crate::screening::ScreeningContext;
use amos_hw::{AcceleratorSpec, Intrinsic};
use amos_ir::{ComputeDef, IterId};
use std::sync::{Arc, OnceLock};

/// A fused, ordered group of software iterations mapped to one intrinsic
/// iteration. The fused index is `s1·E2·…·Eg + s2·E3·…·Eg + … + sg`
/// (declaration order, first iteration most significant).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FusedGroup {
    /// Software iterations in fusion order; may be empty (the intrinsic axis
    /// is then padded to a single value).
    pub iters: Vec<IterId>,
}

impl FusedGroup {
    /// Group with no software iterations.
    pub fn empty() -> Self {
        FusedGroup { iters: Vec::new() }
    }

    /// Group fusing the given iterations.
    pub fn of(iters: Vec<IterId>) -> Self {
        FusedGroup { iters }
    }
}

/// Which kind of loop an axis of the mapped loop nest represents; used by
/// schedules to know what may be parallelised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisKind {
    /// An unmapped spatial software iteration.
    OuterSpatial(IterId),
    /// An unmapped reduction software iteration.
    OuterReduction(IterId),
    /// The tile loop of a spatial intrinsic iteration (index into the
    /// intrinsic iteration list).
    TileSpatial(usize),
    /// The tile loop of a reduction intrinsic iteration.
    TileReduction(usize),
}

impl AxisKind {
    /// True for axes that address distinct output elements and may therefore
    /// be bound to parallel hardware units.
    pub fn is_spatial(self) -> bool {
        matches!(self, AxisKind::OuterSpatial(_) | AxisKind::TileSpatial(_))
    }
}

/// One loop axis of the mapped program, outer-to-inner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Axis {
    /// What the axis iterates.
    pub kind: AxisKind,
    /// Trip count.
    pub extent: i64,
}

/// A tensor computation physically mapped onto an intrinsic.
#[derive(Debug, Clone)]
pub struct MappedProgram {
    def: ComputeDef,
    intrinsic: Intrinsic,
    /// One fused group per intrinsic iteration.
    groups: Vec<FusedGroup>,
    /// Unmapped software iterations, declaration order.
    outer: Vec<IterId>,
    /// `correspondence[m]` = index into `def.inputs()` feeding intrinsic
    /// source slot `m`.
    correspondence: Vec<usize>,
    /// Lazily-built compiled form (axes, decode tables, lane programs);
    /// a pure function of the fields above, shared by clones via `Arc`.
    compiled: OnceLock<Arc<CompiledProgram>>,
    /// Lazily-built screening tables for the analytic model, keyed by the
    /// first accelerator they were built against (see
    /// [`MappedProgram::screening_context`]).
    screening: OnceLock<Arc<ScreeningContext>>,
}

/// Equality over the logical mapping only — the compiled cache is derived
/// state and deliberately ignored (a lowered and a not-yet-lowered copy of
/// the same program are the same program).
impl PartialEq for MappedProgram {
    fn eq(&self, other: &Self) -> bool {
        self.def == other.def
            && self.intrinsic == other.intrinsic
            && self.groups == other.groups
            && self.outer == other.outer
            && self.correspondence == other.correspondence
    }
}

impl MappedProgram {
    /// Builds a mapped program, checking that the groups plus outer loops
    /// partition the software iterations exactly and that the operand
    /// correspondence is a bijection onto the input accesses.
    pub fn new(
        def: ComputeDef,
        intrinsic: Intrinsic,
        groups: Vec<FusedGroup>,
        correspondence: Vec<usize>,
    ) -> Result<Self, SimError> {
        let num_intrinsic_iters = intrinsic.compute.iters().len();
        if groups.len() != num_intrinsic_iters {
            return Err(SimError::MalformedMapping {
                detail: format!(
                    "{} groups for {} intrinsic iterations",
                    groups.len(),
                    num_intrinsic_iters
                ),
            });
        }
        if correspondence.len() != intrinsic.compute.num_srcs()
            || correspondence.len() != def.inputs().len()
        {
            return Err(SimError::MalformedMapping {
                detail: format!(
                    "correspondence of {} slots for {} intrinsic sources and {} inputs",
                    correspondence.len(),
                    intrinsic.compute.num_srcs(),
                    def.inputs().len()
                ),
            });
        }
        let mut seen_inputs = vec![false; def.inputs().len()];
        for &m in &correspondence {
            if m >= seen_inputs.len() || seen_inputs[m] {
                return Err(SimError::MalformedMapping {
                    detail: "correspondence is not a bijection onto inputs".into(),
                });
            }
            seen_inputs[m] = true;
        }
        let mut used = vec![false; def.iters().len()];
        for g in &groups {
            for &it in &g.iters {
                if it.index() >= used.len() || used[it.index()] {
                    return Err(SimError::MalformedMapping {
                        detail: format!("iteration {it} mapped twice or unknown"),
                    });
                }
                used[it.index()] = true;
            }
        }
        let outer: Vec<IterId> = def.iter_ids().filter(|id| !used[id.index()]).collect();
        Ok(MappedProgram {
            def,
            intrinsic,
            groups,
            outer,
            correspondence,
            compiled: OnceLock::new(),
            screening: OnceLock::new(),
        })
    }

    /// The compiled form, lowered on first use and cached. Cheap to call in
    /// hot loops (one atomic load after initialisation).
    pub(crate) fn compiled(&self) -> &CompiledProgram {
        self.compiled
            .get_or_init(|| Arc::new(CompiledProgram::build(self)))
    }

    /// The screening tables for this program on `accel`, built on first use
    /// and cached. The cache holds the context of the *first* accelerator
    /// seen; a call with model-relevant parameters that differ from the
    /// cached ones (checked by value, never by hash) builds a fresh,
    /// uncached context — explorations hammer one accelerator, so the first
    /// entry is the only one worth keeping.
    pub fn screening_context(&self, accel: &AcceleratorSpec) -> Arc<ScreeningContext> {
        let cached = self
            .screening
            .get_or_init(|| Arc::new(ScreeningContext::build(self, accel)));
        if cached.matches(accel) {
            Arc::clone(cached)
        } else {
            Arc::new(ScreeningContext::build(self, accel))
        }
    }

    /// The software computation.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// The intrinsic the computation is mapped to.
    pub fn intrinsic(&self) -> &Intrinsic {
        &self.intrinsic
    }

    /// Fused groups, one per intrinsic iteration.
    pub fn groups(&self) -> &[FusedGroup] {
        &self.groups
    }

    /// Unmapped software iterations.
    pub fn outer(&self) -> &[IterId] {
        &self.outer
    }

    /// Source-slot to input-access correspondence.
    pub fn correspondence(&self) -> &[usize] {
        &self.correspondence
    }

    /// Extents of the software iterations in one fused group.
    pub fn group_extents(&self, t: usize) -> Vec<i64> {
        self.groups[t]
            .iters
            .iter()
            .map(|id| self.def.iter_var(*id).extent)
            .collect()
    }

    /// Product of software extents fused into intrinsic iteration `t`
    /// (1 for an empty group).
    pub fn fused_extent(&self, t: usize) -> i64 {
        self.group_extents(t).iter().product()
    }

    /// Number of tiles along intrinsic iteration `t`: the fused extent
    /// divided by the problem size, rounded up (trailing padding).
    pub fn tiles(&self, t: usize) -> i64 {
        let p = self.intrinsic.compute.iters()[t].extent;
        div_ceil(self.fused_extent(t), p)
    }

    /// Fraction of intrinsic lanes doing useful work: the ratio of real
    /// software iterations to padded iterations across all axes.
    pub fn padding_efficiency(&self) -> f64 {
        let mut useful = 1f64;
        let mut padded = 1f64;
        for (t, it) in self.intrinsic.compute.iters().iter().enumerate() {
            useful *= self.fused_extent(t) as f64;
            padded *= (self.tiles(t) * it.extent) as f64;
        }
        useful / padded
    }

    /// Decodes a fused index along intrinsic iteration `t` into values of the
    /// group's software iterations. Returns `None` when the index falls in a
    /// trailing padding region.
    pub fn decode_group(&self, t: usize, fused: i64) -> Option<Vec<(IterId, i64)>> {
        let iters = &self.groups[t].iters;
        let extents = self.group_extents(t);
        let mut rem = fused;
        let mut values = vec![0i64; iters.len()];
        for d in (0..iters.len()).rev() {
            values[d] = rem % extents[d];
            rem /= extents[d];
        }
        if rem != 0 {
            return None; // beyond the fused extent: padding
        }
        // An empty group accepts only fused index 0.
        if iters.is_empty() && fused != 0 {
            return None;
        }
        Some(iters.iter().copied().zip(values).collect())
    }

    /// The loop axes of the mapped program, outer-to-inner: outer spatial,
    /// spatial tile loops, outer reduction, reduction tile loops. The
    /// intrinsic call itself sits below these axes.
    ///
    /// Served from the compiled cache — repeated calls (the schedule
    /// helpers, the timing model, codegen) borrow one precomputed slice
    /// instead of rebuilding a `Vec` each time.
    pub fn axes(&self) -> &[Axis] {
        &self.compiled().axes
    }

    /// Total intrinsic calls executed (product of all axis extents).
    pub fn total_calls(&self) -> i64 {
        self.axes().iter().map(|a| a.extent).product()
    }

    /// Whether operand slot `o` (row of `Z`: sources then destination)
    /// depends on axis `a`.
    ///
    /// Tile axes matter when the operand is indexed by that intrinsic
    /// iteration; outer axes matter when the corresponding software access
    /// uses that software iteration. Answered from the compiled dependence
    /// tables (the old implementation rebuilt the intrinsic access matrix on
    /// every call).
    pub fn operand_uses_axis(&self, operand_row: usize, axis: &Axis) -> bool {
        let c = self.compiled();
        match axis.kind {
            AxisKind::TileSpatial(t) | AxisKind::TileReduction(t) => c.tile_deps[operand_row][t],
            AxisKind::OuterSpatial(id) | AxisKind::OuterReduction(id) => {
                c.outer_deps[operand_row][id.index()]
            }
        }
    }

    /// Human-readable compute-mapping string in the style of paper Table 5,
    /// e.g. `[i1, i2, r1] <- [(n * 56 + q) mod 16, k mod 16, (c * 3 + r) mod 16]`.
    pub fn mapping_string(&self) -> String {
        let lhs: Vec<String> = self
            .intrinsic
            .compute
            .iters()
            .iter()
            .map(|it| it.name.clone())
            .collect();
        let rhs: Vec<String> = self
            .groups
            .iter()
            .enumerate()
            .map(|(t, g)| {
                if g.iters.is_empty() {
                    return "0".to_string();
                }
                let extents = self.group_extents(t);
                let mut terms = Vec::new();
                let mut stride = 1i64;
                for d in (0..g.iters.len()).rev() {
                    let name = &self.def.iter_var(g.iters[d]).name;
                    if stride == 1 {
                        terms.push(name.clone());
                    } else {
                        terms.push(format!("{name} * {stride}"));
                    }
                    stride *= extents[d];
                }
                terms.reverse();
                let fused = terms.join(" + ");
                let p = self.intrinsic.compute.iters()[t].extent;
                if self.fused_extent(t) <= p {
                    fused
                } else if g.iters.len() == 1 {
                    format!("{fused} mod {p}")
                } else {
                    format!("({fused}) mod {p}")
                }
            })
            .collect();
        format!("[{}] <- [{}]", lhs.join(", "), rhs.join(", "))
    }
}

/// Ceiling division for positive numbers.
pub fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    (a + b - 1) / b
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    /// Paper Fig 3: conv (n=1,k=4,p=2,q=2,c=1,r=3,s=3) on the 2x2x2 mini mma.
    pub(crate) fn fig3_program() -> MappedProgram {
        let mut b = ComputeBuilder::new("conv2d_fig3");
        let n = b.spatial("n", 1);
        let k = b.spatial("k", 4);
        let p = b.spatial("p", 2);
        let q = b.spatial("q", 2);
        let c = b.reduce("c", 1);
        let r = b.reduce("r", 3);
        let s = b.reduce("s", 3);
        let image = b.input("image", &[1, 1, 4, 4], DType::F32);
        let weight = b.input("weight", &[4, 1, 3, 3], DType::F32);
        let out = b.output("out", &[1, 4, 2, 2], DType::F32);
        b.mul_acc(
            out.at([n.ex(), k.ex(), p.ex(), q.ex()]),
            image.at([n.ex(), c.ex(), p.ex() + r.ex(), q.ex() + s.ex()]),
            weight.at([k.ex(), c.ex(), r.ex(), s.ex()]),
        );
        let def = b.finish().unwrap();
        MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![n.id(), p.id(), q.id()]),
                FusedGroup::of(vec![k.id()]),
                FusedGroup::of(vec![c.id(), r.id(), s.id()]),
            ],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn fig3_tile_counts_match_paper() {
        let prog = fig3_program();
        // i1: fuse(n,p,q) = 4 -> 2 tiles of 2; i2: k=4 -> 2 tiles;
        // r1: fuse(c,r,s) = 9 -> 5 tiles of 2 (trailing padding).
        assert_eq!(prog.fused_extent(0), 4);
        assert_eq!(prog.tiles(0), 2);
        assert_eq!(prog.fused_extent(1), 4);
        assert_eq!(prog.tiles(1), 2);
        assert_eq!(prog.fused_extent(2), 9);
        assert_eq!(prog.tiles(2), 5);
        // 2 * 2 * 5 small 2x2x2 multiplications, exactly as Fig 3.
        assert_eq!(prog.total_calls(), 20);
    }

    #[test]
    fn fig3_padding_efficiency() {
        let prog = fig3_program();
        // useful = 4*4*9 = 144; padded = 4*4*10 = 160.
        assert!((prog.padding_efficiency() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn decode_group_handles_padding() {
        let prog = fig3_program();
        // r1 group is (c, r, s) with extents (1, 3, 3); fused 9 values.
        let decoded = prog.decode_group(2, 4).unwrap(); // c=0, r=1, s=1
        let vals: Vec<i64> = decoded.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![0, 1, 1]);
        assert!(prog.decode_group(2, 9).is_none()); // padding region
        assert!(prog.decode_group(2, 8).is_some());
    }

    #[test]
    fn axes_order_and_kinds() {
        let prog = fig3_program();
        let axes = prog.axes();
        // No outer loops here; 2 spatial tile axes then 1 reduction tile axis.
        assert_eq!(axes.len(), 3);
        assert_eq!(axes[0].kind, AxisKind::TileSpatial(0));
        assert!(axes[0].kind.is_spatial());
        assert_eq!(axes[2].kind, AxisKind::TileReduction(2));
        assert!(!axes[2].kind.is_spatial());
        assert_eq!(axes.iter().map(|a| a.extent).product::<i64>(), 20);
    }

    #[test]
    fn operand_axis_dependence() {
        let prog = fig3_program();
        let axes = prog.axes();
        // Src1 (image) uses i1 and r1, not i2.
        assert!(prog.operand_uses_axis(0, &axes[0])); // i1 tiles
        assert!(!prog.operand_uses_axis(0, &axes[1])); // i2 tiles
        assert!(prog.operand_uses_axis(0, &axes[2])); // r1 tiles
                                                      // Dst (out) uses both spatial, not reduction.
        assert!(prog.operand_uses_axis(2, &axes[0]));
        assert!(prog.operand_uses_axis(2, &axes[1]));
        assert!(!prog.operand_uses_axis(2, &axes[2]));
    }

    #[test]
    fn mapping_string_matches_table5_style() {
        let prog = fig3_program();
        assert_eq!(
            prog.mapping_string(),
            "[i1, i2, r1] <- [(n * 4 + p * 2 + q) mod 2, k mod 2, (c * 9 + r * 3 + s) mod 2]"
        );
    }

    #[test]
    fn duplicate_iteration_rejected() {
        let prog = fig3_program();
        let def = prog.def().clone();
        let err = MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![IterId(0), IterId(0)]),
                FusedGroup::empty(),
                FusedGroup::empty(),
            ],
            vec![0, 1],
        )
        .unwrap_err();
        assert!(matches!(err, SimError::MalformedMapping { .. }));
    }

    #[test]
    fn bad_correspondence_rejected() {
        let prog = fig3_program();
        let def = prog.def().clone();
        let err = MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::empty(),
                FusedGroup::empty(),
                FusedGroup::empty(),
            ],
            vec![0, 0],
        )
        .unwrap_err();
        assert!(matches!(err, SimError::MalformedMapping { .. }));
    }

    #[test]
    fn empty_group_decodes_only_zero() {
        let prog = fig3_program();
        let def = prog.def().clone();
        let p2 = MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![IterId(0)]),
                FusedGroup::empty(),
                FusedGroup::of(vec![IterId(4)]),
            ],
            vec![0, 1],
        )
        .unwrap();
        assert_eq!(p2.decode_group(1, 0), Some(vec![]));
        assert_eq!(p2.decode_group(1, 1), None);
        // Unmapped iterations (k, p, q, r, s) become outer loops.
        assert_eq!(p2.outer().len(), 5);
    }

    #[test]
    fn div_ceil_behaviour() {
        assert_eq!(div_ceil(9, 2), 5);
        assert_eq!(div_ceil(8, 2), 4);
        assert_eq!(div_ceil(1, 16), 1);
    }
}

//! Panic isolation for candidate evaluation.
//!
//! The explorer evaluates thousands of candidates per run, and a single
//! panicking evaluation — a bug in a cost model, a pathological schedule, an
//! injected fault — must not take the whole search down. This module
//! provides the one primitive the fault-tolerant supervisor needs:
//! [`run_isolated`] executes a closure, converts any panic into an `Err`
//! carrying the payload text, and keeps the default panic hook from spamming
//! stderr while doing so.
//!
//! Suppression is scoped: a process-wide hook is installed once (lazily) and
//! consults a thread-local flag plus a global depth counter, so panics from
//! code that did *not* opt in are reported exactly as before.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

thread_local! {
    /// Set while the current thread is inside [`run_isolated`].
    static ISOLATING: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide count of active [`quiet_panics`] scopes (test helper).
static QUIET_DEPTH: AtomicUsize = AtomicUsize::new(0);

static HOOK: Once = Once::new();

/// Installs (once) a panic hook that suppresses reporting for isolated
/// sections and delegates to the previous hook everywhere else.
fn install_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let suppressed = ISOLATING.with(|f| f.get()) || QUIET_DEPTH.load(Ordering::Relaxed) > 0;
            if !suppressed {
                prev(info);
            }
        }));
    });
}

/// Renders a panic payload as text: the `&str`/`String` message when there
/// is one, a placeholder otherwise.
pub fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, catching any panic and returning its payload text as `Err`.
///
/// The default panic hook is suppressed for the duration of the call on this
/// thread, so quarantined candidates do not flood stderr; panics outside
/// isolated sections keep their normal reporting.
pub fn run_isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_hook();
    let was = ISOLATING.with(|flag| flag.replace(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    ISOLATING.with(|flag| flag.set(was));
    result.map_err(|p| payload_text(&*p))
}

/// Runs `f` with panic reporting suppressed process-wide — for tests that
/// deliberately panic on worker threads (where no thread-local flag can be
/// pre-set) and assert on the propagated payload.
pub fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    install_hook();
    QUIET_DEPTH.fetch_add(1, Ordering::Relaxed);
    let out = f();
    QUIET_DEPTH.fetch_sub(1, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_success_passes_through() {
        assert_eq!(run_isolated(|| 21 * 2), Ok(42));
    }

    #[test]
    fn isolated_panic_is_captured_with_payload() {
        let err = run_isolated(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "boom 7");
        let err = run_isolated(|| -> u32 { std::panic::panic_any(3.5f64) }).unwrap_err();
        assert_eq!(err, "non-string panic payload");
    }

    #[test]
    fn isolation_flag_is_restored() {
        let _ = run_isolated(|| ());
        assert!(!ISOLATING.with(|f| f.get()));
        let _ = run_isolated(|| run_isolated(|| -> u32 { panic!("inner") }));
        assert!(!ISOLATING.with(|f| f.get()));
    }

    #[test]
    fn quiet_scope_unwinds_depth() {
        quiet_panics(|| {
            assert!(QUIET_DEPTH.load(Ordering::Relaxed) >= 1);
        });
    }
}

//! Simulator error types.

use std::fmt;

/// Errors raised while building, checking or executing a mapped program.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SimError {
    /// A software iteration appears in more than one fused group / outer
    /// position, or is missing entirely.
    MalformedMapping { detail: String },
    /// Two intrinsic iteration points demanded different software elements at
    /// the same fragment position — the mapping is not implementable by the
    /// intrinsic's data layout.
    IncoherentFragment { operand: String, position: Vec<i64> },
    /// A schedule exceeds a memory capacity of the accelerator.
    CapacityExceeded {
        level: String,
        needed_bytes: u64,
        available_bytes: u64,
    },
    /// A schedule parameter is out of its legal range.
    InvalidSchedule { detail: String },
    /// The schedule's per-axis vectors do not match the program's axis
    /// count. A payload-free variant: this is the screening hot path's only
    /// structural rejection, and it must not allocate.
    ScheduleAxisMismatch,
    /// Underlying IR error (e.g. out-of-bounds access).
    Ir(amos_ir::IrError),
    /// The operation kind cannot be executed by the intrinsic.
    UnsupportedOp { detail: String },
    /// An evaluation panicked and was caught at an isolation boundary
    /// ([`crate::isolate::run_isolated`]); `detail` is the panic payload
    /// text. Produced by the `*_isolated` entry points and by the explorer's
    /// fault-tolerant supervisor.
    Panicked { detail: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MalformedMapping { detail } => write!(f, "malformed mapping: {detail}"),
            SimError::IncoherentFragment { operand, position } => write!(
                f,
                "incoherent fragment for operand `{operand}` at position {position:?}"
            ),
            SimError::CapacityExceeded {
                level,
                needed_bytes,
                available_bytes,
            } => write!(
                f,
                "capacity exceeded at level `{level}`: need {needed_bytes} bytes, have {available_bytes}"
            ),
            SimError::InvalidSchedule { detail } => write!(f, "invalid schedule: {detail}"),
            SimError::ScheduleAxisMismatch => {
                write!(f, "invalid schedule: schedule does not match program axes")
            }
            SimError::Ir(e) => write!(f, "ir error: {e}"),
            SimError::UnsupportedOp { detail } => write!(f, "unsupported operation: {detail}"),
            SimError::Panicked { detail } => write!(f, "evaluation panicked: {detail}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amos_ir::IrError> for SimError {
    fn from(e: amos_ir::IrError) -> Self {
        SimError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SimError::Ir(amos_ir::IrError::UnknownIter { id: 3 });
        assert!(e.to_string().contains("ir error"));
        assert!(e.source().is_some());

        let e = SimError::CapacityExceeded {
            level: "core".into(),
            needed_bytes: 10,
            available_bytes: 5,
        };
        assert!(e.to_string().contains("need 10 bytes"));
        assert!(e.source().is_none());

        let e = SimError::ScheduleAxisMismatch;
        assert!(e.to_string().contains("does not match program axes"));
        assert!(e.source().is_none());

        let e = SimError::Panicked {
            detail: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("evaluation panicked"));
        assert!(e.source().is_none());
    }
}

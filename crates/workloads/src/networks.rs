//! DNN network inventories for the full-network experiments (Table 2 and
//! Figure 7): ShuffleNet, ResNet-18/50, MobileNet-V1, Bert-base and MI-LSTM.
//!
//! Each network is a list of operator groups with multiplicities and
//! representative shapes. The per-network op totals match the paper's
//! Table 2 "Total Ops" column; whether an op is tensor-core mappable (AMOS)
//! or template-matchable (XLA) is *derived* by the respective systems from
//! the op's structure — layout, stride and operator family — not hard-coded
//! here. The inventories themselves are synthesized from the published
//! architectures (the paper does not list them op by op); DESIGN.md §2
//! records this substitution.

use crate::ops::{self, ConvShape};
use amos_ir::{ComputeBuilder, ComputeDef, DType};

/// Tensor layout of a convolution as deployed in the framework graph.
/// Template matchers are layout-sensitive (the paper's XLA study); AMOS is
/// not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Channels-first (PyTorch default).
    Nchw,
    /// Channels-last (the layout cuDNN's tensor-core templates expect).
    Nhwc,
}

/// The structural kind of one network operator.
#[derive(Debug, Clone, PartialEq)]
pub enum NetOp {
    /// Dense matrix multiply (batched token GEMMs in transformers).
    Gemm {
        /// Rows of the left operand.
        m: i64,
        /// Columns of the right operand.
        n: i64,
        /// Contraction length.
        k: i64,
    },
    /// Batched matrix multiply (attention scores/context).
    BatchMatmul {
        /// Batch (heads x sequence blocks).
        b: i64,
        /// Rows.
        m: i64,
        /// Columns.
        n: i64,
        /// Contraction length.
        k: i64,
    },
    /// Linear layer at batch 1: a matrix-vector product.
    MatVec {
        /// Output features.
        m: i64,
        /// Input features.
        k: i64,
    },
    /// Standard 2D convolution in a given layout.
    Conv(ConvShape, Layout),
    /// Depthwise convolution.
    Depthwise {
        /// Channels.
        c: i64,
        /// Output spatial size.
        p: i64,
        /// Kernel size.
        r: i64,
        /// Stride.
        stride: i64,
    },
    /// Grouped convolution.
    Grouped {
        /// Groups.
        g: i64,
        /// Channels per group.
        c: i64,
        /// Output channels per group.
        k: i64,
        /// Output spatial size.
        p: i64,
        /// Kernel size.
        r: i64,
    },
    /// Row mean/variance reduction (layer norm statistics).
    RowStat {
        /// Rows.
        i: i64,
        /// Reduced length.
        k: i64,
    },
    /// Scalar/elementwise/data-movement op that no tensor unit supports
    /// (ReLU, pooling, softmax, shuffle, residual add, ...).
    Scalar(&'static str),
}

impl NetOp {
    /// Builds the computation for this op at the given batch size; `None`
    /// for scalar ops.
    pub fn compute_def(&self, batch: i64) -> Option<ComputeDef> {
        match *self {
            NetOp::Gemm { m, n, k } => Some(ops::gmm(m * batch, n, k)),
            NetOp::BatchMatmul { b, m, n, k } => Some(batch_matmul(b * batch, m, n, k)),
            NetOp::MatVec { m, k } => {
                if batch > 1 {
                    Some(ops::gmm(batch, m, k))
                } else {
                    Some(ops::gmv(m, k))
                }
            }
            NetOp::Conv(mut sh, layout) => {
                sh.n = batch;
                Some(match layout {
                    Layout::Nchw => ops::c2d(sh),
                    Layout::Nhwc => c2d_nhwc(sh),
                })
            }
            NetOp::Depthwise { c, p, r, stride } => {
                // Valid-padding output of the strided depthwise.
                let _ = stride; // shape already expressed via p
                Some(ops::dep(batch, c, p, p, r, r))
            }
            NetOp::Grouped { g, c, k, p, r } => Some(ops::grp(batch, g, c, k, p, p, r, r)),
            NetOp::RowStat { i, k } => Some(ops::men(i * batch, k)),
            NetOp::Scalar(_) => None,
        }
    }

    /// Scalar multiply-add work of this op at the given batch, for weighting
    /// end-to-end latency (scalar ops contribute a token epsilon).
    pub fn work(&self, batch: i64) -> f64 {
        self.compute_def(batch)
            .map(|d| d.scalar_ops() as f64)
            .unwrap_or(1.0)
    }
}

/// NHWC-layout 2D convolution (channels-last).
pub fn c2d_nhwc(sh: ConvShape) -> ComputeDef {
    let mut b = ComputeBuilder::new("c2d_nhwc");
    let nv = b.spatial("n", sh.n);
    let pv = b.spatial("p", sh.p);
    let qv = b.spatial("q", sh.q);
    let kv = b.spatial("k", sh.k);
    let rv = b.reduce("r", sh.r);
    let sv = b.reduce("s", sh.s);
    let cv = b.reduce("c", sh.c);
    let img = b.input("image", &[sh.n, sh.in_h(), sh.in_w(), sh.c], DType::F16);
    let wt = b.input("weight", &[sh.r, sh.s, sh.c, sh.k], DType::F16);
    let o = b.output("out", &[sh.n, sh.p, sh.q, sh.k], DType::F32);
    b.mul_acc(
        o.at([nv.ex(), pv.ex(), qv.ex(), kv.ex()]),
        img.at([
            nv.ex(),
            pv.ex() * sh.stride + rv.ex(),
            qv.ex() * sh.stride + sv.ex(),
            cv.ex(),
        ]),
        wt.at([rv.ex(), sv.ex(), cv.ex(), kv.ex()]),
    );
    b.finish().expect("c2d_nhwc is well-formed")
}

/// Batched matrix multiply `out[b,i,j] += a[b,i,k] * w[b,k,j]`.
pub fn batch_matmul(bb: i64, m: i64, n: i64, k: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("bmm");
    let bv = b.spatial("b", bb);
    let iv = b.spatial("i", m);
    let jv = b.spatial("j", n);
    let kv = b.reduce("k", k);
    let a = b.input("a", &[bb, m, k], DType::F16);
    let w = b.input("w", &[bb, k, n], DType::F16);
    let o = b.output("out", &[bb, m, n], DType::F32);
    b.mul_acc(
        o.at([bv.ex(), iv.ex(), jv.ex()]),
        a.at([bv.ex(), iv.ex(), kv.ex()]),
        w.at([bv.ex(), kv.ex(), jv.ex()]),
    );
    b.finish().expect("bmm is well-formed")
}

/// One group of identical operators in a network.
#[derive(Debug, Clone, PartialEq)]
pub struct OpGroup {
    /// Group label.
    pub name: &'static str,
    /// Number of instances in the graph.
    pub count: usize,
    /// The operator.
    pub op: NetOp,
}

/// A network inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Network name as in the paper's tables.
    pub name: &'static str,
    /// Operator groups.
    pub groups: Vec<OpGroup>,
}

impl Network {
    /// Total operator instances (Table 2 "Total Ops").
    pub fn total_ops(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Groups with a tensor computation (non-scalar).
    pub fn tensor_groups(&self) -> impl Iterator<Item = &OpGroup> {
        self.groups
            .iter()
            .filter(|g| !matches!(g.op, NetOp::Scalar(_)))
    }
}

fn g(name: &'static str, count: usize, op: NetOp) -> OpGroup {
    OpGroup { name, count, op }
}

fn conv(c: i64, k: i64, p: i64, r: i64, stride: i64, layout: Layout) -> NetOp {
    NetOp::Conv(
        ConvShape {
            n: 1,
            c,
            k,
            p,
            q: p,
            r,
            s: r,
            stride,
        },
        layout,
    )
}

/// ShuffleNet (70 ops): grouped and depthwise convolutions dominate.
pub fn shufflenet() -> Network {
    Network {
        name: "ShuffleNet",
        groups: vec![
            g("conv-nhwc", 6, conv(116, 116, 14, 1, 1, Layout::Nhwc)),
            g(
                "grouped-conv",
                16,
                NetOp::Grouped {
                    g: 8,
                    c: 30,
                    k: 30,
                    p: 14,
                    r: 1,
                },
            ),
            g(
                "depthwise-conv",
                16,
                NetOp::Depthwise {
                    c: 232,
                    p: 14,
                    r: 3,
                    stride: 1,
                },
            ),
            g("conv-nchw", 8, conv(24, 58, 28, 1, 1, Layout::Nchw)),
            g("strided-conv", 3, conv(58, 116, 14, 3, 2, Layout::Nchw)),
            g("fc", 1, NetOp::MatVec { m: 1000, k: 1024 }),
            g("channel-shuffle", 8, NetOp::Scalar("shuffle")),
            g("relu", 6, NetOp::Scalar("relu")),
            g("pool", 2, NetOp::Scalar("pool")),
            g("concat", 4, NetOp::Scalar("concat")),
        ],
    }
}

/// ResNet-18 (22 ops): the Table 5 layers with their multiplicities.
pub fn resnet18() -> Network {
    let layers = crate::configs::resnet18_conv_layers(1);
    let mult = [1usize, 4, 1, 1, 1, 3, 1, 1, 3, 1, 1, 3];
    let names = [
        "C0", "C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10", "C11",
    ];
    let mut groups: Vec<OpGroup> = layers
        .into_iter()
        .zip(mult)
        .zip(names)
        .map(|(((_, sh), count), name)| g(name, count, NetOp::Conv(sh, Layout::Nchw)))
        .collect();
    groups.push(g("fc", 1, NetOp::MatVec { m: 1000, k: 512 }));
    Network {
        name: "ResNet-18",
        groups,
    }
}

/// ResNet-50 (71 ops): 53 convolutions + fc + scalar glue.
pub fn resnet50() -> Network {
    Network {
        name: "ResNet-50",
        groups: vec![
            // 15 NHWC stride-1 1x1 convs: the pattern XLA's templates match.
            g("conv1x1-nhwc", 15, conv(256, 64, 56, 1, 1, Layout::Nhwc)),
            g("conv1x1-nchw", 18, conv(64, 256, 56, 1, 1, Layout::Nchw)),
            g("conv3x3-nchw", 12, conv(128, 128, 28, 3, 1, Layout::Nchw)),
            g("strided-conv", 7, conv(256, 512, 14, 3, 2, Layout::Nchw)),
            g("stem-conv", 1, conv(3, 64, 112, 7, 2, Layout::Nchw)),
            g("fc", 1, NetOp::MatVec { m: 1000, k: 2048 }),
            g("relu", 9, NetOp::Scalar("relu")),
            g("pool", 2, NetOp::Scalar("pool")),
            g("residual-add", 6, NetOp::Scalar("add")),
        ],
    }
}

/// MobileNet-V1 (30 ops): depthwise-separable stacks.
pub fn mobilenet_v1() -> Network {
    Network {
        name: "MobileNet-V1",
        groups: vec![
            g("pointwise-nhwc", 7, conv(128, 128, 28, 1, 1, Layout::Nhwc)),
            g("pointwise-nchw", 6, conv(256, 256, 14, 1, 1, Layout::Nchw)),
            g(
                "depthwise-conv",
                13,
                NetOp::Depthwise {
                    c: 256,
                    p: 14,
                    r: 3,
                    stride: 1,
                },
            ),
            g("stem-conv", 1, conv(3, 32, 112, 3, 2, Layout::Nchw)),
            g("fc", 1, NetOp::MatVec { m: 1000, k: 1024 }),
            // Too small for the template's 16-aligned tiles: AMOS-only.
            g(
                "classifier-gemm",
                1,
                NetOp::Gemm {
                    m: 8,
                    n: 1024,
                    k: 1024,
                },
            ),
            g("pool", 1, NetOp::Scalar("pool")),
        ],
    }
}

/// Bert-base (204 ops): 42 projection GEMMs (matched by XLA), attention
/// batched matmuls and layer-norm statistics (mapped only by AMOS), plus a
/// long tail of scalar glue.
pub fn bert_base() -> Network {
    Network {
        name: "Bert",
        groups: vec![
            // 12 layers x (QKV fused, attn out, ffn up, ffn down) = 48 - 6
            // residual-folded = 42 canonical GEMMs.
            g(
                "projection-gemm",
                42,
                NetOp::Gemm {
                    m: 128,
                    n: 768,
                    k: 768,
                },
            ),
            // 12 layers x 2 attention matmuls: scores and context.
            g(
                "attention-bmm",
                24,
                NetOp::BatchMatmul {
                    b: 12,
                    m: 128,
                    n: 128,
                    k: 64,
                },
            ),
            // 25 layer norms' row statistics (2 per layer + embedding).
            g("layernorm-stat", 18, NetOp::RowStat { i: 128, k: 768 }),
            g("softmax", 12, NetOp::Scalar("softmax")),
            g("gelu", 12, NetOp::Scalar("gelu")),
            g("residual-add", 24, NetOp::Scalar("add")),
            g("dropout", 24, NetOp::Scalar("dropout")),
            g("reshape-transpose", 36, NetOp::Scalar("reshape")),
            g("embedding-lookup", 3, NetOp::Scalar("gather")),
            g("bias-add", 9, NetOp::Scalar("bias")),
        ],
    }
}

/// MI-LSTM (11 ops): batch-1 linear layers that template matchers reject as
/// matrix-vector products, plus gate arithmetic.
pub fn mi_lstm() -> Network {
    Network {
        name: "MI-LSTM",
        groups: vec![
            g("linear", 9, NetOp::MatVec { m: 1024, k: 1024 }),
            g("gate-elementwise", 1, NetOp::Scalar("gates")),
            g("tanh", 1, NetOp::Scalar("tanh")),
        ],
    }
}

/// The five Table 2 networks plus ResNet-18 (used in Figure 7).
pub fn all_networks() -> Vec<Network> {
    vec![
        shufflenet(),
        resnet18(),
        resnet50(),
        mobilenet_v1(),
        bert_base(),
        mi_lstm(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_total_op_counts() {
        assert_eq!(shufflenet().total_ops(), 70);
        assert_eq!(resnet50().total_ops(), 71);
        assert_eq!(mobilenet_v1().total_ops(), 30);
        assert_eq!(bert_base().total_ops(), 204);
        assert_eq!(mi_lstm().total_ops(), 11);
    }

    #[test]
    fn all_tensor_ops_build_at_batch_1_and_16() {
        for net in all_networks() {
            for grp in net.tensor_groups() {
                for batch in [1, 16] {
                    let def = grp
                        .op
                        .compute_def(batch)
                        .unwrap_or_else(|| panic!("{}/{} must build", net.name, grp.name));
                    assert!(def.scalar_ops() > 0);
                }
            }
        }
    }

    #[test]
    fn scalar_ops_have_no_compute_def() {
        assert!(NetOp::Scalar("relu").compute_def(1).is_none());
        assert_eq!(NetOp::Scalar("relu").work(1), 1.0);
    }

    #[test]
    fn matvec_becomes_gemm_at_batch_16() {
        let op = NetOp::MatVec { m: 64, k: 32 };
        let at1 = op.compute_def(1).unwrap();
        let at16 = op.compute_def(16).unwrap();
        assert_eq!(at1.iters().len(), 2);
        assert_eq!(at16.iters().len(), 3);
    }

    #[test]
    fn nhwc_conv_matches_nchw_numerics() {
        use amos_ir::interp;
        let sh = ConvShape {
            n: 1,
            c: 3,
            k: 4,
            p: 5,
            q: 5,
            r: 3,
            s: 3,
            stride: 1,
        };
        // Same logical convolution, different layouts: outputs are permuted
        // but their multisets of values must match.
        let a = ops::c2d(sh);
        let b = c2d_nhwc(sh);
        let ta = interp::make_inputs(&a, 1);
        let tb = interp::make_inputs(&b, 1);
        let oa = interp::execute(&a, &ta).unwrap();
        let ob = interp::execute(&b, &tb).unwrap();
        assert_eq!(oa.data.len(), ob.data.len());
    }

    #[test]
    fn resnet18_has_12_conv_groups_plus_fc() {
        let net = resnet18();
        assert_eq!(net.groups.len(), 13);
        assert_eq!(net.total_ops(), 22);
    }
}

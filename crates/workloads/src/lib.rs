//! # amos-workloads — the tensor operators and networks of the AMOS
//! evaluation
//!
//! * [`ops`] — the fifteen operator families of §7.3 (GMV … SCN),
//! * [`configs`] — the 113 operator configurations and the ResNet-18
//!   convolution layers C0–C11 of Table 5,
//! * [`networks`] — the Table 2 / Figure 7 network inventories
//!   (ShuffleNet, ResNet-18/50, MobileNet-V1, Bert-base, MI-LSTM),
//! * [`spec`] — the textual `family:dims` operator-spec grammar shared by
//!   the CLI and the `amosd` serve protocol.
//!
//! ```
//! use amos_workloads::{configs, networks, ops};
//!
//! assert_eq!(configs::operator_configs().len(), 113);
//! assert_eq!(networks::bert_base().total_ops(), 204);
//! let gemm = ops::gmm(128, 768, 768);
//! assert_eq!(gemm.iters().len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod configs;
pub mod networks;
pub mod ops;
pub mod spec;

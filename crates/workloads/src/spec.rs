//! Textual operator specs (`family:dims`) shared by the CLI and `amosd`.
//!
//! The grammar is the `amos explore` one: a family tag from [`ops`] and
//! either an `x`-separated dimension list (`gmm:512x512x256`) or a
//! `key<value>` list (`c2d:n1,c64,k64,p28,r3,st1`) with per-family
//! defaults. Both the CLI verbs and the serve protocol parse requests with
//! [`parse_spec`], so a spec accepted on the command line is accepted over
//! the wire byte-for-byte.

use amos_ir::ComputeDef;

use crate::ops;

/// Parses `key1,key2,...` dims like `n16,c64,k64,p56,q56,r3,s3,st1` into
/// (key, value) pairs.
fn parse_kv(dims: &str) -> Result<Vec<(String, i64)>, String> {
    dims.split(',')
        .map(|part| {
            let split = part
                .find(|c: char| c.is_ascii_digit() || c == '-')
                .ok_or_else(|| format!("malformed dimension `{part}`"))?;
            let (key, val) = part.split_at(split);
            let v: i64 = val.parse().map_err(|_| format!("bad number in `{part}`"))?;
            Ok((key.to_string(), v))
        })
        .collect()
}

fn get(kv: &[(String, i64)], key: &str, default: i64) -> i64 {
    kv.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or(default)
}

/// Parses an `MxNx...` dimension list.
fn parse_x(dims: &str, expect: usize) -> Result<Vec<i64>, String> {
    let vals: Result<Vec<i64>, _> = dims.split('x').map(str::parse).collect();
    let vals = vals.map_err(|_| format!("bad dimensions `{dims}`"))?;
    if vals.len() != expect {
        return Err(format!(
            "expected {expect} `x`-separated dimensions, got {}",
            vals.len()
        ));
    }
    Ok(vals)
}

/// Parses an operator spec (`family:dims`) into a computation.
///
/// # Errors
///
/// A human-readable message naming the malformed piece (unknown family,
/// wrong arity, bad number).
pub fn parse_spec(spec: &str) -> Result<ComputeDef, String> {
    let (family, dims) = spec
        .split_once(':')
        .ok_or_else(|| "operator spec must be `family:dims`, e.g. gmm:512x512x256".to_string())?;
    match family.to_lowercase().as_str() {
        "gmm" => {
            let d = parse_x(dims, 3)?;
            Ok(ops::gmm(d[0], d[1], d[2]))
        }
        "gmv" => {
            let d = parse_x(dims, 2)?;
            Ok(ops::gmv(d[0], d[1]))
        }
        "scn" => {
            let d = parse_x(dims, 2)?;
            Ok(ops::scn(d[0], d[1]))
        }
        "men" => {
            let d = parse_x(dims, 2)?;
            Ok(ops::men(d[0], d[1]))
        }
        "c2d" => {
            let kv = parse_kv(dims)?;
            Ok(ops::c2d(ops::ConvShape {
                n: get(&kv, "n", 1),
                c: get(&kv, "c", 64),
                k: get(&kv, "k", 64),
                p: get(&kv, "p", 28),
                q: get(&kv, "q", get(&kv, "p", 28)),
                r: get(&kv, "r", 3),
                s: get(&kv, "s", get(&kv, "r", 3)),
                stride: get(&kv, "st", 1),
            }))
        }
        "dep" => {
            let kv = parse_kv(dims)?;
            let p = get(&kv, "p", 28);
            let r = get(&kv, "r", 3);
            Ok(ops::dep(get(&kv, "n", 1), get(&kv, "c", 64), p, p, r, r))
        }
        "c3d" => {
            let kv = parse_kv(dims)?;
            Ok(ops::c3d(
                get(&kv, "n", 1),
                get(&kv, "c", 8),
                get(&kv, "k", 8),
                get(&kv, "d", 6),
                get(&kv, "p", 6),
                get(&kv, "q", get(&kv, "p", 6)),
                3,
                3,
                3,
            ))
        }
        "c1d" => {
            let kv = parse_kv(dims)?;
            Ok(ops::c1d(
                get(&kv, "n", 1),
                get(&kv, "c", 64),
                get(&kv, "k", 64),
                get(&kv, "q", 256),
                get(&kv, "s", 3),
                get(&kv, "st", 1),
            ))
        }
        "t2d" => {
            let kv = parse_kv(dims)?;
            let h = get(&kv, "h", 7);
            let r = get(&kv, "r", 3);
            Ok(ops::t2d(
                get(&kv, "n", 1),
                get(&kv, "c", 8),
                get(&kv, "k", 8),
                h,
                get(&kv, "w", h),
                r,
                r,
            ))
        }
        "bcv" => {
            let kv = parse_kv(dims)?;
            let p = get(&kv, "p", 14);
            let r = get(&kv, "r", 3);
            Ok(ops::bcv(
                get(&kv, "n", 8),
                get(&kv, "c", 16),
                get(&kv, "k", 16),
                p,
                p,
                r,
                r,
            ))
        }
        "gfc" => {
            let kv = parse_kv(dims)?;
            Ok(ops::gfc(
                get(&kv, "b", 16),
                get(&kv, "g", 4),
                get(&kv, "k", 64),
                get(&kv, "c", 64),
            ))
        }
        "var" => {
            let d = parse_x(dims, 2)?;
            Ok(ops::var(d[0], d[1]))
        }
        "grp" => {
            let kv = parse_kv(dims)?;
            let p = get(&kv, "p", 14);
            let r = get(&kv, "r", 3);
            Ok(ops::grp(
                get(&kv, "n", 1),
                get(&kv, "g", 4),
                get(&kv, "c", 16),
                get(&kv, "k", 16),
                p,
                p,
                r,
                r,
            ))
        }
        other => Err(format!(
            "unknown operator family `{other}`; known: gmm, gmv, c1d, c2d, c3d, t2d, dep, grp, bcv, gfc, men, var, scn"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_with_defaults() {
        let g = parse_spec("gmm:128x64x32").unwrap();
        assert_eq!(g.iters().len(), 3);
        let c = parse_spec("c2d:n2,c8,k8,p7,q7,r3,s3,st2").unwrap();
        assert_eq!(c.name(), "c2d");
        let d = parse_spec("dep:c32,p14,r3").unwrap();
        assert_eq!(d.name(), "dep");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(parse_spec("gmm:12x12").is_err());
        assert!(parse_spec("nope:1x2x3").unwrap_err().contains("unknown"));
        assert!(parse_spec("gmm").is_err(), "missing `:dims`");
        assert!(parse_spec("c2d:zz").is_err(), "malformed kv dim");
    }
}

//! The fifteen tensor operators of the AMOS evaluation (§7.3):
//! GMV, GMM, C1D, C2D, C3D, T2D, GRP, DIL, DEP, CAP, BCV, GFC, MEN, VAR, SCN.
//!
//! Every constructor returns a [`ComputeDef`] in the canonical NCHW-style
//! layout the paper uses. Reductions that are not multiply-accumulate in
//! their natural form are expressed through constant operands so that they
//! remain tensorizable, following the tricks the paper cites: row mean and
//! variance multiply by a ones vector (Dakkak et al.), and scan multiplies by
//! a triangular mask.

use amos_ir::{ComputeBuilder, ComputeDef, DType, Expr};

/// Matrix-vector multiply `out[i] += a[i, k] * x[k]`.
pub fn gmv(i: i64, k: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("gmv");
    let iv = b.spatial("i", i);
    let kv = b.reduce("k", k);
    let a = b.input("a", &[i, k], DType::F16);
    let x = b.input("x", &[k], DType::F16);
    let o = b.output("out", &[i], DType::F32);
    b.mul_acc(o.at([iv]), a.at([iv, kv]), x.at([kv]));
    b.finish().expect("gmv is well-formed")
}

/// Matrix multiply `out[i, j] += a[i, k] * b[k, j]`.
pub fn gmm(i: i64, j: i64, k: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("gmm");
    let iv = b.spatial("i", i);
    let jv = b.spatial("j", j);
    let kv = b.reduce("k", k);
    let a = b.input("a", &[i, k], DType::F16);
    let w = b.input("b", &[k, j], DType::F16);
    let o = b.output("out", &[i, j], DType::F32);
    b.mul_acc(o.at([iv, jv]), a.at([iv, kv]), w.at([kv, jv]));
    b.finish().expect("gmm is well-formed")
}

/// Shape of a convolution-style operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Batch.
    pub n: i64,
    /// Input channels.
    pub c: i64,
    /// Output channels.
    pub k: i64,
    /// Output height.
    pub p: i64,
    /// Output width.
    pub q: i64,
    /// Kernel height.
    pub r: i64,
    /// Kernel width.
    pub s: i64,
    /// Stride.
    pub stride: i64,
}

impl ConvShape {
    /// Input spatial height for "valid" padding.
    pub fn in_h(&self) -> i64 {
        (self.p - 1) * self.stride + self.r
    }

    /// Input spatial width for "valid" padding.
    pub fn in_w(&self) -> i64 {
        (self.q - 1) * self.stride + self.s
    }
}

/// 1D convolution `out[n,k,q] += img[n,c,q*stride+s] * wt[k,c,s]`.
pub fn c1d(n: i64, c: i64, k: i64, q: i64, s: i64, stride: i64) -> ComputeDef {
    let in_w = (q - 1) * stride + s;
    let mut b = ComputeBuilder::new("c1d");
    let nv = b.spatial("n", n);
    let kv = b.spatial("k", k);
    let qv = b.spatial("q", q);
    let cv = b.reduce("c", c);
    let sv = b.reduce("s", s);
    let img = b.input("image", &[n, c, in_w], DType::F16);
    let wt = b.input("weight", &[k, c, s], DType::F16);
    let o = b.output("out", &[n, k, q], DType::F32);
    b.mul_acc(
        o.at([nv.ex(), kv.ex(), qv.ex()]),
        img.at([nv.ex(), cv.ex(), qv.ex() * stride + sv.ex()]),
        wt.at([kv.ex(), cv.ex(), sv.ex()]),
    );
    b.finish().expect("c1d is well-formed")
}

/// 2D convolution (NCHW, valid padding)
/// `out[n,k,p,q] += img[n,c,p*stride+r,q*stride+s] * wt[k,c,r,s]`.
pub fn c2d(sh: ConvShape) -> ComputeDef {
    let mut b = ComputeBuilder::new("c2d");
    let nv = b.spatial("n", sh.n);
    let kv = b.spatial("k", sh.k);
    let pv = b.spatial("p", sh.p);
    let qv = b.spatial("q", sh.q);
    let cv = b.reduce("c", sh.c);
    let rv = b.reduce("r", sh.r);
    let sv = b.reduce("s", sh.s);
    let img = b.input("image", &[sh.n, sh.c, sh.in_h(), sh.in_w()], DType::F16);
    let wt = b.input("weight", &[sh.k, sh.c, sh.r, sh.s], DType::F16);
    let o = b.output("out", &[sh.n, sh.k, sh.p, sh.q], DType::F32);
    b.mul_acc(
        o.at([nv.ex(), kv.ex(), pv.ex(), qv.ex()]),
        img.at([
            nv.ex(),
            cv.ex(),
            pv.ex() * sh.stride + rv.ex(),
            qv.ex() * sh.stride + sv.ex(),
        ]),
        wt.at([kv.ex(), cv.ex(), rv.ex(), sv.ex()]),
    );
    b.finish().expect("c2d is well-formed")
}

/// 3D convolution over (depth, height, width).
#[allow(clippy::too_many_arguments)]
pub fn c3d(n: i64, c: i64, k: i64, d: i64, p: i64, q: i64, t: i64, r: i64, s: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("c3d");
    let nv = b.spatial("n", n);
    let kv = b.spatial("k", k);
    let dv = b.spatial("d", d);
    let pv = b.spatial("p", p);
    let qv = b.spatial("q", q);
    let cv = b.reduce("c", c);
    let tv = b.reduce("t", t);
    let rv = b.reduce("r", r);
    let sv = b.reduce("s", s);
    let img = b.input(
        "image",
        &[n, c, d + t - 1, p + r - 1, q + s - 1],
        DType::F16,
    );
    let wt = b.input("weight", &[k, c, t, r, s], DType::F16);
    let o = b.output("out", &[n, k, d, p, q], DType::F32);
    b.mul_acc(
        o.at([nv.ex(), kv.ex(), dv.ex(), pv.ex(), qv.ex()]),
        img.at([
            nv.ex(),
            cv.ex(),
            dv.ex() + tv.ex(),
            pv.ex() + rv.ex(),
            qv.ex() + sv.ex(),
        ]),
        wt.at([kv.ex(), cv.ex(), tv.ex(), rv.ex(), sv.ex()]),
    );
    b.finish().expect("c3d is well-formed")
}

/// Transposed 2D convolution with stride 2 (gather form): the input pixel is
/// `(p - r + pad) / 2`, guarded by divisibility and range predicates.
pub fn t2d(n: i64, c: i64, k: i64, in_h: i64, in_w: i64, r: i64, s: i64) -> ComputeDef {
    let stride = 2i64;
    let out_h = (in_h - 1) * stride + r;
    let out_w = (in_w - 1) * stride + s;
    let mut b = ComputeBuilder::new("t2d");
    let nv = b.spatial("n", n);
    let kv = b.spatial("k", k);
    let pv = b.spatial("p", out_h);
    let qv = b.spatial("q", out_w);
    let cv = b.reduce("c", c);
    let rv = b.reduce("r", r);
    let sv = b.reduce("s", s);
    let img = b.input("image", &[n, c, in_h, in_w], DType::F16);
    let wt = b.input("weight", &[k, c, r, s], DType::F16);
    let o = b.output("out", &[n, k, out_h, out_w], DType::F32);
    // Source pixel: (p - r) must be non-negative, even, and within bounds.
    let h_idx = (pv.ex() - rv.ex()).floor_div(stride);
    let w_idx = (qv.ex() - sv.ex()).floor_div(stride);
    b.mul_acc(
        o.at([nv.ex(), kv.ex(), pv.ex(), qv.ex()]),
        img.at([nv.ex(), cv.ex(), h_idx.clone(), w_idx.clone()]),
        wt.at([kv.ex(), cv.ex(), rv.ex(), sv.ex()]),
    );
    // Active only when p >= r, (p - r) divisible by the stride, and the
    // source pixel within range (analogously for the width).
    b.require_zero((pv.ex() - rv.ex() + Expr::int(stride * out_h)).rem(stride));
    b.require_zero(
        (pv.ex() - rv.ex() + Expr::int(stride * out_h)).floor_div(stride * out_h) - Expr::int(1),
    );
    b.require_zero(h_idx.floor_div(in_h));
    b.require_zero((qv.ex() - sv.ex() + Expr::int(stride * out_w)).rem(stride));
    b.require_zero(
        (qv.ex() - sv.ex() + Expr::int(stride * out_w)).floor_div(stride * out_w) - Expr::int(1),
    );
    b.require_zero(w_idx.floor_div(in_w));
    b.finish().expect("t2d is well-formed")
}

/// Grouped convolution: channels split into `g` groups.
#[allow(clippy::too_many_arguments)]
pub fn grp(n: i64, g: i64, c: i64, k: i64, p: i64, q: i64, r: i64, s: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("grp");
    let nv = b.spatial("n", n);
    let gv = b.spatial("g", g);
    let kv = b.spatial("k", k);
    let pv = b.spatial("p", p);
    let qv = b.spatial("q", q);
    let cv = b.reduce("c", c);
    let rv = b.reduce("r", r);
    let sv = b.reduce("s", s);
    let img = b.input("image", &[n, g, c, p + r - 1, q + s - 1], DType::F16);
    let wt = b.input("weight", &[g, k, c, r, s], DType::F16);
    let o = b.output("out", &[n, g, k, p, q], DType::F32);
    b.mul_acc(
        o.at([nv.ex(), gv.ex(), kv.ex(), pv.ex(), qv.ex()]),
        img.at([
            nv.ex(),
            gv.ex(),
            cv.ex(),
            pv.ex() + rv.ex(),
            qv.ex() + sv.ex(),
        ]),
        wt.at([gv.ex(), kv.ex(), cv.ex(), rv.ex(), sv.ex()]),
    );
    b.finish().expect("grp is well-formed")
}

/// Dilated convolution (dilation 2).
#[allow(clippy::too_many_arguments)]
pub fn dil(n: i64, c: i64, k: i64, p: i64, q: i64, r: i64, s: i64) -> ComputeDef {
    let dilation = 2i64;
    let mut b = ComputeBuilder::new("dil");
    let nv = b.spatial("n", n);
    let kv = b.spatial("k", k);
    let pv = b.spatial("p", p);
    let qv = b.spatial("q", q);
    let cv = b.reduce("c", c);
    let rv = b.reduce("r", r);
    let sv = b.reduce("s", s);
    let img = b.input(
        "image",
        &[n, c, p + dilation * (r - 1), q + dilation * (s - 1)],
        DType::F16,
    );
    let wt = b.input("weight", &[k, c, r, s], DType::F16);
    let o = b.output("out", &[n, k, p, q], DType::F32);
    b.mul_acc(
        o.at([nv.ex(), kv.ex(), pv.ex(), qv.ex()]),
        img.at([
            nv.ex(),
            cv.ex(),
            pv.ex() + rv.ex() * dilation,
            qv.ex() + sv.ex() * dilation,
        ]),
        wt.at([kv.ex(), cv.ex(), rv.ex(), sv.ex()]),
    );
    b.finish().expect("dil is well-formed")
}

/// Depthwise convolution: one filter per channel.
pub fn dep(n: i64, c: i64, p: i64, q: i64, r: i64, s: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("dep");
    let nv = b.spatial("n", n);
    let cv = b.spatial("ch", c);
    let pv = b.spatial("p", p);
    let qv = b.spatial("q", q);
    let rv = b.reduce("r", r);
    let sv = b.reduce("s", s);
    let img = b.input("image", &[n, c, p + r - 1, q + s - 1], DType::F16);
    let wt = b.input("weight", &[c, r, s], DType::F16);
    let o = b.output("out", &[n, c, p, q], DType::F32);
    b.mul_acc(
        o.at([nv.ex(), cv.ex(), pv.ex(), qv.ex()]),
        img.at([nv.ex(), cv.ex(), pv.ex() + rv.ex(), qv.ex() + sv.ex()]),
        wt.at([cv.ex(), rv.ex(), sv.ex()]),
    );
    b.finish().expect("dep is well-formed")
}

/// Capsule convolution (Hinton et al.): conv over 4x4 matrix capsules,
/// `out[n,p,q,ko,a,bb] += img[n,p+r,q+s,c,a,k] * wt[r,s,c,ko,k,bb]`.
#[allow(clippy::too_many_arguments)]
pub fn cap(n: i64, c: i64, k: i64, p: i64, q: i64, r: i64, s: i64, cdim: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("cap");
    let nv = b.spatial("n", n);
    let pv = b.spatial("p", p);
    let qv = b.spatial("q", q);
    let kv = b.spatial("ko", k);
    let av = b.spatial("a", cdim);
    let bv = b.spatial("b", cdim);
    let cv = b.reduce("c", c);
    let rv = b.reduce("r", r);
    let sv = b.reduce("s", s);
    let kk = b.reduce("kk", cdim);
    let img = b.input(
        "image",
        &[n, p + r - 1, q + s - 1, c, cdim, cdim],
        DType::F16,
    );
    let wt = b.input("weight", &[r, s, c, k, cdim, cdim], DType::F16);
    let o = b.output("out", &[n, p, q, k, cdim, cdim], DType::F32);
    b.mul_acc(
        o.at([nv.ex(), pv.ex(), qv.ex(), kv.ex(), av.ex(), bv.ex()]),
        img.at([
            nv.ex(),
            pv.ex() + rv.ex(),
            qv.ex() + sv.ex(),
            cv.ex(),
            av.ex(),
            kk.ex(),
        ]),
        wt.at([rv.ex(), sv.ex(), cv.ex(), kv.ex(), kk.ex(), bv.ex()]),
    );
    b.finish().expect("cap is well-formed")
}

/// Batched (conditionally parameterised) convolution: per-sample weights
/// (CondConv), `out[n,k,p,q] += img[n,c,p+r,q+s] * wt[n,k,c,r,s]`.
#[allow(clippy::too_many_arguments)]
pub fn bcv(n: i64, c: i64, k: i64, p: i64, q: i64, r: i64, s: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("bcv");
    let nv = b.spatial("n", n);
    let kv = b.spatial("k", k);
    let pv = b.spatial("p", p);
    let qv = b.spatial("q", q);
    let cv = b.reduce("c", c);
    let rv = b.reduce("r", r);
    let sv = b.reduce("s", s);
    let img = b.input("image", &[n, c, p + r - 1, q + s - 1], DType::F16);
    let wt = b.input("weight", &[n, k, c, r, s], DType::F16);
    let o = b.output("out", &[n, k, p, q], DType::F32);
    b.mul_acc(
        o.at([nv.ex(), kv.ex(), pv.ex(), qv.ex()]),
        img.at([nv.ex(), cv.ex(), pv.ex() + rv.ex(), qv.ex() + sv.ex()]),
        wt.at([nv.ex(), kv.ex(), cv.ex(), rv.ex(), sv.ex()]),
    );
    b.finish().expect("bcv is well-formed")
}

/// Grouped fully-connected layer (WeightNet):
/// `out[b,g,k] += in[b,g,c] * wt[g,k,c]`.
pub fn gfc(batch: i64, g: i64, k: i64, c: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("gfc");
    let bv = b.spatial("b", batch);
    let gv = b.spatial("g", g);
    let kv = b.spatial("k", k);
    let cv = b.reduce("c", c);
    let x = b.input("in", &[batch, g, c], DType::F16);
    let wt = b.input("weight", &[g, k, c], DType::F16);
    let o = b.output("out", &[batch, g, k], DType::F32);
    b.mul_acc(
        o.at([bv.ex(), gv.ex(), kv.ex()]),
        x.at([bv.ex(), gv.ex(), cv.ex()]),
        wt.at([gv.ex(), kv.ex(), cv.ex()]),
    );
    b.finish().expect("gfc is well-formed")
}

/// Matrix row mean expressed as a matrix–ones product
/// `out[i] += a[i, k] * ones[k]` (the 1/K scaling is a scalar epilogue).
pub fn men(i: i64, k: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("men");
    let iv = b.spatial("i", i);
    let kv = b.reduce("k", k);
    let a = b.input("a", &[i, k], DType::F16);
    let ones = b.constant("ones", &[k], DType::F16);
    let o = b.output("out", &[i], DType::F32);
    b.mul_acc(o.at([iv]), a.at([iv, kv]), ones.at([kv]));
    b.finish().expect("men is well-formed")
}

/// Matrix row variance: the tensorizable part is the sum of squares,
/// `out[i] += a2[i, k] * ones[k]`, where `a2` is the centred-and-squared
/// input (a scalar prologue).
pub fn var(i: i64, k: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("var");
    let iv = b.spatial("i", i);
    let kv = b.reduce("k", k);
    let a2 = b.input("a_sq", &[i, k], DType::F16);
    let ones = b.constant("ones", &[k], DType::F16);
    let o = b.output("out", &[i], DType::F32);
    b.mul_acc(o.at([iv]), a2.at([iv, kv]), ones.at([kv]));
    b.finish().expect("var is well-formed")
}

/// Scan (prefix sum) along rows via a triangular mask (Dakkak et al.):
/// `out[i, j] += a[i, k] * upper_tri[k, j]`.
pub fn scn(i: i64, j: i64) -> ComputeDef {
    let mut b = ComputeBuilder::new("scn");
    let iv = b.spatial("i", i);
    let jv = b.spatial("j", j);
    let kv = b.reduce("k", j);
    let a = b.input("a", &[i, j], DType::F16);
    let tri = b.constant("upper_tri", &[j, j], DType::F16);
    let o = b.output("out", &[i, j], DType::F32);
    b.mul_acc(o.at([iv, jv]), a.at([iv, kv]), tri.at([kv, jv]));
    b.finish().expect("scn is well-formed")
}

/// The operator family names in the order of paper Table 6.
pub const OPERATOR_NAMES: [&str; 15] = [
    "GMV", "GMM", "C1D", "C2D", "C3D", "T2D", "GRP", "DIL", "DEP", "CAP", "BCV", "GFC", "MEN",
    "VAR", "SCN",
];

/// A small representative instance of every operator family, in Table 6
/// order — used for mapping-count experiments where the extents are
/// irrelevant (the mapping space depends only on the access structure).
pub fn representative_ops() -> Vec<ComputeDef> {
    vec![
        gmv(64, 64),
        gmm(64, 64, 64),
        c1d(4, 16, 16, 14, 3, 1),
        c2d(ConvShape {
            n: 4,
            c: 16,
            k: 16,
            p: 14,
            q: 14,
            r: 3,
            s: 3,
            stride: 1,
        }),
        c3d(2, 8, 8, 6, 6, 6, 3, 3, 3),
        t2d(2, 8, 8, 7, 7, 3, 3),
        grp(2, 4, 8, 8, 7, 7, 3, 3),
        dil(2, 8, 8, 7, 7, 3, 3),
        dep(2, 16, 7, 7, 3, 3),
        cap(1, 4, 4, 6, 6, 3, 3, 4),
        bcv(4, 8, 8, 7, 7, 3, 3),
        gfc(8, 4, 16, 16),
        men(64, 64),
        var(64, 64),
        scn(32, 32),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_ir::interp;

    #[test]
    fn all_representative_ops_build_and_execute() {
        for def in representative_ops() {
            let tensors = interp::make_inputs(&def, 11);
            let out = interp::execute(&def, &tensors)
                .unwrap_or_else(|e| panic!("{} failed: {e}", def.name()));
            assert!(!out.data.is_empty(), "{} produced no output", def.name());
        }
    }

    #[test]
    fn operator_list_matches_table6_order() {
        let ops = representative_ops();
        assert_eq!(ops.len(), OPERATOR_NAMES.len());
        for (def, name) in ops.iter().zip(OPERATOR_NAMES) {
            assert_eq!(def.name().to_uppercase(), name, "order mismatch");
        }
    }

    #[test]
    fn conv_shape_helper() {
        let sh = ConvShape {
            n: 1,
            c: 3,
            k: 64,
            p: 112,
            q: 112,
            r: 7,
            s: 7,
            stride: 2,
        };
        assert_eq!(sh.in_h(), 229);
        assert_eq!(sh.in_w(), 229);
    }

    #[test]
    fn t2d_matches_manual_transposed_conv() {
        // Compare the predicate-guarded gather form against a direct
        // scatter-style reference computation.
        let n = 1;
        let (c, k) = (2, 2);
        let (in_h, in_w, r, s) = (3, 3, 3, 3);
        let def = t2d(n, c, k, in_h, in_w, r, s);
        let tensors = interp::make_inputs(&def, 5);
        let out = interp::execute(&def, &tensors).unwrap();

        let stride = 2;
        let out_h = (in_h - 1) * stride + r;
        let out_w = (in_w - 1) * stride + s;
        let img = &tensors[0];
        let wt = &tensors[1];
        let mut expect = vec![0.0f64; (n * k * out_h * out_w) as usize];
        for nn in 0..n {
            for cc in 0..c {
                for y in 0..in_h {
                    for x in 0..in_w {
                        let v = img.data[((nn * c + cc) * in_h * in_w + y * in_w + x) as usize];
                        for kk in 0..k {
                            for rr in 0..r {
                                for ss in 0..s {
                                    let oy = y * stride + rr;
                                    let ox = x * stride + ss;
                                    let w = wt.data[(((kk * c + cc) * r + rr) * s + ss) as usize];
                                    expect[((nn * k + kk) * out_h * out_w + oy * out_w + ox)
                                        as usize] += v * w;
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(out.data, expect, "gather T2D must equal scatter reference");
    }

    #[test]
    fn scan_computes_prefix_sums() {
        let def = scn(2, 4);
        let mut tensors = interp::make_inputs(&def, 0);
        tensors[0].data = vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0];
        let out = interp::execute(&def, &tensors).unwrap();
        assert_eq!(out.data[..4], [1.0, 3.0, 6.0, 10.0]);
        assert_eq!(out.data[4..], [10.0, 30.0, 60.0, 100.0]);
    }

    #[test]
    fn mean_sums_rows() {
        let def = men(2, 3);
        let mut tensors = interp::make_inputs(&def, 0);
        tensors[0].data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let out = interp::execute(&def, &tensors).unwrap();
        assert_eq!(out.data, vec![6.0, 15.0]);
    }

    #[test]
    fn dilated_conv_samples_every_other_pixel() {
        // 1-channel dilated conv with an identity-ish kernel: output pixel p
        // sums image[p], image[p+2], image[p+4] (dilation 2, 3 taps).
        let def = dil(1, 1, 1, 3, 3, 3, 1);
        let mut tensors = interp::make_inputs(&def, 0);
        tensors[0].data = (0..tensors[0].data.len()).map(|i| i as f64).collect();
        tensors[1].data = vec![1.0, 1.0, 1.0]; // 3x1 kernel of ones
        let out = interp::execute(&def, &tensors).unwrap();
        // image is 7x3 (p + 2*(r-1) = 7 rows); out[p,q] = img[p,q] +
        // img[p+2,q] + img[p+4,q].
        let w = 3usize;
        for p in 0..3usize {
            for q in 0..3usize {
                let expect =
                    (p * w + q) as f64 + ((p + 2) * w + q) as f64 + ((p + 4) * w + q) as f64;
                assert_eq!(out.data[p * 3 + q], expect, "at ({p},{q})");
            }
        }
    }

    #[test]
    fn grouped_conv_keeps_groups_independent() {
        let def = grp(1, 2, 1, 1, 2, 2, 1, 1);
        let tensors = interp::make_inputs(&def, 3);
        let out = interp::execute(&def, &tensors).unwrap();
        // 1x1 kernel, 1 channel per group: out = img * wt per group.
        let img = &tensors[0];
        let wt = &tensors[1];
        for g in 0..2usize {
            for px in 0..4usize {
                assert_eq!(out.data[g * 4 + px], img.data[g * 4 + px] * wt.data[g]);
            }
        }
    }
}

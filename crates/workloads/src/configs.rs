//! Operator configurations of the AMOS evaluation: the 113 shapes of §7.3
//! (7–8 per operator family, extracted from the cited real-world networks)
//! and the twelve ResNet-18 convolution layers C0–C11 of Table 5.

use crate::ops::{self, ConvShape};
use amos_ir::ComputeDef;

/// One benchmark configuration: an operator family, a label and the built
/// computation.
#[derive(Debug, Clone)]
pub struct OpConfig {
    /// Operator family (Table 6 name, e.g. `C2D`).
    pub family: &'static str,
    /// Human-readable shape label.
    pub label: String,
    /// The computation.
    pub def: ComputeDef,
}

fn cfg(family: &'static str, label: impl Into<String>, def: ComputeDef) -> OpConfig {
    OpConfig {
        family,
        label: label.into(),
        def,
    }
}

/// The ResNet-18 convolution layers C0–C11 exactly as paper Table 5
/// (batch 16).
pub fn resnet18_conv_layers(batch: i64) -> Vec<(String, ConvShape)> {
    let rows: [(i64, i64, i64, i64, i64, i64, i64); 12] = [
        // c, k, p, q, r, s, stride
        (3, 64, 112, 112, 7, 7, 2),  // C0
        (64, 64, 56, 56, 3, 3, 1),   // C1
        (64, 64, 56, 56, 1, 1, 1),   // C2
        (64, 128, 28, 28, 3, 3, 2),  // C3
        (64, 128, 28, 28, 1, 1, 2),  // C4
        (128, 128, 28, 28, 3, 3, 1), // C5
        (128, 256, 14, 14, 3, 3, 2), // C6
        (128, 256, 14, 14, 1, 1, 2), // C7
        (256, 256, 14, 14, 3, 3, 1), // C8
        (256, 512, 7, 7, 3, 3, 2),   // C9
        (256, 512, 7, 7, 1, 1, 2),   // C10
        (512, 512, 7, 7, 3, 3, 1),   // C11
    ];
    rows.iter()
        .enumerate()
        .map(|(idx, &(c, k, p, q, r, s, stride))| {
            (
                format!("C{idx}"),
                ConvShape {
                    n: batch,
                    c,
                    k,
                    p,
                    q,
                    r,
                    s,
                    stride,
                },
            )
        })
        .collect()
}

/// The 113 operator configurations of §7.3 (batch-1 single-operator
/// evaluation, Figure 6 a/b). Shapes are drawn from ResNet/MobileNet/
/// ShuffleNet/Bert/CapsNet/CondConv/WeightNet/DeepLab-style layers.
pub fn operator_configs() -> Vec<OpConfig> {
    let mut out = Vec::new();

    // GMV (8): transformer/LSTM linear layers at batch 1.
    for (i, k) in [
        (768, 768),
        (768, 3072),
        (3072, 768),
        (1024, 1024),
        (4096, 1024),
        (512, 2048),
        (256, 256),
        (1000, 512),
    ] {
        out.push(cfg("GMV", format!("{i}x{k}"), ops::gmv(i, k)));
    }

    // GMM (8): Bert-base/large projection shapes.
    for (m, n, k) in [
        (128, 768, 768),
        (128, 3072, 768),
        (128, 768, 3072),
        (512, 768, 768),
        (64, 1024, 1024),
        (256, 1024, 4096),
        (1024, 1024, 1024),
        (128, 64, 128),
    ] {
        out.push(cfg("GMM", format!("{m}x{n}x{k}"), ops::gmm(m, n, k)));
    }

    // C1D (8): WaveNet/TCN-style temporal convolutions.
    for (c, k, q, s) in [
        (64, 64, 256, 3),
        (128, 128, 128, 3),
        (64, 128, 512, 5),
        (256, 256, 64, 3),
        (32, 64, 1024, 3),
        (128, 256, 256, 5),
        (512, 512, 32, 3),
        (96, 96, 300, 7),
    ] {
        out.push(cfg(
            "C1D",
            format!("c{c}k{k}q{q}s{s}"),
            ops::c1d(1, c, k, q, s, 1),
        ));
    }

    // C2D (8): ResNet-18 layers at batch 1 (Table 5 shapes).
    for (label, mut sh) in resnet18_conv_layers(1).into_iter().take(8) {
        sh.n = 1;
        out.push(cfg("C2D", label, ops::c2d(sh)));
    }

    // C3D (7): video/medical 3D convolutions (C3D/I3D-style).
    for (c, k, d, p, q) in [
        (16, 32, 8, 28, 28),
        (32, 64, 8, 14, 14),
        (64, 64, 4, 14, 14),
        (64, 128, 4, 7, 7),
        (8, 16, 16, 56, 56),
        (128, 128, 2, 7, 7),
        (16, 16, 8, 14, 14),
    ] {
        out.push(cfg(
            "C3D",
            format!("c{c}k{k}d{d}p{p}"),
            ops::c3d(1, c, k, d, p, q, 3, 3, 3),
        ));
    }

    // T2D (7): decoder/upsampling layers (DCGAN/segmentation-style).
    for (c, k, h, w) in [
        (64, 32, 14, 14),
        (128, 64, 7, 7),
        (32, 16, 28, 28),
        (256, 128, 7, 7),
        (64, 64, 14, 14),
        (16, 8, 56, 56),
        (512, 256, 4, 4),
    ] {
        out.push(cfg(
            "T2D",
            format!("c{c}k{k}h{h}"),
            ops::t2d(1, c, k, h, w, 3, 3),
        ));
    }

    // GRP (7): ShuffleNet grouped 1x1/3x3 convolutions.
    for (g, c, k, p, r) in [
        (8, 30, 30, 28, 1),
        (8, 60, 60, 14, 1),
        (4, 34, 34, 28, 3),
        (8, 120, 120, 7, 1),
        (4, 68, 68, 14, 3),
        (2, 58, 58, 28, 3),
        (8, 12, 30, 56, 1),
    ] {
        out.push(cfg(
            "GRP",
            format!("g{g}c{c}k{k}p{p}"),
            ops::grp(1, g, c, k, p, p, r, r),
        ));
    }

    // DIL (7): DeepLab atrous convolutions.
    for (c, k, p) in [
        (64, 64, 56),
        (128, 128, 28),
        (256, 256, 14),
        (512, 512, 7),
        (64, 128, 28),
        (128, 256, 14),
        (32, 32, 56),
    ] {
        out.push(cfg(
            "DIL",
            format!("c{c}k{k}p{p}"),
            ops::dil(1, c, k, p, p, 3, 3),
        ));
    }

    // DEP (8): MobileNet-V1/V2 depthwise layers.
    for (c, p) in [
        (32, 112),
        (64, 112),
        (128, 56),
        (256, 28),
        (512, 14),
        (1024, 7),
        (96, 56),
        (144, 28),
    ] {
        out.push(cfg("DEP", format!("c{c}p{p}"), ops::dep(1, c, p, p, 3, 3)));
    }

    // CAP (7): capsule convolution layers (EM-routing CapsNet).
    for (c, k, p) in [
        (8, 16, 6),
        (16, 16, 6),
        (8, 32, 4),
        (16, 32, 4),
        (4, 8, 12),
        (32, 32, 2),
        (8, 8, 8),
    ] {
        out.push(cfg(
            "CAP",
            format!("c{c}k{k}p{p}"),
            ops::cap(1, c, k, p, p, 3, 3, 4),
        ));
    }

    // BCV (7): CondConv batched convolutions.
    for (n, c, k, p) in [
        (8, 16, 16, 28),
        (8, 32, 32, 14),
        (16, 16, 32, 14),
        (8, 64, 64, 7),
        (16, 32, 64, 7),
        (4, 16, 16, 56),
        (8, 8, 16, 28),
    ] {
        out.push(cfg(
            "BCV",
            format!("n{n}c{c}k{k}p{p}"),
            ops::bcv(n, c, k, p, p, 3, 3),
        ));
    }

    // GFC (7): WeightNet grouped fully-connected layers.
    for (g, k, c) in [
        (4, 64, 64),
        (8, 32, 64),
        (16, 16, 64),
        (4, 128, 128),
        (8, 64, 128),
        (2, 256, 256),
        (16, 32, 32),
    ] {
        out.push(cfg("GFC", format!("g{g}k{k}c{c}"), ops::gfc(16, g, k, c)));
    }

    // MEN (8): layer-norm row means over transformer hidden sizes.
    for (i, k) in [
        (128, 768),
        (512, 768),
        (128, 1024),
        (512, 1024),
        (64, 512),
        (256, 2048),
        (1024, 768),
        (32, 4096),
    ] {
        out.push(cfg("MEN", format!("{i}x{k}"), ops::men(i, k)));
    }

    // VAR (8): matching variances.
    for (i, k) in [
        (128, 768),
        (512, 768),
        (128, 1024),
        (512, 1024),
        (64, 512),
        (256, 2048),
        (1024, 768),
        (32, 4096),
    ] {
        out.push(cfg("VAR", format!("{i}x{k}"), ops::var(i, k)));
    }

    // SCN (8): scan/prefix-sum workloads (Dakkak et al.).
    for (i, j) in [
        (256, 256),
        (512, 256),
        (1024, 128),
        (128, 512),
        (2048, 64),
        (64, 1024),
        (512, 512),
        (256, 128),
    ] {
        out.push(cfg("SCN", format!("{i}x{j}"), ops::scn(i, j)));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_113_configurations() {
        // §7.1: "We test 113 different configurations (7-8 for each operator
        // on average)".
        assert_eq!(operator_configs().len(), 113);
    }

    #[test]
    fn every_family_has_7_or_8_configs() {
        let configs = operator_configs();
        for family in crate::ops::OPERATOR_NAMES {
            let n = configs.iter().filter(|c| c.family == family).count();
            assert!(
                (7..=8).contains(&n),
                "{family} has {n} configs, expected 7-8"
            );
        }
    }

    #[test]
    fn resnet18_table5_shapes() {
        let layers = resnet18_conv_layers(16);
        assert_eq!(layers.len(), 12);
        let (label, c0) = &layers[0];
        assert_eq!(label, "C0");
        assert_eq!((c0.c, c0.k, c0.p, c0.stride), (3, 64, 112, 2));
        let (_, c9) = &layers[9];
        assert_eq!((c9.c, c9.k, c9.p, c9.r, c9.stride), (256, 512, 7, 3, 2));
        assert!(layers.iter().all(|(_, sh)| sh.n == 16));
    }

    #[test]
    fn all_configs_build() {
        for c in operator_configs() {
            assert!(c.def.domain_size() > 0, "{} {} is empty", c.family, c.label);
        }
    }
}

//! Full-network evaluation (paper §7.4): composing per-operator costs into
//! end-to-end network latency under each system's mapping strategy.
//!
//! Tensor operators are mapped/tuned by the system under evaluation; scalar
//! glue operators (ReLU, pooling, softmax, ...) cost the same flat amount
//! for every system.

use crate::systems::{evaluate, System, SCALAR_OP_CYCLES};
use amos_hw::AcceleratorSpec;
use amos_workloads::networks::Network;
use std::collections::HashMap;

/// Per-(system, op, accelerator) evaluation cache. Exploration is
/// deterministic per key, so caching is purely a speedup.
#[derive(Debug, Default)]
pub struct NetworkEvaluator {
    cache: HashMap<(System, String, String), f64>,
}

/// Cost breakdown of one network under one system.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCost {
    /// Total cycles across all operator instances.
    pub total_cycles: f64,
    /// Cycles spent in operators mapped to the tensor unit.
    pub tensor_cycles: f64,
    /// Cycles spent on scalar fallback and glue operators.
    pub scalar_cycles: f64,
    /// Operator instances mapped to the tensor unit.
    pub mapped_ops: usize,
    /// Total operator instances.
    pub total_ops: usize,
}

impl NetworkEvaluator {
    /// New evaluator with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates a network end-to-end at the given batch size.
    pub fn evaluate(
        &mut self,
        system: System,
        net: &Network,
        batch: i64,
        accel: &AcceleratorSpec,
    ) -> NetworkCost {
        let mut cost = NetworkCost {
            total_cycles: 0.0,
            tensor_cycles: 0.0,
            scalar_cycles: 0.0,
            mapped_ops: 0,
            total_ops: net.total_ops(),
        };
        for grp in &net.groups {
            match grp.op.compute_def(batch) {
                Some(def) => {
                    let key = (
                        system,
                        format!("{}/{}/b{batch}", net.name, grp.name),
                        accel.name.clone(),
                    );
                    let seed = fnv(&key.1);
                    let sc = if let Some(&c) = self.cache.get(&key) {
                        // Re-derive mapped-ness cheaply from the cached cost
                        // by re-evaluating only on a miss; cache stores cost
                        // and the mapped flag is folded into the bucket
                        // below via a second cache entry.
                        crate::systems::SystemCost {
                            cycles: c,
                            mapped: self
                                .cache
                                .get(&(key.0, format!("{}#mapped", key.1), key.2.clone()))
                                .map(|&m| m > 0.5)
                                .unwrap_or(false),
                        }
                    } else {
                        let sc = evaluate(system, &def, accel, seed);
                        self.cache.insert(key.clone(), sc.cycles);
                        self.cache.insert(
                            (key.0, format!("{}#mapped", key.1), key.2.clone()),
                            if sc.mapped { 1.0 } else { 0.0 },
                        );
                        sc
                    };
                    let cycles = sc.cycles * grp.count as f64;
                    cost.total_cycles += cycles;
                    if sc.mapped {
                        cost.tensor_cycles += cycles;
                        cost.mapped_ops += grp.count;
                    } else {
                        cost.scalar_cycles += cycles;
                    }
                }
                None => {
                    let cycles = SCALAR_OP_CYCLES * grp.count as f64;
                    cost.total_cycles += cycles;
                    cost.scalar_cycles += cycles;
                }
            }
        }
        cost
    }

    /// Speedup of `a` over `b` on a network.
    pub fn speedup(
        &mut self,
        a: System,
        b: System,
        net: &Network,
        batch: i64,
        accel: &AcceleratorSpec,
    ) -> f64 {
        let ca = self.evaluate(a, net, batch, accel);
        let cb = self.evaluate(b, net, batch, accel);
        cb.total_cycles / ca.total_cycles
    }
}

fn fnv(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_workloads::networks;

    #[test]
    fn mi_lstm_matvec_layers_map_under_amos_but_not_libraries() {
        let mut ev = NetworkEvaluator::new();
        let accel = catalog::v100();
        let net = networks::mi_lstm();
        let amos = ev.evaluate(System::Amos, &net, 1, &accel);
        let torch = ev.evaluate(System::PyTorch, &net, 1, &accel);
        assert_eq!(torch.mapped_ops, 0, "libraries fall back on matvec");
        // AMOS compiles the linear layers (on the tensor unit or scalar,
        // whichever measures faster) and avoids the eager overhead.
        assert!(amos.total_cycles < torch.total_cycles);
    }

    #[test]
    fn cost_components_add_up() {
        let mut ev = NetworkEvaluator::new();
        let accel = catalog::v100();
        let net = networks::mobilenet_v1();
        let c = ev.evaluate(System::Amos, &net, 1, &accel);
        assert!((c.tensor_cycles + c.scalar_cycles - c.total_cycles).abs() < 1e-6);
        assert_eq!(c.total_ops, 30);
        assert!(c.mapped_ops <= c.total_ops);
    }

    #[test]
    fn cache_makes_repeat_evaluation_identical() {
        let mut ev = NetworkEvaluator::new();
        let accel = catalog::v100();
        let net = networks::mi_lstm();
        let a = ev.evaluate(System::Amos, &net, 1, &accel);
        let b = ev.evaluate(System::Amos, &net, 1, &accel);
        assert_eq!(a, b);
    }

    #[test]
    fn speedup_is_reciprocal() {
        let mut ev = NetworkEvaluator::new();
        let accel = catalog::v100();
        let net = networks::mi_lstm();
        let ab = ev.speedup(System::Amos, System::PyTorch, &net, 1, &accel);
        let ba = ev.speedup(System::PyTorch, System::Amos, &net, 1, &accel);
        assert!((ab * ba - 1.0).abs() < 1e-9);
        assert!(ab > 1.0);
    }
}

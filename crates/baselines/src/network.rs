//! Full-network evaluation (paper §7.4): composing per-operator costs into
//! end-to-end network latency under each system's mapping strategy.
//!
//! Tensor operators are mapped/tuned by the system under evaluation; scalar
//! glue operators (ReLU, pooling, softmax, ...) cost the same flat amount
//! for every system.

use crate::systems::{evaluate_opts, EvalOpts, System, SystemCost, SCALAR_OP_CYCLES};
use amos_core::{fnv1a, parallel_map, shape_fingerprint, CacheStats, Engine};
use amos_hw::AcceleratorSpec;
use amos_ir::ComputeDef;
use amos_workloads::networks::Network;
use std::collections::HashMap;

/// Network evaluator sharing one [`Engine`] (and thus one structural
/// exploration cache) across every exploration the underlying systems run.
/// Entries are keyed by workload *shape* (not layer name — ResNet repeats a
/// handful of conv shapes across its blocks, and those are explored once and
/// replayed everywhere else).
///
/// Exploration is deterministic per key, so caching is purely a speedup:
/// a warm evaluation returns bit-identical costs to a cold one. The same
/// holds for [`with_jobs`](Self::with_jobs): distinct layer shapes are
/// independent searches, so exploring them concurrently changes wall-clock
/// only — costs and cache statistics match the sequential path bit for bit.
#[derive(Debug, Default)]
pub struct NetworkEvaluator {
    engine: Engine,
    warm_start: bool,
    jobs: usize,
    depth: usize,
}

/// Cost breakdown of one network under one system.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCost {
    /// Total cycles across all operator instances.
    pub total_cycles: f64,
    /// Cycles spent in operators mapped to the tensor unit.
    pub tensor_cycles: f64,
    /// Cycles spent on scalar fallback and glue operators.
    pub scalar_cycles: f64,
    /// Operator instances mapped to the tensor unit.
    pub mapped_ops: usize,
    /// Total operator instances.
    pub total_ops: usize,
    /// Ground-truth simulations that failed across every exploration run for
    /// this network (counted once per distinct layer shape, not per
    /// instance). Deterministic and cache-stable.
    pub sim_failures: usize,
}

impl NetworkEvaluator {
    /// New evaluator with a cold engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// New evaluator over a caller-built engine — the hook for a
    /// disk-backed exploration cache
    /// ([`Engine::with_cache`](amos_core::Engine::with_cache)).
    pub fn with_engine(engine: Engine) -> Self {
        Self {
            engine,
            ..Self::default()
        }
    }

    /// Worker-thread budget for one [`evaluate`](Self::evaluate) call: `0`
    /// means all cores, `1` forces the sequential path. When the budget
    /// exceeds one, distinct layer shapes are explored concurrently as one
    /// flat wave on the shared worker pool; results are bit-identical at
    /// any setting.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Exploration-budget multiplier forwarded to every per-shape search
    /// (see [`EvalOpts::depth`]): `0`/`1` is the standard budget,
    /// larger values scale every search's generation count. Benchmarks use
    /// this to make cold exploration long enough to time.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Switches on the explorer's nearest-shape warm start for AMOS's
    /// searches: each distinct layer shape still pays one exploration, but
    /// misses seed their population from the best mapping of the nearest
    /// previously-explored shape of the same operator class (counted under
    /// [`CacheStats::warm_starts`]).
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Evaluates a network end-to-end at the given batch size.
    ///
    /// Runs in three passes: collect the distinct layer shapes (ResNet
    /// repeats a handful of conv shapes across its blocks), explore each
    /// distinct shape exactly once — concurrently when the thread budget
    /// allows — then replay the per-group accounting sequentially from the
    /// per-shape costs. The replay order is the group order, so the
    /// resulting [`NetworkCost`] is independent of which lane finished
    /// first.
    pub fn evaluate(
        &mut self,
        system: System,
        net: &Network,
        batch: i64,
        accel: &AcceleratorSpec,
    ) -> NetworkCost {
        // Pass 1: distinct shapes in first-appearance order, plus each
        // group's index into them (None for scalar glue operators).
        let mut distinct: Vec<(String, ComputeDef)> = Vec::new();
        let mut fp_index: HashMap<String, usize> = HashMap::new();
        let mut group_shape: Vec<Option<usize>> = Vec::with_capacity(net.groups.len());
        for grp in &net.groups {
            group_shape.push(grp.op.compute_def(batch).map(|def| {
                let fp = shape_fingerprint(&def);
                *fp_index.entry(fp.clone()).or_insert_with(|| {
                    distinct.push((fp, def));
                    distinct.len() - 1
                })
            }));
        }

        // Pass 2: one exploration per distinct shape. The seed derives from
        // the shape fingerprint, so two groups with the same layer shape run
        // the same search and the shared cache answers the second one.
        // Distinct shapes are independent searches with disjoint cache keys,
        // so exploring them concurrently cannot race on an entry; the warm
        // start is the one cross-shape dependency (later shapes seed from
        // earlier donors), so it keeps the sequential order.
        let jobs = self.effective_jobs();
        let engine = &self.engine;
        let shapes = &distinct;
        let depth = self.depth;
        let lane = |warm_start: bool, inner: Option<usize>| {
            move |i: usize| {
                let (fp, def) = &shapes[i];
                evaluate_opts(
                    engine,
                    system,
                    def,
                    accel,
                    fnv1a(fp),
                    EvalOpts {
                        warm_start,
                        shape_fp: Some(fp),
                        jobs: inner,
                        depth,
                    },
                )
            }
        };
        let shape_costs: Vec<SystemCost> = if jobs > 1 && distinct.len() > 1 && !self.warm_start {
            // One flat wave over the distinct shapes: every shape is a slot
            // on the shared worker pool and each per-shape search runs with
            // a serial inner budget. (An earlier revision split the budget
            // lanes x inner, carving the pool into starved sub-pools; the
            // flat wave keeps all threads busy as long as shapes remain,
            // which is what turns network-level parallelism into an actual
            // speedup.) Per-shape searches are jobs-invariant, so forcing
            // inner = 1 cannot change any cost.
            parallel_map(jobs, distinct.len(), lane(false, Some(1)))
        } else {
            (0..distinct.len())
                .map(lane(self.warm_start, None))
                .collect()
        };

        // Pass 3: sequential replay of the per-group accounting.
        let mut cost = NetworkCost {
            total_cycles: 0.0,
            tensor_cycles: 0.0,
            scalar_cycles: 0.0,
            mapped_ops: 0,
            total_ops: net.total_ops(),
            sim_failures: 0,
        };
        for (grp, shape) in net.groups.iter().zip(&group_shape) {
            match shape {
                Some(i) => {
                    let sc = shape_costs[*i];
                    let cycles = sc.cycles * grp.count as f64;
                    cost.total_cycles += cycles;
                    cost.sim_failures += sc.sim_failures;
                    if sc.mapped {
                        cost.tensor_cycles += cycles;
                        cost.mapped_ops += grp.count;
                    } else {
                        cost.scalar_cycles += cycles;
                    }
                }
                None => {
                    let cycles = SCALAR_OP_CYCLES * grp.count as f64;
                    cost.total_cycles += cycles;
                    cost.scalar_cycles += cycles;
                }
            }
        }
        cost
    }

    /// The thread budget with `0` resolved to [`amos_core::default_jobs`].
    fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            amos_core::default_jobs()
        } else {
            self.jobs
        }
    }

    /// Hit/miss counters of the shared engine's exploration cache. Hits
    /// appear as soon as a network repeats a layer shape (or two systems
    /// tune the same frozen mapping over the same shape).
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Speedup of `a` over `b` on a network.
    pub fn speedup(
        &mut self,
        a: System,
        b: System,
        net: &Network,
        batch: i64,
        accel: &AcceleratorSpec,
    ) -> f64 {
        let ca = self.evaluate(a, net, batch, accel);
        let cb = self.evaluate(b, net, batch, accel);
        cb.total_cycles / ca.total_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_workloads::networks;

    #[test]
    fn mi_lstm_matvec_layers_map_under_amos_but_not_libraries() {
        let mut ev = NetworkEvaluator::new();
        let accel = catalog::v100();
        let net = networks::mi_lstm();
        let amos = ev.evaluate(System::Amos, &net, 1, &accel);
        let torch = ev.evaluate(System::PyTorch, &net, 1, &accel);
        assert_eq!(torch.mapped_ops, 0, "libraries fall back on matvec");
        // AMOS compiles the linear layers (on the tensor unit or scalar,
        // whichever measures faster) and avoids the eager overhead.
        assert!(amos.total_cycles < torch.total_cycles);
    }

    #[test]
    fn cost_components_add_up() {
        let mut ev = NetworkEvaluator::new();
        let accel = catalog::v100();
        let net = networks::mobilenet_v1();
        let c = ev.evaluate(System::Amos, &net, 1, &accel);
        assert!((c.tensor_cycles + c.scalar_cycles - c.total_cycles).abs() < 1e-6);
        assert_eq!(c.total_ops, 30);
        assert!(c.mapped_ops <= c.total_ops);
    }

    #[test]
    fn cache_makes_repeat_evaluation_identical() {
        let mut ev = NetworkEvaluator::new();
        let accel = catalog::v100();
        let net = networks::mi_lstm();
        let a = ev.evaluate(System::Amos, &net, 1, &accel);
        let b = ev.evaluate(System::Amos, &net, 1, &accel);
        assert_eq!(a, b);
    }

    #[test]
    fn warm_start_seeds_later_shapes_of_the_same_class() {
        use amos_workloads::networks::{NetOp, Network, OpGroup};
        // Two matvec layers of different extents: same operator class, so
        // with warm start on the second exploration seeds from the first.
        let net = Network {
            name: "two-linears",
            groups: vec![
                OpGroup {
                    name: "fc1",
                    count: 1,
                    op: NetOp::MatVec { m: 256, k: 256 },
                },
                OpGroup {
                    name: "fc2",
                    count: 1,
                    op: NetOp::MatVec { m: 256, k: 512 },
                },
            ],
        };
        let accel = catalog::v100();
        let mut warm = NetworkEvaluator::new().with_warm_start(true);
        let w = warm.evaluate(System::Amos, &net, 1, &accel);
        let stats = warm.cache_stats();
        assert_eq!(stats.misses, 1, "first shape runs cold: {stats:?}");
        assert_eq!(
            stats.warm_starts, 1,
            "second shape finds a donor: {stats:?}"
        );
        // Warm start changes only the exploration trajectory, not what a
        // mapping costs: every reported cost is still a ground-truth
        // simulation, and mapped-op accounting is unaffected.
        let mut cold = NetworkEvaluator::new();
        let c = cold.evaluate(System::Amos, &net, 1, &accel);
        assert_eq!(cold.cache_stats().warm_starts, 0);
        assert_eq!(w.mapped_ops, c.mapped_ops);
        assert!(
            w.total_cycles <= c.total_cycles * 1.5,
            "{} vs {}",
            w.total_cycles,
            c.total_cycles
        );
    }

    #[test]
    fn speedup_is_reciprocal() {
        let mut ev = NetworkEvaluator::new();
        let accel = catalog::v100();
        let net = networks::mi_lstm();
        let ab = ev.speedup(System::Amos, System::PyTorch, &net, 1, &accel);
        let ba = ev.speedup(System::PyTorch, System::Amos, &net, 1, &accel);
        assert!((ab * ba - 1.0).abs() < 1e-9);
        assert!(ab > 1.0);
    }
}

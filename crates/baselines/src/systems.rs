//! Modeled baseline systems: the libraries and compilers AMOS is compared
//! against in §7 (PyTorch/cuDNN, XLA, AutoTVM, Ansor, UNIT, TVM templates,
//! AKG), each reduced to its mapping strategy per DESIGN.md §2:
//!
//! * libraries and template compilers use **one fixed mapping** when their
//!   pattern applies and fall back to the **scalar units** otherwise;
//! * schedule quality differs: tuning compilers search schedules (with the
//!   same tuner AMOS uses, mapping frozen — the §7.6 ablation protocol),
//!   libraries ship a single well-chosen heuristic schedule.

use crate::fixed::{fixed_mapping, FixedKind};
use crate::matcher::TemplateMatcher;
use amos_core::{Engine, ExplorerConfig};
use amos_hw::AcceleratorSpec;
use amos_ir::{ComputeDef, OpKind, TensorRole};
use amos_sim::{scalar_fallback_cycles, simulate, Schedule};

/// Fixed cost charged to every scalar/elementwise network op (ReLU, pooling,
/// softmax, ...) for all systems alike.
pub const SCALAR_OP_CYCLES: f64 = 5_000.0;

/// Extra per-operator cost of the eager library path (kernel launch,
/// dispatcher and framework overheads) paid when PyTorch/cuDNN fall back to
/// their generic scalar kernels. Compiled baselines do not pay it. This is
/// the dominant batch-1 effect behind the paper's large speedups on
/// operators libraries do not cover.
pub const EAGER_OVERHEAD_CYCLES: f64 = 20_000.0;

/// The evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// AMOS: full joint mapping + schedule exploration.
    Amos,
    /// PyTorch dispatching to cuDNN/cuBLAS kernels.
    PyTorch,
    /// cuDNN called directly (Figure 6c reference).
    CuDnn,
    /// AutoTVM with its stock (NHWC-only) tensor-core templates.
    AutoTvm,
    /// AutoTVM with a hand-added NCHW expert template (§7.3).
    AutoTvmExpert,
    /// Ansor: no tensor-core generation rules, excellent scalar tuning.
    Ansor,
    /// UNIT: fixed fuse-height-width template.
    Unit,
    /// TVM with hand-written expert templates (CPU VNNI / Figure 7e).
    Tvm,
    /// AKG: polyhedral; recognises only window-free patterns.
    Akg,
}

impl System {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            System::Amos => "AMOS",
            System::PyTorch => "PyTorch",
            System::CuDnn => "CuDNN",
            System::AutoTvm => "AutoTVM",
            System::AutoTvmExpert => "AutoTVM-Expert",
            System::Ansor => "Ansor",
            System::Unit => "UNIT",
            System::Tvm => "TVM",
            System::Akg => "AKG",
        }
    }
}

/// Cost of running one operator under one system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemCost {
    /// Simulated cycles.
    pub cycles: f64,
    /// Whether the operator ran on the spatial (tensor) unit.
    pub mapped: bool,
    /// Ground-truth simulations that failed during the exploration that
    /// produced this cost (0 for library kernels and scalar fallbacks).
    pub sim_failures: usize,
}

/// True when a hand-tuned library ships a tensor-unit kernel for this
/// operator: standard dense GEMM/batched-GEMM and plain (possibly strided,
/// dilated or transposed) convolutions. Grouped/depthwise/per-sample-weight
/// variants (an iteration touching all three tensors), constant-operand
/// reductions (mean/variance/scan) and exotic ranks fall back to scalar
/// units — the behaviour Table 2 and Figure 6 document.
pub fn library_tensor_supported(def: &ComputeDef) -> bool {
    if def.op() != OpKind::MulAcc || def.inputs().len() != 2 {
        return false;
    }
    if def.tensors().iter().any(|t| t.role == TensorRole::Constant) {
        return false;
    }
    let n = def.iters().len();
    if !(3..=9).contains(&n) {
        return false;
    }
    let x = def.access_matrix();
    for s in 0..n {
        if (0..x.rows()).all(|r| x[(r, s)]) {
            return false; // grouped/depthwise/batched-weight family
        }
    }
    def.iters().iter().any(|v| v.is_reduction())
}

/// Scalar-path efficiency factor per system (achieved fraction of the
/// fallback model's throughput).
fn scalar_factor(system: System) -> f64 {
    match system {
        System::Ansor => 1.0, // best-tuned CUDA-core code
        System::Tvm => 1.05,
        System::AutoTvm | System::AutoTvmExpert | System::Unit | System::Akg => 1.1,
        System::PyTorch | System::CuDnn => 1.2, // eager kernel overheads
        System::Amos => 1.0,
    }
}

fn scalar_cost(system: System, def: &ComputeDef, accel: &AcceleratorSpec) -> SystemCost {
    SystemCost {
        cycles: scalar_fallback_cycles(def, accel) * scalar_factor(system),
        mapped: false,
        sim_failures: 0,
    }
}

/// Exploration budget used for tuning systems; small but sufficient for the
/// simulator-based ground truth.
pub fn tuning_budget(seed: u64) -> ExplorerConfig {
    ExplorerConfig {
        population: 16,
        generations: 4,
        survivors: 4,
        measure_top: 3,
        seed,
        jobs: 0,
        ..Default::default()
    }
}

fn explore_fixed(
    engine: &Engine,
    def: &ComputeDef,
    accel: &AcceleratorSpec,
    kind: FixedKind,
    seed: u64,
    opts: EvalOpts<'_>,
) -> Option<SystemCost> {
    let mapping = fixed_mapping(def, &accel.intrinsic, kind)?;
    let mut config = tuning_budget(seed);
    if let Some(jobs) = opts.jobs {
        config.jobs = jobs;
    }
    config.generations *= opts.depth.max(1);
    // The fixed kind keys the cache entry: Im2col and FuseHw freeze
    // different mappings over the same shape.
    engine
        .explore_fixed_shaped(
            &format!("fixed:{kind:?}"),
            config,
            def,
            accel,
            vec![mapping],
            opts.shape_fp,
        )
        .ok()
        .map(|r| SystemCost {
            cycles: r.cycles(),
            mapped: true,
            sim_failures: r.sim_failures,
        })
}

fn library_kernel(def: &ComputeDef, accel: &AcceleratorSpec) -> Option<SystemCost> {
    if !library_tensor_supported(def) {
        return None;
    }
    let mapping = fixed_mapping(def, &accel.intrinsic, FixedKind::Im2col)?;
    let prog = mapping.lower(def, &accel.intrinsic).ok()?;
    let schedule = Schedule::balanced(&prog, accel);
    simulate(&prog, &schedule, accel).ok().map(|r| SystemCost {
        cycles: r.cycles,
        mapped: true,
        sim_failures: 0,
    })
}

/// True when AKG's polyhedral pattern recognition maps the operator: it
/// handles window-free tensor contractions only (GEMM, 1x1 convolutions —
/// every compound index expression must slide over at most one non-unit
/// iteration).
pub fn akg_supported(def: &ComputeDef) -> bool {
    if !library_tensor_supported(def) {
        return false;
    }
    def.all_accesses().iter().all(|acc| {
        acc.indices.iter().all(|e| {
            let live = e
                .vars()
                .into_iter()
                .filter(|v| def.iter_var(*v).extent > 1)
                .count();
            live <= 1
        })
    })
}

/// Evaluates an operator under a system on an accelerator, through a
/// throwaway [`Engine`]. Results are deterministic, so this equals
/// [`evaluate_with`] on a cold engine.
pub fn evaluate(
    system: System,
    def: &ComputeDef,
    accel: &AcceleratorSpec,
    seed: u64,
) -> SystemCost {
    evaluate_with(&Engine::new(), system, def, accel, seed)
}

/// [`evaluate`] through a shared [`Engine`]: every exploration run (AMOS's
/// full search and the baselines' frozen-mapping tuning alike) is memoised
/// in the engine's cache by workload shape, so network sweeps with repeated
/// layer shapes pay for each distinct shape once.
pub fn evaluate_with(
    engine: &Engine,
    system: System,
    def: &ComputeDef,
    accel: &AcceleratorSpec,
    seed: u64,
) -> SystemCost {
    evaluate_with_warm(engine, system, def, accel, seed, false)
}

/// [`evaluate_with`] with the explorer's nearest-shape warm start switched
/// on for AMOS's searches (the baselines' frozen-mapping tuning is
/// unaffected): each cache miss seeds its population from the best mapping
/// of the nearest previously-explored shape of the same operator class.
pub fn evaluate_with_warm(
    engine: &Engine,
    system: System,
    def: &ComputeDef,
    accel: &AcceleratorSpec,
    seed: u64,
    warm_start: bool,
) -> SystemCost {
    evaluate_opts(
        engine,
        system,
        def,
        accel,
        seed,
        EvalOpts {
            warm_start,
            ..EvalOpts::default()
        },
    )
}

/// Per-call knobs of [`evaluate_opts`], all defaulting to the
/// [`evaluate_with`] behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOpts<'a> {
    /// Switch on the explorer's nearest-shape warm start for AMOS's
    /// searches (see [`evaluate_with_warm`]).
    pub warm_start: bool,
    /// Precomputed `amos_core::shape_fingerprint(def)`, reused for the
    /// cache keys instead of being recomputed per lookup. **Must** match
    /// `def` when given.
    pub shape_fp: Option<&'a str>,
    /// Worker-thread count for the explorations this evaluation runs
    /// (`Some(1)` forces serial). `None` uses each config's default (all
    /// cores). Exploration results are bit-identical at any thread count,
    /// so this only affects wall-clock — network evaluation uses it to
    /// explore distinct layer shapes concurrently with serial inner
    /// searches.
    pub jobs: Option<usize>,
    /// Exploration-budget multiplier: the generation count of every search
    /// this evaluation runs (AMOS's full search and the baselines'
    /// frozen-mapping tuning alike) is scaled by `depth.max(1)`. `0` and
    /// `1` are the standard budget; benchmarks raise it to make cold
    /// exploration long enough to measure (`record_network`). Results stay
    /// deterministic per depth, and depth changes the cache fingerprint
    /// (the generation count is part of it), so different depths never
    /// answer each other's lookups.
    pub depth: usize,
}

/// [`evaluate_with`] with every per-call knob explicit: warm start, a
/// precomputed shape fingerprint and a worker-thread override.
pub fn evaluate_opts(
    engine: &Engine,
    system: System,
    def: &ComputeDef,
    accel: &AcceleratorSpec,
    seed: u64,
    opts: EvalOpts<'_>,
) -> SystemCost {
    let warm_start = opts.warm_start;
    match system {
        System::Amos => {
            // AMOS searches the full mapping space (every unit of a
            // heterogeneous device), so it gets a deeper budget than the
            // frozen-mapping baselines — mirroring the paper's setup where
            // AMOS tunes thousands of trials.
            let config = ExplorerConfig {
                population: 32,
                generations: 8 * opts.depth.max(1),
                survivors: 8,
                measure_top: 6,
                seed,
                jobs: opts.jobs.unwrap_or(0),
                warm_start,
                ..Default::default()
            };
            // AMOS measures candidates on the ground truth, so it also knows
            // when the scalar units beat the best tensor mapping (e.g. tiny
            // depthwise layers whose padded lanes waste the tensor unit) and
            // keeps the faster backend.
            let scalar = scalar_cost(system, def, accel);
            let result = engine.explore_op_shaped(config, def, accel, opts.shape_fp);
            match result {
                Ok(r) if r.cycles() <= scalar.cycles => SystemCost {
                    cycles: r.cycles(),
                    mapped: true,
                    sim_failures: r.sim_failures,
                },
                // The exploration still ran (and may have hit infeasible
                // candidates) even when the scalar backend wins.
                Ok(r) => SystemCost {
                    sim_failures: r.sim_failures,
                    ..scalar
                },
                Err(_) => scalar,
            }
        }
        System::PyTorch | System::CuDnn => library_kernel(def, accel).unwrap_or_else(|| {
            let mut c = scalar_cost(system, def, accel);
            c.cycles += EAGER_OVERHEAD_CYCLES;
            c
        }),
        System::AutoTvm => {
            // Stock templates: NHWC convolutions and GEMM only.
            let matcher = TemplateMatcher::new();
            if matcher.matches(def) {
                explore_fixed(engine, def, accel, FixedKind::Im2col, seed, opts)
                    .unwrap_or_else(|| scalar_cost(system, def, accel))
            } else {
                scalar_cost(system, def, accel)
            }
        }
        System::AutoTvmExpert | System::Tvm => {
            // Expert template: the library pattern set, fixed im2col mapping,
            // full schedule tuning.
            if library_tensor_supported(def) {
                explore_fixed(engine, def, accel, FixedKind::Im2col, seed, opts)
                    .unwrap_or_else(|| scalar_cost(system, def, accel))
            } else {
                scalar_cost(system, def, accel)
            }
        }
        System::Ansor => scalar_cost(system, def, accel),
        System::Unit => {
            if library_tensor_supported(def) {
                explore_fixed(engine, def, accel, FixedKind::FuseHw, seed, opts)
                    .unwrap_or_else(|| scalar_cost(system, def, accel))
            } else {
                scalar_cost(system, def, accel)
            }
        }
        System::Akg => {
            if akg_supported(def) {
                explore_fixed(engine, def, accel, FixedKind::Im2col, seed, opts)
                    .unwrap_or_else(|| scalar_cost(system, def, accel))
            } else {
                scalar_cost(system, def, accel)
            }
        }
    }
}

/// Geometric mean of a slice of positive ratios.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_workloads::ops::{self, ConvShape};

    fn c2d_small() -> ComputeDef {
        ops::c2d(ConvShape {
            n: 1,
            c: 64,
            k: 64,
            p: 28,
            q: 28,
            r: 3,
            s: 3,
            stride: 1,
        })
    }

    #[test]
    fn library_support_classification() {
        assert!(library_tensor_supported(&ops::gmm(64, 64, 64)));
        assert!(library_tensor_supported(&c2d_small()));
        assert!(library_tensor_supported(&ops::c3d(
            1, 8, 8, 4, 6, 6, 3, 3, 3
        )));
        // Grouped/depthwise/batched-weight/constant-operand families do not
        // get tensor-unit library kernels.
        assert!(!library_tensor_supported(&ops::dep(1, 32, 14, 14, 3, 3)));
        assert!(!library_tensor_supported(&ops::grp(1, 4, 8, 8, 7, 7, 3, 3)));
        assert!(!library_tensor_supported(&ops::bcv(4, 8, 8, 7, 7, 3, 3)));
        assert!(!library_tensor_supported(&ops::gfc(8, 4, 16, 16)));
        assert!(!library_tensor_supported(&ops::men(64, 64)));
        assert!(!library_tensor_supported(&ops::scn(32, 32)));
        assert!(!library_tensor_supported(&ops::gmv(64, 64)));
    }

    #[test]
    fn akg_maps_only_window_free_patterns() {
        assert!(akg_supported(&ops::gmm(64, 64, 64)));
        let onebyone = ops::c2d(ConvShape {
            n: 1,
            c: 64,
            k: 64,
            p: 28,
            q: 28,
            r: 1,
            s: 1,
            stride: 1,
        });
        assert!(akg_supported(&onebyone));
        assert!(!akg_supported(&c2d_small()));
    }

    #[test]
    fn amos_beats_the_scalar_fallback_on_depthwise() {
        // The ShuffleNet/MobileNet story: libraries fall back to scalar
        // units on depthwise convolution, AMOS maps it.
        let def = ops::dep(1, 128, 28, 28, 3, 3);
        let accel = catalog::v100();
        let amos = evaluate(System::Amos, &def, &accel, 1);
        let pytorch = evaluate(System::PyTorch, &def, &accel, 1);
        assert!(!pytorch.mapped);
        // AMOS picks the faster backend (tensor mapping or compiled scalar);
        // either way it avoids the eager library overhead and wins.
        assert!(
            amos.cycles < pytorch.cycles,
            "AMOS {} vs PyTorch {}",
            amos.cycles,
            pytorch.cycles
        );
    }

    #[test]
    fn amos_is_at_least_competitive_on_gemm() {
        let def = ops::gmm(1024, 1024, 1024);
        let accel = catalog::a100();
        let amos = evaluate(System::Amos, &def, &accel, 2);
        let lib = evaluate(System::PyTorch, &def, &accel, 2);
        assert!(amos.mapped && lib.mapped);
        // Libraries are excellent at GEMM; AMOS should be within ~2x either
        // direction (the paper reports 0.91x-1.1x).
        let ratio = lib.cycles / amos.cycles;
        assert!(ratio > 0.5 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn unit_is_slower_than_amos_on_batched_conv2d() {
        // UNIT ignores the batch dimension -> low parallelism (Figure 6c).
        let def = ops::c2d(ConvShape {
            n: 16,
            c: 64,
            k: 64,
            p: 14,
            q: 14,
            r: 3,
            s: 3,
            stride: 1,
        });
        let accel = catalog::a100();
        let amos = evaluate(System::Amos, &def, &accel, 3);
        let unit = evaluate(System::Unit, &def, &accel, 3);
        assert!(amos.cycles <= unit.cycles);
    }

    #[test]
    fn geomean_behaviour() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn system_names() {
        assert_eq!(System::Amos.name(), "AMOS");
        assert_eq!(System::AutoTvmExpert.name(), "AutoTVM-Expert");
    }
}

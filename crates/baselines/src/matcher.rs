//! The XLA-style template matcher (paper §2.3, Table 2).
//!
//! Template compilers map an operator to the tensor unit only when it
//! *exactly* matches a hand-written pattern; the paper profiles XLA and finds
//! that layout changes, strides and operator variants all break the match.
//! This matcher implements those fragile rules structurally:
//!
//! * a canonical dense GEMM (exactly two spatial + one reduction iteration,
//!   plain 2-D accesses, tensor-core-sized extents), or
//! * a standard 2D convolution in NHWC layout with stride 1 and dilation 1
//!   (the pattern cuDNN's tensor-core kernels expect).
//!
//! Everything else — matrix-vector products (batch-1 linear layers),
//! batched matmuls, NCHW or strided convolutions, grouped/depthwise/dilated
//! variants — falls through to the scalar units, exactly the failures
//! Table 2 reports.

use amos_ir::{ComputeDef, Expr, OpKind};

/// The fragile pattern matcher used by the XLA-like baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct TemplateMatcher;

impl TemplateMatcher {
    /// New matcher.
    pub fn new() -> Self {
        TemplateMatcher
    }

    /// True when one of the hand-written templates matches the operator.
    pub fn matches(&self, def: &ComputeDef) -> bool {
        self.matches_gemm(def) || self.matches_conv_nhwc_unit_stride(def)
    }

    /// Canonical dense GEMM: `out[i, j] += a[i, k] * b[k, j]`-shaped.
    pub fn matches_gemm(&self, def: &ComputeDef) -> bool {
        if def.op() != OpKind::MulAcc || def.inputs().len() != 2 {
            return false;
        }
        let spatial = def.iters().iter().filter(|v| v.is_spatial()).count();
        let reduction = def.iters().iter().filter(|v| v.is_reduction()).count();
        if spatial != 2 || reduction != 1 || def.iters().len() != 3 {
            return false;
        }
        // Plain single-variable indices on 2-D tensors everywhere.
        for acc in def.all_accesses() {
            if acc.indices.len() != 2 {
                return false;
            }
            for e in &acc.indices {
                if !matches!(e, Expr::Var(_)) {
                    return false;
                }
            }
        }
        // Tensor-core-aligned extents (the template's minimum tile).
        def.iters().iter().all(|v| v.extent >= 16)
    }

    /// Standard 2D convolution, channels-last, stride 1, dilation 1.
    pub fn matches_conv_nhwc_unit_stride(&self, def: &ComputeDef) -> bool {
        if def.op() != OpKind::MulAcc || def.inputs().len() != 2 || def.iters().len() != 7 {
            return false;
        }
        if !def.predicates().is_empty() {
            return false; // transposed/strided scatter forms
        }
        let spatial = def.iters().iter().filter(|v| v.is_spatial()).count();
        if spatial != 4 {
            return false;
        }
        // No iteration may appear in all three tensors (grouped variants).
        let x = def.access_matrix();
        for s in 0..def.iters().len() {
            if (0..x.rows()).all(|r| x[(r, s)]) {
                return false;
            }
        }
        // The image operand: 4-D, with its *last* dimension a lone reduction
        // iteration (channels-last) and unit-stride window expressions.
        let image = &def.inputs()[0];
        if image.indices.len() != 4 {
            return false;
        }
        let last = image.indices.last().expect("4-D access has a last index");
        let channels_last = match last {
            Expr::Var(id) => def.iter_var(*id).is_reduction(),
            _ => false,
        };
        if !channels_last {
            return false;
        }
        // Window expressions must be exactly `p + r` (stride and dilation 1).
        let num = def.iters().len();
        for e in &image.indices {
            let Some((coeffs, _)) = e.affine_coefficients(num) else {
                return false;
            };
            if coeffs.iter().any(|&c| c != 0 && c != 1) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_workloads::networks::{batch_matmul, c2d_nhwc};
    use amos_workloads::ops::{self, ConvShape};

    fn shape(stride: i64) -> ConvShape {
        ConvShape {
            n: 1,
            c: 16,
            k: 16,
            p: 14,
            q: 14,
            r: 3,
            s: 3,
            stride,
        }
    }

    #[test]
    fn gemm_matches() {
        assert!(TemplateMatcher::new().matches(&ops::gmm(128, 768, 768)));
    }

    #[test]
    fn small_gemm_fails_alignment() {
        assert!(!TemplateMatcher::new().matches(&ops::gmm(8, 768, 768)));
    }

    #[test]
    fn matvec_does_not_match() {
        // The MI-LSTM failure of Table 2: batch-1 linear layers.
        assert!(!TemplateMatcher::new().matches(&ops::gmv(1024, 1024)));
    }

    #[test]
    fn batched_matmul_does_not_match() {
        assert!(!TemplateMatcher::new().matches(&batch_matmul(12, 128, 128, 64)));
    }

    #[test]
    fn nhwc_stride1_conv_matches() {
        assert!(TemplateMatcher::new().matches(&c2d_nhwc(shape(1))));
    }

    #[test]
    fn nchw_conv_does_not_match() {
        // The layout fragility the paper demonstrates.
        assert!(!TemplateMatcher::new().matches(&ops::c2d(shape(1))));
    }

    #[test]
    fn strided_conv_does_not_match() {
        assert!(!TemplateMatcher::new().matches(&c2d_nhwc(shape(2))));
    }

    #[test]
    fn depthwise_grouped_dilated_do_not_match() {
        let m = TemplateMatcher::new();
        assert!(!m.matches(&ops::dep(1, 32, 14, 14, 3, 3)));
        assert!(!m.matches(&ops::grp(1, 4, 8, 8, 14, 14, 3, 3)));
        assert!(!m.matches(&ops::dil(1, 16, 16, 14, 14, 3, 3)));
        assert!(!m.matches(&ops::t2d(1, 8, 8, 7, 7, 3, 3)));
    }
}

//! # amos-baselines — the systems AMOS is compared against
//!
//! Modeled baselines reproducing the comparison points of the AMOS
//! evaluation (§7): the XLA-style [`TemplateMatcher`] behind Table 2, the
//! fixed-mapping strategies of the §7.6 ablation ([`fixed_mapping`]), and
//! the per-system cost models ([`systems::evaluate`]) for
//! PyTorch/cuDNN/AutoTVM/Ansor/UNIT/TVM/AKG.
//!
//! See DESIGN.md §2 for what each baseline substitutes and why the
//! substitution preserves the paper's comparisons.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fixed;
mod matcher;

pub mod network;
pub mod systems;

pub use fixed::{fixed_mapping, FixedKind};
pub use matcher::TemplateMatcher;
pub use network::{NetworkCost, NetworkEvaluator};
pub use systems::{
    akg_supported, evaluate, evaluate_opts, evaluate_with, evaluate_with_warm, geomean,
    library_tensor_supported, EvalOpts, System, SystemCost, SCALAR_OP_CYCLES,
};

//! Fixed-mapping strategies (paper §7.6): the single mappings that
//! hand-tuned libraries and template compilers hard-code.
//!
//! * **im2col** (AMOS-fixM1, the cuDNN strategy): fuse *every* fusible
//!   spatial iteration into the first spatial axis and every fusible
//!   reduction iteration into the reduction axis — the maximal mapping.
//! * **fuse_hw** (AMOS-fixM2, the UNIT strategy): fuse only the height and
//!   width iterations (drop the batch-like leading spatial candidate) and
//!   only the non-window reduction iterations (channels).

use amos_core::{Mapping, MappingGenerator};
use amos_hw::Intrinsic;
use amos_ir::ComputeDef;

/// The two fixed strategies of the §7.6 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedKind {
    /// cuDNN-style maximal im2col mapping (fixM1).
    Im2col,
    /// UNIT-style height/width-only mapping (fixM2).
    FuseHw,
}

/// Selects the fixed mapping of the given kind from the valid-mapping space,
/// or `None` when the operator has no valid mapping at all.
pub fn fixed_mapping(def: &ComputeDef, intrinsic: &Intrinsic, kind: FixedKind) -> Option<Mapping> {
    let all = MappingGenerator::new().enumerate(def, intrinsic);
    if all.is_empty() {
        return None;
    }
    match kind {
        FixedKind::Im2col => {
            // The maximal mapping: most iterations fused; ties broken by the
            // deterministic enumeration order.
            all.iter().max_by_key(|m| m.num_mapped()).cloned()
        }
        FixedKind::FuseHw => {
            let compound = def.compound_participants();
            // Prefer: leading spatial candidate (the batch-like dimension)
            // unmapped, and no *reduction-side* window iterations fused.
            // Fall back to the minimal mapping.
            let batch_like = def.iter_ids().find(|&id| def.iter_var(id).is_spatial());
            all.iter()
                .filter(|m| {
                    let mapped = m.mapped_iters();
                    let no_batch = batch_like.map(|b| !mapped.contains(&b)).unwrap_or(true);
                    let no_window = mapped
                        .iter()
                        .all(|s| def.iter_var(*s).is_spatial() || !compound.contains(s));
                    no_batch && no_window
                })
                .max_by_key(|m| m.num_mapped())
                .cloned()
                .or_else(|| all.iter().min_by_key(|m| m.num_mapped()).cloned())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_workloads::ops::{self, ConvShape};

    fn c2d() -> ComputeDef {
        ops::c2d(ConvShape {
            n: 4,
            c: 32,
            k: 32,
            p: 14,
            q: 14,
            r: 3,
            s: 3,
            stride: 1,
        })
    }

    #[test]
    fn im2col_is_the_maximal_mapping() {
        let def = c2d();
        let intr = catalog::wmma_16x16x16();
        let m = fixed_mapping(&def, &intr, FixedKind::Im2col).unwrap();
        // n, p, q -> i1; k -> i2; c, r, s -> r1: all 7 iterations fused.
        assert_eq!(m.num_mapped(), 7);
        assert_eq!(
            m.describe(&def, &intr),
            "i1 <- {n, p, q}, i2 <- {k}, r1 <- {c, r, s}"
        );
    }

    #[test]
    fn fuse_hw_drops_batch_and_window_iters() {
        let def = c2d();
        let intr = catalog::wmma_16x16x16();
        let m = fixed_mapping(&def, &intr, FixedKind::FuseHw).unwrap();
        assert_eq!(
            m.describe(&def, &intr),
            "i1 <- {p, q}, i2 <- {k}, r1 <- {c}"
        );
    }

    #[test]
    fn unmappable_op_returns_none() {
        let mut b = amos_ir::ComputeBuilder::new("sum");
        let i = b.spatial("i", 4);
        let k = b.reduce("k", 4);
        let a = b.input("a", &[4, 4], amos_ir::DType::F32);
        let o = b.output("o", &[4], amos_ir::DType::F32);
        b.add_acc(o.at([i]), a.at([i, k]));
        let def = b.finish().unwrap();
        assert!(fixed_mapping(&def, &catalog::wmma_16x16x16(), FixedKind::Im2col).is_none());
    }

    #[test]
    fn gemm_fixed_mappings_coincide() {
        // GEMM has a single mapping, so both strategies return it.
        let def = ops::gmm(64, 64, 64);
        let intr = catalog::wmma_16x16x16();
        let a = fixed_mapping(&def, &intr, FixedKind::Im2col).unwrap();
        let b = fixed_mapping(&def, &intr, FixedKind::FuseHw).unwrap();
        assert_eq!(a, b);
    }
}

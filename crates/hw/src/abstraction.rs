//! Hardware **compute abstraction** (paper Def 4.1).
//!
//! An opaque compute intrinsic is rewritten as an equivalent scalar
//! statement
//!
//! ```text
//! Dst[ĩ] = F(Src1[j̃₁], ..., SrcM[j̃M])   s.t.  A·ĩ + Σ Bm·j̃m + C < 0
//! ```
//!
//! The intrinsic iterations `ĩ, j̃m` range over the intrinsic's fixed problem
//! size; each operand is indexed by affine expressions over those iterations.

use amos_ir::{BinMatrix, Expr, IterId, IterKind, OpKind};
use std::fmt;

/// One iteration axis of an intrinsic (e.g. `i1`, `i2`, `r1` of `mma_sync`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntrinsicIter {
    /// Display name.
    pub name: String,
    /// Problem-size extent of this axis (from the constraint `C`).
    pub extent: i64,
    /// Spatial (appears in `Dst`) or reduction.
    pub kind: IterKind,
}

/// Reference to an operand slot of an intrinsic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandRef {
    /// `Src{m}` (0-based).
    Src(usize),
    /// The destination.
    Dst,
}

impl fmt::Display for OperandRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperandRef::Src(m) => write!(f, "Src{}", m + 1),
            OperandRef::Dst => write!(f, "Dst"),
        }
    }
}

/// Shape and indexing of one intrinsic operand.
///
/// `dims[d]` is an affine expression over intrinsic iterations (their
/// [`IterId`]s index [`ComputeAbstraction::iters`]). Most intrinsics use a
/// single iteration per dimension (`Src1[i1, r1]`); window-style units such
/// as a convolution engine use compound dimensions (`Src1[r1, i2 + r2]`).
#[derive(Debug, Clone, PartialEq)]
pub struct OperandSpec {
    /// Operand name for display (`Src1`, `a_frag`, ...).
    pub name: String,
    /// Affine index expression per operand dimension.
    pub dims: Vec<Expr>,
}

impl OperandSpec {
    /// Creates an operand indexed by single iterations per dimension.
    pub fn simple(name: impl Into<String>, iters: &[usize]) -> Self {
        OperandSpec {
            name: name.into(),
            dims: iters.iter().map(|&i| Expr::Var(IterId(i as u32))).collect(),
        }
    }

    /// Creates a zero-dimensional (scalar) operand.
    pub fn scalar(name: impl Into<String>) -> Self {
        OperandSpec {
            name: name.into(),
            dims: Vec::new(),
        }
    }
}

/// The scalar-format description of a compute intrinsic (Def 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeAbstraction {
    iters: Vec<IntrinsicIter>,
    srcs: Vec<OperandSpec>,
    dst: OperandSpec,
    op: OpKind,
}

impl ComputeAbstraction {
    /// Builds and validates a compute abstraction.
    ///
    /// # Panics
    ///
    /// Panics if an operand references an unknown iteration, if an index
    /// expression is not affine, or if the operand count does not match the
    /// arity of `op`. Abstractions are authored in the intrinsic catalog, so
    /// violations are programming errors.
    pub fn new(
        iters: Vec<IntrinsicIter>,
        srcs: Vec<OperandSpec>,
        dst: OperandSpec,
        op: OpKind,
    ) -> Self {
        assert_eq!(
            srcs.len(),
            op.arity(),
            "operand count must match the arity of {op}"
        );
        for operand in srcs.iter().chain(std::iter::once(&dst)) {
            for e in &operand.dims {
                assert!(e.is_affine(), "operand index {e:?} must be affine");
                for v in e.vars() {
                    assert!(
                        v.index() < iters.len(),
                        "operand `{}` references unknown intrinsic iteration {v}",
                        operand.name
                    );
                }
            }
        }
        for it in &iters {
            assert!(it.extent > 0, "intrinsic iteration extent must be positive");
        }
        ComputeAbstraction {
            iters,
            srcs,
            dst,
            op,
        }
    }

    /// The intrinsic iterations in declaration order.
    pub fn iters(&self) -> &[IntrinsicIter] {
        &self.iters
    }

    /// Source operand specifications.
    pub fn srcs(&self) -> &[OperandSpec] {
        &self.srcs
    }

    /// Destination operand specification.
    pub fn dst(&self) -> &OperandSpec {
        &self.dst
    }

    /// The arithmetic operation `F`.
    pub fn op(&self) -> OpKind {
        self.op
    }

    /// Number of source operands.
    pub fn num_srcs(&self) -> usize {
        self.srcs.len()
    }

    /// Looks up an operand specification.
    pub fn operand(&self, r: OperandRef) -> &OperandSpec {
        match r {
            OperandRef::Src(m) => &self.srcs[m],
            OperandRef::Dst => &self.dst,
        }
    }

    /// All operand slots: sources in order, then the destination. This is the
    /// row order of the intrinsic access matrix `Z`.
    pub fn operand_refs(&self) -> Vec<OperandRef> {
        (0..self.srcs.len())
            .map(OperandRef::Src)
            .chain(std::iter::once(OperandRef::Dst))
            .collect()
    }

    /// The intrinsic access matrix `Z` (paper Fig 4): rows are operand slots
    /// (`Src1..SrcM, Dst`), columns are intrinsic iterations.
    pub fn access_matrix(&self) -> BinMatrix {
        let refs = self.operand_refs();
        let mut z = BinMatrix::zeros(refs.len(), self.iters.len());
        for (row, r) in refs.iter().enumerate() {
            for e in &self.operand(*r).dims {
                for v in e.vars() {
                    z.set(row, v.index(), true);
                }
            }
        }
        z
    }

    /// Problem size: the extent of every intrinsic iteration.
    pub fn problem_size(&self) -> Vec<i64> {
        self.iters.iter().map(|it| it.extent).collect()
    }

    /// Total scalar multiply-accumulate operations performed per intrinsic
    /// call (the product of the problem size).
    pub fn scalar_ops(&self) -> i64 {
        self.problem_size().iter().product()
    }

    /// The register-fragment shape of one operand: the value range of each
    /// dimension expression over the intrinsic problem size.
    ///
    /// For affine expressions with non-negative coefficients the extent of a
    /// dimension is `expr(max) - expr(min) + 1`.
    pub fn fragment_shape(&self, r: OperandRef) -> Vec<i64> {
        self.operand(r)
            .dims
            .iter()
            .map(|e| {
                let (coeffs, _) = e
                    .affine_coefficients(self.iters.len())
                    .expect("operand indices validated affine");
                let mut lo = 0i64;
                let mut hi = 0i64;
                for (i, &c) in coeffs.iter().enumerate() {
                    let span = c * (self.iters[i].extent - 1);
                    if span >= 0 {
                        hi += span;
                    } else {
                        lo += span;
                    }
                }
                hi - lo + 1
            })
            .collect()
    }

    /// Elements in one operand fragment.
    pub fn fragment_len(&self, r: OperandRef) -> i64 {
        self.fragment_shape(r).iter().product()
    }

    /// The constraint system of Def 4.1 in matrix form: `(A, B, C)` such that
    /// `A·ĩ + Σ Bm·j̃m + C < 0` bounds the iteration ranges.
    ///
    /// Rows follow the iteration order; `A` has one column per *spatial*
    /// iteration, `B` one column per *reduction* iteration, and `C` is the
    /// negated extent vector — matching the layout of the paper's Equation 1.
    pub fn constraint_matrices(&self) -> (Vec<Vec<i64>>, Vec<Vec<i64>>, Vec<i64>) {
        let spatial: Vec<usize> = (0..self.iters.len())
            .filter(|&i| self.iters[i].kind == IterKind::Spatial)
            .collect();
        let reduction: Vec<usize> = (0..self.iters.len())
            .filter(|&i| self.iters[i].kind == IterKind::Reduction)
            .collect();
        let mut a = vec![vec![0i64; spatial.len()]; self.iters.len()];
        let mut b = vec![vec![0i64; reduction.len()]; self.iters.len()];
        let mut c = Vec::with_capacity(self.iters.len());
        for (row, it) in self.iters.iter().enumerate() {
            if let Some(col) = spatial.iter().position(|&s| s == row) {
                a[row][col] = 1;
            }
            if let Some(col) = reduction.iter().position(|&s| s == row) {
                b[row][col] = 1;
            }
            c.push(-it.extent);
        }
        (a, b, c)
    }

    /// Renders the abstraction in the paper's scalar statement style.
    pub fn statement_string(&self) -> String {
        let names = |id: IterId| self.iters[id.index()].name.clone();
        let operand = |o: &OperandSpec| {
            let idx: Vec<String> = o
                .dims
                .iter()
                .map(|e| e.display_with(&names).to_string())
                .collect();
            format!("{}[{}]", o.name, idx.join(", "))
        };
        let srcs: Vec<String> = self.srcs.iter().map(operand).collect();
        format!("{} = {}({})", operand(&self.dst), self.op, srcs.join(", "))
    }
}

impl fmt::Display for ComputeAbstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.statement_string())?;
        let ranges: Vec<String> = self
            .iters
            .iter()
            .map(|it| format!("{}: [0,{})", it.name, it.extent))
            .collect();
        write!(f, " s.t. {}", ranges.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Dst[i1,i2] = multiply-add(Src1[i1,r1], Src2[r1,i2])`, 16x16x16.
    fn mma16() -> ComputeAbstraction {
        ComputeAbstraction::new(
            vec![
                IntrinsicIter {
                    name: "i1".into(),
                    extent: 16,
                    kind: IterKind::Spatial,
                },
                IntrinsicIter {
                    name: "i2".into(),
                    extent: 16,
                    kind: IterKind::Spatial,
                },
                IntrinsicIter {
                    name: "r1".into(),
                    extent: 16,
                    kind: IterKind::Reduction,
                },
            ],
            vec![
                OperandSpec::simple("Src1", &[0, 2]),
                OperandSpec::simple("Src2", &[2, 1]),
            ],
            OperandSpec::simple("Dst", &[0, 1]),
            OpKind::MulAcc,
        )
    }

    #[test]
    fn access_matrix_matches_paper_fig4() {
        let z = mma16().access_matrix();
        let expected = BinMatrix::from_rows(&[&[1, 0, 1], &[0, 1, 1], &[1, 1, 0]]);
        assert_eq!(z, expected);
    }

    #[test]
    fn fragment_shapes_follow_problem_size() {
        let m = mma16();
        assert_eq!(m.fragment_shape(OperandRef::Src(0)), vec![16, 16]);
        assert_eq!(m.fragment_shape(OperandRef::Dst), vec![16, 16]);
        assert_eq!(m.fragment_len(OperandRef::Src(1)), 256);
        assert_eq!(m.scalar_ops(), 16 * 16 * 16);
        assert_eq!(m.problem_size(), vec![16, 16, 16]);
    }

    #[test]
    fn compound_dimension_fragment_shape() {
        // A conv unit: Src1[r1, i2 + r2] with i2:8, r2:3 -> dim extent 10.
        let conv = ComputeAbstraction::new(
            vec![
                IntrinsicIter {
                    name: "i1".into(),
                    extent: 4,
                    kind: IterKind::Spatial,
                },
                IntrinsicIter {
                    name: "i2".into(),
                    extent: 8,
                    kind: IterKind::Spatial,
                },
                IntrinsicIter {
                    name: "r1".into(),
                    extent: 4,
                    kind: IterKind::Reduction,
                },
                IntrinsicIter {
                    name: "r2".into(),
                    extent: 3,
                    kind: IterKind::Reduction,
                },
            ],
            vec![
                OperandSpec {
                    name: "Src1".into(),
                    dims: vec![
                        Expr::Var(IterId(2)),
                        Expr::Var(IterId(1)) + Expr::Var(IterId(3)),
                    ],
                },
                OperandSpec::simple("Src2", &[0, 2, 3]),
            ],
            OperandSpec::simple("Dst", &[0, 1]),
            OpKind::MulAcc,
        );
        assert_eq!(conv.fragment_shape(OperandRef::Src(0)), vec![4, 10]);
        assert_eq!(conv.fragment_shape(OperandRef::Src(1)), vec![4, 4, 3]);
    }

    #[test]
    fn constraint_matrices_match_equation_1() {
        let (a, b, c) = mma16().constraint_matrices();
        // A (cols i1,i2), B (col r1), C = -extents: the layout of Eq. (1).
        assert_eq!(a, vec![vec![1, 0], vec![0, 1], vec![0, 0]]);
        assert_eq!(b, vec![vec![0], vec![0], vec![1]]);
        assert_eq!(c, vec![-16, -16, -16]);
    }

    #[test]
    fn statement_rendering() {
        let m = mma16();
        assert_eq!(
            m.statement_string(),
            "Dst[i1, i2] = multiply-add(Src1[i1, r1], Src2[r1, i2])"
        );
        assert!(m.to_string().contains("i1: [0,16)"));
    }

    #[test]
    fn scalar_operand_has_empty_fragment_shape() {
        let axpy = ComputeAbstraction::new(
            vec![IntrinsicIter {
                name: "i1".into(),
                extent: 32,
                kind: IterKind::Spatial,
            }],
            vec![
                OperandSpec::scalar("Src1"),
                OperandSpec::simple("Src2", &[0]),
            ],
            OperandSpec::simple("Dst", &[0]),
            OpKind::MulAcc,
        );
        assert_eq!(axpy.fragment_shape(OperandRef::Src(0)), Vec::<i64>::new());
        assert_eq!(axpy.fragment_len(OperandRef::Src(0)), 1);
        let z = axpy.access_matrix();
        assert_eq!(z, BinMatrix::from_rows(&[&[0], &[1], &[1]]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        ComputeAbstraction::new(
            vec![IntrinsicIter {
                name: "i1".into(),
                extent: 2,
                kind: IterKind::Spatial,
            }],
            vec![OperandSpec::simple("Src1", &[0])],
            OperandSpec::simple("Dst", &[0]),
            OpKind::MulAcc,
        );
    }

    #[test]
    fn operand_ref_display() {
        assert_eq!(OperandRef::Src(0).to_string(), "Src1");
        assert_eq!(OperandRef::Dst.to_string(), "Dst");
    }
}

//! Name → description registry of accelerators.
//!
//! The registry is the lookup layer the CLI and Engine use to enumerate and
//! build backends: [`Registry::builtin`] starts from the catalog's
//! declarative tables, and [`Registry::register`] adds (or replaces) a
//! user-supplied [`AcceleratorDesc`] — the §7.5 "new accelerator in a few
//! lines" path.

use std::path::{Path, PathBuf};

use crate::accelerator::AcceleratorSpec;
use crate::catalog;
use crate::desc::AcceleratorDesc;
use crate::text::{self, AccelError, FileError};

/// An ordered collection of accelerator descriptions addressable by name.
///
/// Order is preserved (and deterministic) so that enumeration output —
/// `--list-accels`, sweep tests — is stable.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Vec<AcceleratorDesc>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry pre-populated with every catalog accelerator, in catalog
    /// order.
    pub fn builtin() -> Self {
        Registry {
            entries: catalog::descriptors(),
        }
    }

    /// Adds a description, replacing any existing entry with the same name
    /// (last wins; replacement keeps the original position, new names
    /// append) — so [`Registry::names`] never lists duplicates.
    pub fn register(&mut self, desc: AcceleratorDesc) {
        match self.entries.iter_mut().find(|e| e.name == desc.name) {
            Some(slot) => *slot = desc,
            None => self.entries.push(desc),
        }
    }

    /// The built-in catalog layered with every accelerator file in `dir`:
    /// a file defining the same machine name as a built-in replaces it
    /// (keeping its catalog position), new names append in filename order.
    ///
    /// Files are `*.toml` documents of either kind — full accelerator
    /// descriptions or primitive ISA descriptions, which are run through
    /// [`derive_abstraction`](crate::isa::derive_abstraction). Two *files*
    /// defining the same machine name is an authoring error and fails with
    /// [`AccelError::Duplicate`]; everything else in the directory is
    /// ignored.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Registry, FileError> {
        let mut registry = Registry::builtin();
        registry.extend_from_dir(dir.as_ref())?;
        Ok(registry)
    }

    /// The [`Registry::load_dir`] layering step on an existing registry;
    /// returns the machine names loaded from `dir`, in filename order.
    pub fn extend_from_dir(&mut self, dir: &Path) -> Result<Vec<String>, FileError> {
        let entries = std::fs::read_dir(dir).map_err(|e| FileError {
            file: dir.to_path_buf(),
            error: AccelError::Io(e.to_string()),
        })?;
        let mut files: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| FileError {
                file: dir.to_path_buf(),
                error: AccelError::Io(e.to_string()),
            })?;
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "toml") && path.is_file() {
                files.push(path);
            }
        }
        // Filename order, so layering is deterministic across platforms.
        files.sort();
        let mut loaded: Vec<(String, PathBuf)> = Vec::new();
        for path in &files {
            let (desc, _kind) = text::load_path(path)?;
            if let Some((_, earlier)) = loaded.iter().find(|(name, _)| *name == desc.name) {
                return Err(FileError {
                    file: path.clone(),
                    error: AccelError::Duplicate {
                        name: desc.name,
                        earlier: earlier.clone(),
                    },
                });
            }
            loaded.push((desc.name.clone(), path.clone()));
            self.register(desc);
        }
        Ok(loaded.into_iter().map(|(name, _)| name).collect())
    }

    /// Accelerator names in registry order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Looks up a description by name.
    pub fn get(&self, name: &str) -> Option<&AcceleratorDesc> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Builds the named accelerator, if registered.
    pub fn build(&self, name: &str) -> Option<AcceleratorSpec> {
        self.get(name).map(AcceleratorDesc::build)
    }

    /// Builds every registered accelerator, in registry order.
    pub fn build_all(&self) -> Vec<AcceleratorSpec> {
        self.entries.iter().map(AcceleratorDesc::build).collect()
    }

    /// All registered descriptions, in registry order.
    pub fn descs(&self) -> &[AcceleratorDesc] {
        &self.entries
    }

    /// Number of registered accelerators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_matches_catalog_order() {
        let reg = Registry::builtin();
        let names: Vec<String> = catalog::all_accelerators()
            .into_iter()
            .map(|a| a.name)
            .collect();
        assert_eq!(
            reg.names(),
            names.iter().map(String::as_str).collect::<Vec<_>>()
        );
        assert!(!reg.is_empty());
        assert_eq!(reg.len(), names.len());
    }

    #[test]
    fn build_by_name_equals_catalog_constructor() {
        let reg = Registry::builtin();
        assert_eq!(reg.build("v100"), Some(catalog::v100()));
        assert_eq!(reg.build("virtual-conv"), Some(catalog::virtual_conv()));
        assert_eq!(reg.build("nonexistent"), None);
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amos-registry-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn load_dir_layers_files_over_builtin() {
        let dir = scratch_dir("layering");
        // A brand-new machine plus a file overriding a built-in.
        let mut fresh = Registry::builtin().get("mini").unwrap().clone();
        fresh.name = "file-machine".into();
        std::fs::write(dir.join("file-machine.toml"), fresh.to_text()).unwrap();
        let mut overridden = Registry::builtin().get("mini").unwrap().clone();
        overridden.clock_ghz = 9.0;
        std::fs::write(dir.join("mini.toml"), overridden.to_text()).unwrap();
        // Non-.toml entries are ignored.
        std::fs::write(dir.join("README.md"), "not a machine").unwrap();

        let reg = Registry::load_dir(&dir).unwrap();
        assert_eq!(reg.len(), Registry::builtin().len() + 1);
        let pos = Registry::builtin()
            .names()
            .iter()
            .position(|&n| n == "mini")
            .unwrap();
        assert_eq!(reg.names()[pos], "mini", "override keeps catalog position");
        assert_eq!(reg.get("mini").unwrap().clock_ghz, 9.0, "file wins");
        assert_eq!(reg.get("file-machine").unwrap(), &fresh);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_rejects_two_files_with_one_name() {
        let dir = scratch_dir("duplicate");
        let desc = Registry::builtin().get("mini").unwrap().clone();
        std::fs::write(dir.join("a.toml"), desc.to_text()).unwrap();
        std::fs::write(dir.join("b.toml"), desc.to_text()).unwrap();
        let err = Registry::load_dir(&dir).unwrap_err();
        assert!(
            matches!(err.error, AccelError::Duplicate { ref name, .. } if name == "mini"),
            "{err}"
        );
        assert_eq!(err.file, dir.join("b.toml"), "reported at the later file");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_surfaces_parse_errors_with_file_and_line() {
        let dir = scratch_dir("parse-error");
        std::fs::write(
            dir.join("bad.toml"),
            "format = 1\nname = \"x\"\nclock_ghz = 1.0\nscalar_ops_per_core_cycle = 1.0\nfrob = 3\n",
        )
        .unwrap();
        let err = Registry::load_dir(&dir).unwrap_err();
        assert_eq!(err.file, dir.join("bad.toml"));
        assert!(err.to_string().contains("bad.toml:5"), "{err}");
        assert!(err.to_string().contains("unknown key `frob`"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_derives_isa_files() {
        let dir = scratch_dir("isa");
        let desc = Registry::builtin().get("gemmini-like").unwrap().clone();
        let isa = crate::isa::IsaDesc::from_accelerator(&desc).unwrap();
        std::fs::write(dir.join("gemmini-like.toml"), isa.to_text()).unwrap();
        let reg = Registry::load_dir(&dir).unwrap();
        assert_eq!(reg.get("gemmini-like").unwrap(), &desc);
        assert_eq!(reg.len(), Registry::builtin().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn register_replaces_in_place_and_appends_new() {
        let mut reg = Registry::builtin();
        let n = reg.len();
        let pos = reg.names().iter().position(|&s| s == "mini").unwrap();

        let mut replacement = reg.get("mini").unwrap().clone();
        replacement.clock_ghz = 2.0;
        reg.register(replacement);
        assert_eq!(reg.len(), n, "replacement must not grow the registry");
        assert_eq!(reg.names()[pos], "mini", "replacement keeps its position");
        assert_eq!(reg.build("mini").unwrap().clock_ghz, 2.0);

        let mut fresh = reg.get("mini").unwrap().clone();
        fresh.name = "mini-2".into();
        reg.register(fresh);
        assert_eq!(reg.len(), n + 1);
        assert_eq!(*reg.names().last().unwrap(), "mini-2");

        // Last wins: registering the same name repeatedly keeps exactly one
        // entry, and `names()` never lists duplicates.
        for ghz in [3.0, 4.0, 5.0] {
            let mut again = reg.get("mini-2").unwrap().clone();
            again.clock_ghz = ghz;
            reg.register(again);
        }
        assert_eq!(reg.len(), n + 1);
        assert_eq!(reg.build("mini-2").unwrap().clock_ghz, 5.0);
        let names = reg.names();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "names() must be duplicate-free");
    }
}

//! Name → description registry of accelerators.
//!
//! The registry is the lookup layer the CLI and Engine use to enumerate and
//! build backends: [`Registry::builtin`] starts from the catalog's
//! declarative tables, and [`Registry::register`] adds (or replaces) a
//! user-supplied [`AcceleratorDesc`] — the §7.5 "new accelerator in a few
//! lines" path.

use crate::accelerator::AcceleratorSpec;
use crate::catalog;
use crate::desc::AcceleratorDesc;

/// An ordered collection of accelerator descriptions addressable by name.
///
/// Order is preserved (and deterministic) so that enumeration output —
/// `--list-accels`, sweep tests — is stable.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Vec<AcceleratorDesc>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry pre-populated with every catalog accelerator, in catalog
    /// order.
    pub fn builtin() -> Self {
        Registry {
            entries: catalog::descriptors(),
        }
    }

    /// Adds a description, replacing any existing entry with the same name
    /// (replacement keeps the original position; new names append).
    pub fn register(&mut self, desc: AcceleratorDesc) {
        match self.entries.iter_mut().find(|e| e.name == desc.name) {
            Some(slot) => *slot = desc,
            None => self.entries.push(desc),
        }
    }

    /// Accelerator names in registry order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Looks up a description by name.
    pub fn get(&self, name: &str) -> Option<&AcceleratorDesc> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Builds the named accelerator, if registered.
    pub fn build(&self, name: &str) -> Option<AcceleratorSpec> {
        self.get(name).map(AcceleratorDesc::build)
    }

    /// Builds every registered accelerator, in registry order.
    pub fn build_all(&self) -> Vec<AcceleratorSpec> {
        self.entries.iter().map(AcceleratorDesc::build).collect()
    }

    /// All registered descriptions, in registry order.
    pub fn descs(&self) -> &[AcceleratorDesc] {
        &self.entries
    }

    /// Number of registered accelerators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_matches_catalog_order() {
        let reg = Registry::builtin();
        let names: Vec<String> = catalog::all_accelerators()
            .into_iter()
            .map(|a| a.name)
            .collect();
        assert_eq!(
            reg.names(),
            names.iter().map(String::as_str).collect::<Vec<_>>()
        );
        assert!(!reg.is_empty());
        assert_eq!(reg.len(), names.len());
    }

    #[test]
    fn build_by_name_equals_catalog_constructor() {
        let reg = Registry::builtin();
        assert_eq!(reg.build("v100"), Some(catalog::v100()));
        assert_eq!(reg.build("virtual-conv"), Some(catalog::virtual_conv()));
        assert_eq!(reg.build("nonexistent"), None);
    }

    #[test]
    fn register_replaces_in_place_and_appends_new() {
        let mut reg = Registry::builtin();
        let n = reg.len();
        let pos = reg.names().iter().position(|&s| s == "mini").unwrap();

        let mut replacement = reg.get("mini").unwrap().clone();
        replacement.clock_ghz = 2.0;
        reg.register(replacement);
        assert_eq!(reg.len(), n, "replacement must not grow the registry");
        assert_eq!(reg.names()[pos], "mini", "replacement keeps its position");
        assert_eq!(reg.build("mini").unwrap().clock_ghz, 2.0);

        let mut fresh = reg.get("mini").unwrap().clone();
        fresh.name = "mini-2".into();
        reg.register(fresh);
        assert_eq!(reg.len(), n + 1);
        assert_eq!(*reg.names().last().unwrap(), "mini-2");
    }
}

//! Spatial accelerator specifications: the hierarchical hardware model of
//! paper Figure 1a (PE array → sub-core → core → device), with the memory
//! capacities and bandwidths that constrain mappings and feed both the
//! analytic performance model and the timing simulator.

use crate::intrinsic::Intrinsic;
use std::fmt;

/// Memory attached to one hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySpec {
    /// Capacity per unit at this level, in bytes.
    pub capacity_bytes: u64,
    /// Sustained read bandwidth into this level, bytes per cycle per unit.
    pub load_bytes_per_cycle: f64,
    /// Sustained write bandwidth out of this level, bytes per cycle per unit.
    pub store_bytes_per_cycle: f64,
}

impl MemorySpec {
    /// A memory with symmetric load/store bandwidth.
    pub fn symmetric(capacity_bytes: u64, bytes_per_cycle: f64) -> Self {
        MemorySpec {
            capacity_bytes,
            load_bytes_per_cycle: bytes_per_cycle,
            store_bytes_per_cycle: bytes_per_cycle,
        }
    }
}

/// One level of the accelerator hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct Level {
    /// Display name (`pe-array`, `sub-core`, `core`, `device`).
    pub name: String,
    /// How many units of the *previous* (inner) level one unit of this level
    /// contains; the innermost level uses 1.
    pub inner_units: u64,
    /// Memory attached to one unit of this level.
    pub memory: MemorySpec,
}

/// A spatial accelerator: hierarchy plus the intrinsic it exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorSpec {
    /// Accelerator name (`v100`, `a100`, ...).
    pub name: String,
    /// Levels from innermost (level 0, the PE array with its register
    /// fragments) to outermost (the device with global memory).
    pub levels: Vec<Level>,
    /// The primary compute intrinsic exposed by the PE array.
    pub intrinsic: Intrinsic,
    /// Additional intrinsics on accelerators with heterogeneous units
    /// (e.g. an Ascend-style NPU exposes both a cube unit and a vector
    /// unit). The explorer considers every intrinsic and keeps the best
    /// mapping across them.
    pub extra_intrinsics: Vec<Intrinsic>,
    /// Clock frequency in GHz; converts cycles to seconds for reporting.
    pub clock_ghz: f64,
    /// Scalar (non-tensor) multiply-add throughput per core per cycle, used
    /// when a baseline fails to map an operator onto the spatial unit and
    /// falls back to the general-purpose units.
    pub scalar_ops_per_core_cycle: f64,
}

impl AcceleratorSpec {
    /// Number of hierarchy levels (`L` in the performance model).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// All intrinsics of the accelerator: the primary one first, then any
    /// heterogeneous extras.
    pub fn all_intrinsics(&self) -> impl Iterator<Item = &Intrinsic> {
        std::iter::once(&self.intrinsic).chain(self.extra_intrinsics.iter())
    }

    /// Total parallel units of level `l` on the whole device: the product of
    /// `inner_units` of every level *above* `l`.
    pub fn total_units(&self, l: usize) -> u64 {
        self.levels[l + 1..]
            .iter()
            .map(|lv| lv.inner_units)
            .product()
    }

    /// Total parallel PE arrays (units of level 0) on the device — the
    /// hardware parallelism a mapping's spatial loops can be bound to.
    pub fn total_pe_arrays(&self) -> u64 {
        self.total_units(0)
    }

    /// The level holding on-chip staging buffers (shared memory): the
    /// innermost level with finite capacity above the register level.
    pub fn shared_level(&self) -> usize {
        // By convention level 0 carries the register-fragment capacity and
        // the first level above it with non-zero capacity is the staging one.
        (1..self.levels.len())
            .find(|&l| self.levels[l].memory.capacity_bytes > 0)
            .unwrap_or(self.levels.len() - 1)
    }

    /// Cycles corresponding to one second at the accelerator clock.
    pub fn cycles_per_second(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Peak tensor throughput of the whole device in scalar ops/cycle.
    pub fn peak_tensor_ops_per_cycle(&self) -> f64 {
        self.intrinsic.ops_per_cycle() * self.total_pe_arrays() as f64
    }

    /// Converts a cycle count to GFLOPS (counting 2 flops per multiply-add)
    /// for a computation of the given scalar multiply-add count.
    pub fn gflops(&self, scalar_ops: i64, cycles: f64) -> f64 {
        if cycles <= 0.0 {
            return 0.0;
        }
        let seconds = cycles / self.cycles_per_second();
        (2.0 * scalar_ops as f64) / seconds / 1e9
    }
}

impl fmt::Display for AcceleratorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} @ {:.2} GHz, intrinsic {}",
            self.name, self.clock_ghz, self.intrinsic.name
        )?;
        for (l, lv) in self.levels.iter().enumerate() {
            writeln!(
                f,
                "  level {l}: {} x{} (cap {} B, bw {:.0}/{:.0} B/cyc)",
                lv.name,
                self.total_units(l),
                lv.memory.capacity_bytes,
                lv.memory.load_bytes_per_cycle,
                lv.memory.store_bytes_per_cycle
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog;

    #[test]
    fn v100_hierarchy_shape() {
        let v100 = catalog::v100();
        assert_eq!(v100.num_levels(), 4);
        // 80 SMs x 4 sub-cores = 320 PE arrays.
        assert_eq!(v100.total_pe_arrays(), 320);
        assert_eq!(v100.total_units(2), 80); // SMs on the device
        assert!(v100.peak_tensor_ops_per_cycle() > 0.0);
        assert_eq!(v100.shared_level(), 2); // shared memory lives on the SM
    }

    #[test]
    fn a100_is_bigger_than_v100() {
        let (v, a) = (catalog::v100(), catalog::a100());
        assert!(a.total_pe_arrays() > v.total_pe_arrays());
        assert!(a.peak_tensor_ops_per_cycle() > v.peak_tensor_ops_per_cycle());
        assert!(
            a.levels.last().unwrap().memory.load_bytes_per_cycle
                > v.levels.last().unwrap().memory.load_bytes_per_cycle
        );
    }

    #[test]
    fn gflops_conversion() {
        let v100 = catalog::v100();
        // 1e9 MACs in 1 second worth of cycles => 2 GFLOPS.
        let cycles = v100.cycles_per_second();
        let g = v100.gflops(1_000_000_000, cycles);
        assert!((g - 2.0).abs() < 1e-9);
        assert_eq!(v100.gflops(100, 0.0), 0.0);
    }

    #[test]
    fn all_intrinsics_lists_heterogeneous_units() {
        let npu = catalog::ascend_npu();
        let names: Vec<&str> = npu.all_intrinsics().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["cube_mma", "vec_mac"]);
        let v100 = catalog::v100();
        assert_eq!(v100.all_intrinsics().count(), 1);
    }

    #[test]
    fn display_lists_levels() {
        let text = catalog::v100().to_string();
        assert!(text.contains("level 0"));
        assert!(text.contains("mma_sync"));
    }
}

//! A complete intrinsic: compute abstraction + memory abstraction + timing
//! and type metadata.

use crate::abstraction::{ComputeAbstraction, OperandRef};
use crate::memory::MemoryAbstraction;
use amos_ir::DType;
use std::fmt;

/// A spatial-accelerator instruction described through the hardware
/// abstraction of paper §4.
#[derive(Debug, Clone, PartialEq)]
pub struct Intrinsic {
    /// Name of the compute intrinsic (e.g. `mma_sync`).
    pub name: String,
    /// Scalar-format compute behaviour (Def 4.1).
    pub compute: ComputeAbstraction,
    /// Scoped transfer statements (Def 4.2).
    pub memory: MemoryAbstraction,
    /// Issue-to-retire latency of one call, in cycles.
    pub latency: u64,
    /// Pipelined initiation interval: sustained cycles per call when the
    /// unit is saturated. `latency >= initiation_interval >= 1`.
    pub initiation_interval: u64,
    /// Element type the sources are consumed in.
    pub src_dtype: DType,
    /// Element type of the accumulator/destination.
    pub acc_dtype: DType,
}

impl Intrinsic {
    /// Scalar multiply-accumulates executed per call.
    pub fn scalar_ops(&self) -> i64 {
        self.compute.scalar_ops()
    }

    /// Bytes of one operand fragment, using the intrinsic's dtypes.
    pub fn fragment_bytes(&self, r: OperandRef) -> u64 {
        let dtype = match r {
            OperandRef::Dst => self.acc_dtype,
            OperandRef::Src(_) => self.src_dtype,
        };
        self.compute.fragment_len(r) as u64 * dtype.bytes()
    }

    /// Total register bytes needed to hold one fragment of every operand.
    pub fn total_fragment_bytes(&self) -> u64 {
        self.compute
            .operand_refs()
            .into_iter()
            .map(|r| self.fragment_bytes(r))
            .sum()
    }

    /// Peak throughput in scalar operations per cycle.
    pub fn ops_per_cycle(&self) -> f64 {
        self.scalar_ops() as f64 / self.initiation_interval as f64
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} -> {}, latency {} cyc, II {} cyc)",
            self.name,
            self.compute.statement_string(),
            self.src_dtype,
            self.acc_dtype,
            self.latency,
            self.initiation_interval
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn wmma_fragment_accounting() {
        let wmma = catalog::wmma_16x16x16();
        // f16 sources: 16*16*2 bytes each; f32 accumulator: 16*16*4 bytes.
        assert_eq!(wmma.fragment_bytes(OperandRef::Src(0)), 512);
        assert_eq!(wmma.fragment_bytes(OperandRef::Src(1)), 512);
        assert_eq!(wmma.fragment_bytes(OperandRef::Dst), 1024);
        assert_eq!(wmma.total_fragment_bytes(), 2048);
        assert_eq!(wmma.scalar_ops(), 4096);
        assert!(wmma.ops_per_cycle() > 0.0);
    }

    #[test]
    fn display_mentions_types_and_latency() {
        let wmma = catalog::wmma_16x16x16();
        let s = wmma.to_string();
        assert!(s.contains("mma_sync"));
        assert!(s.contains("f16 -> f32"));
        assert!(s.contains("latency"));
    }
}

//! Versioned on-disk text format for accelerator descriptions.
//!
//! ROADMAP item 4 asks for a new accelerator to be *a data file, zero Rust*.
//! This module is that file format: a minimal, hand-rolled TOML subset
//! (comments, `key = value` pairs, `[[section]]` array-of-table headers,
//! string/integer/float/array values — nothing else), parsed line by line so
//! every diagnostic carries the offending line number. Two document kinds
//! share the grammar, selected by the root `kind` key:
//!
//! * `kind = "accelerator"` — a complete [`AcceleratorDesc`], serialized with
//!   [`AcceleratorDesc::to_text`] and parsed with [`AcceleratorDesc::from_text`].
//! * `kind = "isa"` — the lower-level [`IsaDesc`] of
//!   primitive intrinsic shapes and load/store instructions;
//!   [`load_path`] derives the abstraction automatically
//!   (see [`derive_abstraction`]).
//!
//! Parsing never panics: every malformed input is a structured [`TextError`]
//! (unknown key, bad iteration kind, inconsistent operand/iteration
//! references, negative capacity, ...), and [`AcceleratorDesc::from_text`]
//! validates exactly the invariants that
//! [`AcceleratorDesc::build`] asserts, so a parsed description can always be
//! built. Serialization is deterministic, so the committed `data/accels/`
//! catalog can be pinned byte-for-byte against `to_text` of the built-ins.
//!
//! Names that appear in *unquoted positions* of the grammar — the machine
//! name, iteration names and operand names inside `"Src1[i1, r1]"` strings —
//! must be identifiers (`[A-Za-z0-9_.-]+`); `to_text` assumes this and
//! `from_text` enforces it.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::desc::{AcceleratorDesc, IntrinsicDesc, IterDesc, LevelDesc, MemoryDesc, OperandDesc};
use crate::isa::{derive_abstraction, DeriveError, IsaDesc};
use amos_ir::{DType, IterKind, OpKind};

/// Version of the on-disk grammar; every document pins it via `format = N`.
pub const TEXT_FORMAT_VERSION: i64 = 1;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// What went wrong while parsing or validating a document.
#[derive(Debug, Clone, PartialEq)]
pub enum TextErrorKind {
    /// The line is not part of the grammar (stray text, unterminated string,
    /// malformed header, ...).
    Syntax(String),
    /// A key the schema does not know, at its defining line.
    UnknownKey(String),
    /// A `[[section]]` the schema does not know.
    UnknownSection(String),
    /// The same key given twice in one section.
    DuplicateKey(String),
    /// A required key missing from a section (reported at the section
    /// header, or line 1 for root keys).
    MissingKey(String),
    /// A key whose value has the wrong type or an out-of-range value.
    BadValue {
        /// The offending key.
        key: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// An iteration kind other than `spatial` / `reduction`.
    BadIterKind(String),
    /// An operand index referencing an iteration the intrinsic never
    /// declared.
    UnknownIter {
        /// Operand whose index is broken.
        operand: String,
        /// The unresolvable iteration name.
        iter: String,
    },
    /// The document declares `format = N` for an `N` this build cannot read.
    UnsupportedFormat(i64),
    /// A cross-key consistency violation (no levels, arity mismatch, ...).
    Invalid(String),
}

/// A parse/validation diagnostic with the 1-based line it points at.
#[derive(Debug, Clone, PartialEq)]
pub struct TextError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// The diagnostic itself.
    pub kind: TextErrorKind,
}

impl TextError {
    fn new(line: usize, kind: TextErrorKind) -> Self {
        TextError { line, kind }
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            TextErrorKind::Syntax(msg) => write!(f, "{msg}"),
            TextErrorKind::UnknownKey(key) => write!(f, "unknown key `{key}`"),
            TextErrorKind::UnknownSection(name) => write!(f, "unknown section `[[{name}]]`"),
            TextErrorKind::DuplicateKey(key) => write!(f, "duplicate key `{key}`"),
            TextErrorKind::MissingKey(key) => write!(f, "missing required key `{key}`"),
            TextErrorKind::BadValue { key, reason } => write!(f, "bad value for `{key}`: {reason}"),
            TextErrorKind::BadIterKind(kind) => write!(
                f,
                "bad iteration kind `{kind}` (expected `spatial` or `reduction`)"
            ),
            TextErrorKind::UnknownIter { operand, iter } => write!(
                f,
                "operand `{operand}` references unknown iteration `{iter}`"
            ),
            TextErrorKind::UnsupportedFormat(v) => write!(
                f,
                "unsupported format version {v} (this build reads format {TEXT_FORMAT_VERSION})"
            ),
            TextErrorKind::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TextError {}

/// A failure attributable to one accelerator file.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// Parse or validation failure inside the file.
    Text(TextError),
    /// The file is a valid ISA description, but the derivation pass rejected
    /// it.
    Derive(DeriveError),
    /// Two files in one directory define the same machine name.
    Duplicate {
        /// The machine name defined twice.
        name: String,
        /// The earlier file that already defined it.
        earlier: PathBuf,
    },
    /// The file (or directory) could not be read.
    Io(String),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::Text(e) => write!(f, "{e}"),
            AccelError::Derive(e) => write!(f, "derivation failed: {e}"),
            AccelError::Duplicate { name, earlier } => write!(
                f,
                "machine `{name}` already defined by {}",
                earlier.display()
            ),
            AccelError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AccelError {}

/// An [`AccelError`] tagged with the file it came from — the payload of
/// `AmosErrorKind::Accel` in `amos-core`.
#[derive(Debug, Clone, PartialEq)]
pub struct FileError {
    /// The offending file (or directory, for I/O failures).
    pub file: PathBuf,
    /// What went wrong.
    pub error: AccelError,
}

impl fmt::Display for FileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.error {
            // "<file>:<line>: <msg>" so editors can jump to the diagnostic.
            AccelError::Text(e) => write!(f, "{}:{}: {}", self.file.display(), e.line, {
                // Strip the redundant "line N: " prefix of TextError's own
                // Display; the kind renders the message body.
                struct Kind<'a>(&'a TextError);
                impl fmt::Display for Kind<'_> {
                    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        let full = self.0.to_string();
                        let body = full
                            .split_once(": ")
                            .map(|(_, b)| b.to_string())
                            .unwrap_or(full);
                        write!(f, "{body}")
                    }
                }
                Kind(e)
            }),
            other => write!(f, "{}: {other}", self.file.display()),
        }
    }
}

impl std::error::Error for FileError {}

// ---------------------------------------------------------------------------
// Raw document layer
// ---------------------------------------------------------------------------

/// A parsed scalar or (flat) array value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    List(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::List(_) => "array",
        }
    }
}

#[derive(Debug)]
struct RawEntry {
    key: String,
    line: usize,
    value: Value,
}

#[derive(Debug)]
struct RawSection {
    /// Header name; empty for the root section.
    name: String,
    /// Line of the `[[...]]` header (1 for the root).
    line: usize,
    entries: Vec<RawEntry>,
}

#[derive(Debug)]
struct RawDoc {
    root: RawSection,
    sections: Vec<RawSection>,
}

fn syntax(line: usize, msg: impl Into<String>) -> TextError {
    TextError::new(line, TextErrorKind::Syntax(msg.into()))
}

/// Truncates `line` at the first `#` that is outside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_ident(text: &str) -> bool {
    !text.is_empty()
        && text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

/// Splits an array body on commas that are outside string literals. A
/// trailing comma before `]` is allowed.
fn split_items(body: &str, line: usize) -> Result<Vec<&str>, TextError> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str {
        return Err(syntax(line, "unterminated string in array"));
    }
    // A blank tail is either an empty array body or a trailing comma.
    let tail = &body[start..];
    if !tail.trim().is_empty() {
        items.push(tail);
    }
    Ok(items)
}

fn parse_scalar(text: &str, line: usize) -> Result<Value, TextError> {
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| syntax(line, "unterminated string"))?;
        if inner.contains('"') {
            return Err(syntax(line, "strings cannot contain `\"`"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    // Reject the textual infinities/NaN `f64::from_str` would accept; the
    // grammar only has finite decimal literals.
    if text
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
    {
        if let Ok(f) = text.parse::<f64>() {
            if f.is_finite() {
                return Ok(Value::Float(f));
            }
        }
    }
    Err(syntax(
        line,
        format!("`{text}` is not a string, number or array"),
    ))
}

fn parse_value(text: &str, line: usize) -> Result<Value, TextError> {
    if text.is_empty() {
        return Err(syntax(line, "missing value after `=`"));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let body = rest
            .strip_suffix(']')
            .ok_or_else(|| syntax(line, "unterminated array (expected `]`)"))?;
        let mut items = Vec::new();
        for item in split_items(body, line)? {
            let item = item.trim();
            if item.is_empty() {
                return Err(syntax(line, "empty element in array"));
            }
            if item.starts_with('[') {
                return Err(syntax(line, "nested arrays are not part of the subset"));
            }
            items.push(parse_scalar(item, line)?);
        }
        return Ok(Value::List(items));
    }
    parse_scalar(text, line)
}

fn parse_raw(text: &str) -> Result<RawDoc, TextError> {
    let mut doc = RawDoc {
        root: RawSection {
            name: String::new(),
            line: 1,
            entries: Vec::new(),
        },
        sections: Vec::new(),
    };
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| syntax(line_no, "section header must be `[[name]]`"))?
                .trim();
            if !is_ident(name) {
                return Err(syntax(line_no, format!("bad section name `{name}`")));
            }
            doc.sections.push(RawSection {
                name: name.to_string(),
                line: line_no,
                entries: Vec::new(),
            });
        } else if line.starts_with('[') {
            return Err(syntax(
                line_no,
                "tables use `[[name]]` headers (single-bracket `[name]` is not part of the subset)",
            ));
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if !is_ident(key) {
                return Err(syntax(line_no, format!("bad key `{key}`")));
            }
            let value = parse_value(value.trim(), line_no)?;
            let target = doc.sections.last_mut().unwrap_or(&mut doc.root);
            target.entries.push(RawEntry {
                key: key.to_string(),
                line: line_no,
                value,
            });
        } else {
            return Err(syntax(
                line_no,
                format!("expected `key = value` or `[[section]]`, got `{line}`"),
            ));
        }
    }
    Ok(doc)
}

// ---------------------------------------------------------------------------
// Schema layer: typed, consumed-key-tracked section reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    section: &'a RawSection,
    used: Vec<bool>,
}

impl<'a> Reader<'a> {
    fn new(section: &'a RawSection) -> Self {
        let used = vec![false; section.entries.len()];
        Reader { section, used }
    }

    /// The line a missing required key is reported at.
    fn anchor(&self) -> usize {
        self.section.line
    }

    fn take(&mut self, key: &str) -> Result<Option<(&'a Value, usize)>, TextError> {
        let mut found: Option<(usize, &'a RawEntry)> = None;
        for (i, entry) in self.section.entries.iter().enumerate() {
            if entry.key == key {
                if found.is_some() {
                    return Err(TextError::new(
                        entry.line,
                        TextErrorKind::DuplicateKey(key.to_string()),
                    ));
                }
                found = Some((i, entry));
            }
        }
        Ok(found.map(|(i, entry)| {
            self.used[i] = true;
            (&entry.value, entry.line)
        }))
    }

    fn require(&mut self, key: &str) -> Result<(&'a Value, usize), TextError> {
        self.take(key)?.ok_or_else(|| {
            TextError::new(self.anchor(), TextErrorKind::MissingKey(key.to_string()))
        })
    }

    fn bad(key: &str, line: usize, reason: impl Into<String>) -> TextError {
        TextError::new(
            line,
            TextErrorKind::BadValue {
                key: key.to_string(),
                reason: reason.into(),
            },
        )
    }

    fn str(&mut self, key: &str) -> Result<(String, usize), TextError> {
        match self.require(key)? {
            (Value::Str(s), line) => Ok((s.clone(), line)),
            (other, line) => Err(Self::bad(
                key,
                line,
                format!("expected a string, got {}", other.type_name()),
            )),
        }
    }

    fn opt_str(&mut self, key: &str) -> Result<Option<(String, usize)>, TextError> {
        match self.take(key)? {
            None => Ok(None),
            Some((Value::Str(s), line)) => Ok(Some((s.clone(), line))),
            Some((other, line)) => Err(Self::bad(
                key,
                line,
                format!("expected a string, got {}", other.type_name()),
            )),
        }
    }

    fn int(&mut self, key: &str) -> Result<(i64, usize), TextError> {
        match self.require(key)? {
            (Value::Int(i), line) => Ok((*i, line)),
            (other, line) => Err(Self::bad(
                key,
                line,
                format!("expected an integer, got {}", other.type_name()),
            )),
        }
    }

    fn u64(&mut self, key: &str) -> Result<(u64, usize), TextError> {
        let (v, line) = self.int(key)?;
        u64::try_from(v)
            .map(|v| (v, line))
            .map_err(|_| Self::bad(key, line, "must be a non-negative integer"))
    }

    /// Float key; integer literals are accepted (Rust's shortest-round-trip
    /// `Display` prints `64.0` as `64`).
    fn float(&mut self, key: &str) -> Result<(f64, usize), TextError> {
        match self.require(key)? {
            (Value::Float(f), line) => Ok((*f, line)),
            (Value::Int(i), line) => Ok((*i as f64, line)),
            (other, line) => Err(Self::bad(
                key,
                line,
                format!("expected a number, got {}", other.type_name()),
            )),
        }
    }

    fn str_list(&mut self, key: &str) -> Result<(Vec<String>, usize), TextError> {
        match self.require(key)? {
            (Value::List(items), line) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::Str(s) => out.push(s.clone()),
                        other => {
                            return Err(Self::bad(
                                key,
                                line,
                                format!("expected an array of strings, got {}", other.type_name()),
                            ))
                        }
                    }
                }
                Ok((out, line))
            }
            (other, line) => Err(Self::bad(
                key,
                line,
                format!("expected an array, got {}", other.type_name()),
            )),
        }
    }

    fn opt_int_list(&mut self, key: &str) -> Result<Option<(Vec<i64>, usize)>, TextError> {
        match self.take(key)? {
            None => Ok(None),
            Some((Value::List(items), line)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::Int(i) => out.push(*i),
                        other => {
                            return Err(Self::bad(
                                key,
                                line,
                                format!("expected an array of integers, got {}", other.type_name()),
                            ))
                        }
                    }
                }
                Ok(Some((out, line)))
            }
            Some((other, line)) => Err(Self::bad(
                key,
                line,
                format!("expected an array, got {}", other.type_name()),
            )),
        }
    }

    /// Errors on the first key `take` never consumed.
    fn finish(&self) -> Result<(), TextError> {
        for (i, entry) in self.section.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(TextError::new(
                    entry.line,
                    TextErrorKind::UnknownKey(entry.key.clone()),
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Shared vocabulary parsing
// ---------------------------------------------------------------------------

fn invalid(line: usize, msg: impl Into<String>) -> TextError {
    TextError::new(line, TextErrorKind::Invalid(msg.into()))
}

fn parse_op(text: &str, line: usize) -> Result<OpKind, TextError> {
    match text {
        "mul-acc" => Ok(OpKind::MulAcc),
        "add-acc" => Ok(OpKind::AddAcc),
        "max-acc" => Ok(OpKind::MaxAcc),
        other => Err(Reader::bad(
            "op",
            line,
            format!("unknown operation `{other}` (expected `mul-acc`, `add-acc` or `max-acc`)"),
        )),
    }
}

fn op_to_text(op: OpKind) -> &'static str {
    match op {
        OpKind::MulAcc => "mul-acc",
        OpKind::AddAcc => "add-acc",
        OpKind::MaxAcc => "max-acc",
    }
}

fn parse_dtype(key: &str, text: &str, line: usize) -> Result<DType, TextError> {
    match text {
        "f16" => Ok(DType::F16),
        "f32" => Ok(DType::F32),
        "i8" => Ok(DType::I8),
        "i32" => Ok(DType::I32),
        other => Err(Reader::bad(
            key,
            line,
            format!("unknown dtype `{other}` (expected `f16`, `f32`, `i8` or `i32`)"),
        )),
    }
}

/// Parses `"Name[i1, i2 + r1]"` against declared iteration names. `"Name[]"`
/// is a scalar operand.
fn parse_operand(
    text: &str,
    iter_names: &[&str],
    line: usize,
) -> Result<(String, Vec<Vec<usize>>), TextError> {
    let open = text.find('[').ok_or_else(|| {
        syntax(
            line,
            format!("operand `{text}` must look like `Name[i1, i2]`"),
        )
    })?;
    let name = text[..open].trim();
    if !is_ident(name) {
        return Err(syntax(line, format!("bad operand name `{name}`")));
    }
    let body = text[open + 1..]
        .strip_suffix(']')
        .ok_or_else(|| syntax(line, format!("operand `{text}` is missing a closing `]`")))?
        .trim();
    let mut dims = Vec::new();
    if !body.is_empty() {
        for dim in body.split(',') {
            let mut terms = Vec::new();
            for term in dim.split('+') {
                let term = term.trim();
                if term.is_empty() {
                    return Err(syntax(
                        line,
                        format!("operand `{name}` has an empty index term"),
                    ));
                }
                let pos = iter_names.iter().position(|&n| n == term).ok_or_else(|| {
                    TextError::new(
                        line,
                        TextErrorKind::UnknownIter {
                            operand: name.to_string(),
                            iter: term.to_string(),
                        },
                    )
                })?;
                terms.push(pos);
            }
            dims.push(terms);
        }
    }
    Ok((name.to_string(), dims))
}

fn operand_to_text(name: &str, index: &[Vec<usize>], iters: &[IterDesc]) -> String {
    let dims: Vec<String> = index
        .iter()
        .map(|terms| {
            terms
                .iter()
                .map(|&t| iters[t].name.as_str())
                .collect::<Vec<_>>()
                .join(" + ")
        })
        .collect();
    format!("{name}[{}]", dims.join(", "))
}

/// Formats an f64 with Rust's shortest-round-trip `Display` (re-parsing the
/// result yields the identical bits).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

// ---------------------------------------------------------------------------
// Root header
// ---------------------------------------------------------------------------

/// Which document kind a file declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// A full `AcceleratorDesc` document.
    Accelerator,
    /// A primitive `IsaDesc` document (needs the derivation pass).
    Isa,
}

struct RootHeader {
    kind: SourceKind,
    name: String,
    clock_ghz: f64,
    scalar_ops_per_core_cycle: f64,
}

fn read_root(reader: &mut Reader<'_>) -> Result<RootHeader, TextError> {
    let (format, fline) = reader.int("format")?;
    if format != TEXT_FORMAT_VERSION {
        return Err(TextError::new(
            fline,
            TextErrorKind::UnsupportedFormat(format),
        ));
    }
    let kind = match reader.opt_str("kind")? {
        None => SourceKind::Accelerator,
        Some((k, line)) => match k.as_str() {
            "accelerator" => SourceKind::Accelerator,
            "isa" => SourceKind::Isa,
            other => {
                return Err(Reader::bad(
                    "kind",
                    line,
                    format!("unknown kind `{other}` (expected `accelerator` or `isa`)"),
                ))
            }
        },
    };
    let (name, nline) = reader.str("name")?;
    if !is_ident(&name) {
        return Err(Reader::bad(
            "name",
            nline,
            "machine names are identifiers: letters, digits, `_`, `-`, `.`",
        ));
    }
    let (clock_ghz, cline) = reader.float("clock_ghz")?;
    if clock_ghz.is_nan() || clock_ghz <= 0.0 {
        return Err(Reader::bad("clock_ghz", cline, "must be positive"));
    }
    let (scalar_ops_per_core_cycle, sline) = reader.float("scalar_ops_per_core_cycle")?;
    if scalar_ops_per_core_cycle.is_nan() || scalar_ops_per_core_cycle <= 0.0 {
        return Err(Reader::bad(
            "scalar_ops_per_core_cycle",
            sline,
            "must be positive",
        ));
    }
    Ok(RootHeader {
        kind,
        name,
        clock_ghz,
        scalar_ops_per_core_cycle,
    })
}

fn parse_level(section: &RawSection) -> Result<LevelDesc, TextError> {
    let mut r = Reader::new(section);
    let (name, nline) = r.str("name")?;
    if name.is_empty() {
        return Err(Reader::bad("name", nline, "must not be empty"));
    }
    let (inner_units, iline) = r.u64("inner_units")?;
    if inner_units == 0 {
        return Err(Reader::bad("inner_units", iline, "must be at least 1"));
    }
    let (capacity_bytes, _cline) = r.u64("capacity_bytes")?;
    let (bytes_per_cycle, bline) = r.float("bytes_per_cycle")?;
    if bytes_per_cycle.is_nan() || bytes_per_cycle < 0.0 {
        return Err(Reader::bad(
            "bytes_per_cycle",
            bline,
            "must be non-negative",
        ));
    }
    r.finish()?;
    Ok(LevelDesc {
        name,
        inner_units,
        capacity_bytes,
        bytes_per_cycle,
    })
}

/// Parses one `"i1 spatial 16"` iteration spec.
fn parse_iter_spec(text: &str, line: usize) -> Result<IterDesc, TextError> {
    let fields: Vec<&str> = text.split_whitespace().collect();
    let [name, kind, extent] = fields[..] else {
        return Err(syntax(
            line,
            format!("iteration `{text}` must be `name kind extent` (e.g. `i1 spatial 16`)"),
        ));
    };
    if !is_ident(name) {
        return Err(syntax(line, format!("bad iteration name `{name}`")));
    }
    let kind = match kind {
        "spatial" => IterKind::Spatial,
        "reduction" => IterKind::Reduction,
        other => {
            return Err(TextError::new(
                line,
                TextErrorKind::BadIterKind(other.into()),
            ))
        }
    };
    let extent: i64 = extent.parse().map_err(|_| {
        Reader::bad(
            "iters",
            line,
            format!("extent `{extent}` is not an integer"),
        )
    })?;
    if extent <= 0 {
        return Err(invalid(
            line,
            format!("iteration `{name}` must have a positive extent, got {extent}"),
        ));
    }
    Ok(IterDesc {
        name: name.to_string(),
        extent,
        kind,
    })
}

fn check_unique_names<'n>(
    names: impl Iterator<Item = &'n str>,
    what: &str,
    line: usize,
) -> Result<(), TextError> {
    let mut seen: Vec<&str> = Vec::new();
    for name in names {
        if seen.contains(&name) {
            return Err(invalid(line, format!("duplicate {what} `{name}`")));
        }
        seen.push(name);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Accelerator-kind schema
// ---------------------------------------------------------------------------

fn parse_intrinsic(section: &RawSection) -> Result<IntrinsicDesc, TextError> {
    let mut r = Reader::new(section);
    let (name, nline) = r.str("name")?;
    if name.is_empty() {
        return Err(Reader::bad("name", nline, "must not be empty"));
    }
    let (op_text, oline) = r.str("op")?;
    let op = parse_op(&op_text, oline)?;

    let (iter_specs, iline) = r.str_list("iters")?;
    if iter_specs.is_empty() {
        return Err(invalid(iline, "an intrinsic needs at least one iteration"));
    }
    let mut iters = Vec::with_capacity(iter_specs.len());
    for spec in &iter_specs {
        iters.push(parse_iter_spec(spec, iline)?);
    }
    check_unique_names(iters.iter().map(|i| i.name.as_str()), "iteration", iline)?;
    let iter_names: Vec<&str> = iters.iter().map(|i| i.name.as_str()).collect();

    let (src_specs, sline) = r.str_list("srcs")?;
    if src_specs.len() != op.arity() {
        return Err(invalid(
            sline,
            format!(
                "operation `{op_text}` takes {} source(s), got {}",
                op.arity(),
                src_specs.len()
            ),
        ));
    }
    let mut srcs = Vec::with_capacity(src_specs.len());
    for spec in &src_specs {
        let (name, index) = parse_operand(spec, &iter_names, sline)?;
        srcs.push(OperandDesc { name, index });
    }
    let (dst_spec, dline) = r.str("dst")?;
    let (dst_name, dst_index) = parse_operand(&dst_spec, &iter_names, dline)?;
    let dst = OperandDesc {
        name: dst_name,
        index: dst_index,
    };
    check_unique_names(
        srcs.iter()
            .map(|s| s.name.as_str())
            .chain([dst.name.as_str()]),
        "operand",
        sline,
    )?;

    let (memory_text, mline) = r.str("memory")?;
    let load = r.opt_str("load")?;
    let store = r.opt_str("store")?;
    let memory = match memory_text.as_str() {
        "fragment" => {
            let (load, lline) = load.ok_or_else(|| {
                TextError::new(r.anchor(), TextErrorKind::MissingKey("load".into()))
            })?;
            let (store, stline) = store.ok_or_else(|| {
                TextError::new(r.anchor(), TextErrorKind::MissingKey("store".into()))
            })?;
            if load.is_empty() {
                return Err(Reader::bad("load", lline, "must not be empty"));
            }
            if store.is_empty() {
                return Err(Reader::bad("store", stline, "must not be empty"));
            }
            MemoryDesc::Fragment { load, store }
        }
        "implicit" => {
            if let Some((_, line)) = load.or(store) {
                return Err(invalid(
                    line,
                    "`implicit` memory takes no `load`/`store` instructions",
                ));
            }
            MemoryDesc::Implicit
        }
        other => {
            return Err(Reader::bad(
                "memory",
                mline,
                format!("unknown memory style `{other}` (expected `fragment` or `implicit`)"),
            ))
        }
    };

    let (latency, lline) = r.u64("latency")?;
    if latency == 0 {
        return Err(Reader::bad("latency", lline, "must be at least 1 cycle"));
    }
    let (initiation_interval, iiline) = r.u64("initiation_interval")?;
    if initiation_interval == 0 {
        return Err(Reader::bad(
            "initiation_interval",
            iiline,
            "must be at least 1 cycle",
        ));
    }
    if latency < initiation_interval {
        return Err(invalid(
            iiline,
            format!(
                "latency ({latency}) must be at least the initiation interval \
                 ({initiation_interval})"
            ),
        ));
    }
    let (src_dtype_text, sdline) = r.str("src_dtype")?;
    let src_dtype = parse_dtype("src_dtype", &src_dtype_text, sdline)?;
    let (acc_dtype_text, adline) = r.str("acc_dtype")?;
    let acc_dtype = parse_dtype("acc_dtype", &acc_dtype_text, adline)?;
    r.finish()?;

    Ok(IntrinsicDesc {
        name,
        iters,
        srcs,
        dst,
        op,
        memory,
        latency,
        initiation_interval,
        src_dtype,
        acc_dtype,
    })
}

fn validate_levels(levels: &[LevelDesc], first_line: usize) -> Result<(), TextError> {
    let innermost = &levels[0];
    if innermost.capacity_bytes == 0 {
        return Err(invalid(
            first_line,
            format!(
                "innermost level `{}` needs a nonzero capacity (fragments live there)",
                innermost.name
            ),
        ));
    }
    Ok(())
}

fn accelerator_from_doc(doc: &RawDoc) -> Result<AcceleratorDesc, TextError> {
    let mut root = Reader::new(&doc.root);
    let header = read_root(&mut root)?;
    root.finish()?;
    if header.kind != SourceKind::Accelerator {
        return Err(invalid(
            1,
            "this is an ISA description (`kind = \"isa\"`); derive it first \
             (`amos accel derive`) or load it through `Registry::load_dir`",
        ));
    }

    let mut levels = Vec::new();
    let mut first_level_line = 0;
    let mut intrinsics = Vec::new();
    for section in &doc.sections {
        match section.name.as_str() {
            "level" => {
                if levels.is_empty() {
                    first_level_line = section.line;
                }
                levels.push(parse_level(section)?);
            }
            "intrinsic" => intrinsics.push(parse_intrinsic(section)?),
            "intrinsic.load" | "intrinsic.store" => {
                return Err(TextError::new(
                    section.line,
                    TextErrorKind::UnknownSection(format!(
                        "{} (load/store sections belong to `kind = \"isa\"` documents)",
                        section.name
                    )),
                ));
            }
            other => {
                return Err(TextError::new(
                    section.line,
                    TextErrorKind::UnknownSection(other.to_string()),
                ));
            }
        }
    }
    if levels.is_empty() {
        return Err(invalid(1, "an accelerator needs at least one [[level]]"));
    }
    validate_levels(&levels, first_level_line)?;
    if intrinsics.is_empty() {
        return Err(invalid(
            1,
            "an accelerator needs at least one [[intrinsic]]",
        ));
    }
    check_unique_names(intrinsics.iter().map(|i| i.name.as_str()), "intrinsic", 1)?;

    Ok(AcceleratorDesc {
        name: header.name,
        levels,
        intrinsics,
        clock_ghz: header.clock_ghz,
        scalar_ops_per_core_cycle: header.scalar_ops_per_core_cycle,
    })
}

impl AcceleratorDesc {
    /// Serializes the description to the versioned text format.
    ///
    /// The output is deterministic and `from_text(to_text(d)) == d` for every
    /// description whose machine/iteration/operand names are identifiers
    /// (`[A-Za-z0-9_.-]+`) — which includes the whole built-in catalog.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("# AMOS accelerator description (text format 1).\n");
        s.push_str("# Validate with `amos accel lint`; load with `amos --accel-dir <dir>`.\n");
        s.push_str(&format!("format = {TEXT_FORMAT_VERSION}\n"));
        s.push_str("kind = \"accelerator\"\n");
        s.push_str(&format!("name = \"{}\"\n", self.name));
        s.push_str(&format!("clock_ghz = {}\n", fmt_f64(self.clock_ghz)));
        s.push_str(&format!(
            "scalar_ops_per_core_cycle = {}\n",
            fmt_f64(self.scalar_ops_per_core_cycle)
        ));
        for level in &self.levels {
            s.push_str("\n[[level]]\n");
            s.push_str(&format!("name = \"{}\"\n", level.name));
            s.push_str(&format!("inner_units = {}\n", level.inner_units));
            s.push_str(&format!("capacity_bytes = {}\n", level.capacity_bytes));
            s.push_str(&format!(
                "bytes_per_cycle = {}\n",
                fmt_f64(level.bytes_per_cycle)
            ));
        }
        for intr in &self.intrinsics {
            s.push_str("\n[[intrinsic]]\n");
            s.push_str(&format!("name = \"{}\"\n", intr.name));
            s.push_str(&format!("op = \"{}\"\n", op_to_text(intr.op)));
            let iters: Vec<String> = intr
                .iters
                .iter()
                .map(|it| format!("\"{} {} {}\"", it.name, it.kind, it.extent))
                .collect();
            s.push_str(&format!("iters = [{}]\n", iters.join(", ")));
            let srcs: Vec<String> = intr
                .srcs
                .iter()
                .map(|o| format!("\"{}\"", operand_to_text(&o.name, &o.index, &intr.iters)))
                .collect();
            s.push_str(&format!("srcs = [{}]\n", srcs.join(", ")));
            s.push_str(&format!(
                "dst = \"{}\"\n",
                operand_to_text(&intr.dst.name, &intr.dst.index, &intr.iters)
            ));
            match &intr.memory {
                MemoryDesc::Fragment { load, store } => {
                    s.push_str("memory = \"fragment\"\n");
                    s.push_str(&format!("load = \"{load}\"\n"));
                    s.push_str(&format!("store = \"{store}\"\n"));
                }
                MemoryDesc::Implicit => s.push_str("memory = \"implicit\"\n"),
            }
            s.push_str(&format!("latency = {}\n", intr.latency));
            s.push_str(&format!(
                "initiation_interval = {}\n",
                intr.initiation_interval
            ));
            s.push_str(&format!("src_dtype = \"{}\"\n", intr.src_dtype));
            s.push_str(&format!("acc_dtype = \"{}\"\n", intr.acc_dtype));
        }
        s
    }

    /// Parses a `kind = "accelerator"` document.
    ///
    /// Validates every invariant [`AcceleratorDesc::build`] asserts, so the
    /// returned description can always be built; never panics on malformed
    /// input.
    pub fn from_text(text: &str) -> Result<AcceleratorDesc, TextError> {
        accelerator_from_doc(&parse_raw(text)?)
    }
}

// ---------------------------------------------------------------------------
// ISA-kind schema (document shape; semantic types live in `crate::isa`)
// ---------------------------------------------------------------------------

use crate::isa::{IsaAccess, IsaIntrinsic, IsaLoop, IsaTransfer};

fn parse_isa_loop(text: &str, line: usize) -> Result<IsaLoop, TextError> {
    let fields: Vec<&str> = text.split_whitespace().collect();
    let [name, trip] = fields[..] else {
        return Err(syntax(
            line,
            format!("loop `{text}` must be `name trip` (e.g. `i1 16`)"),
        ));
    };
    if !is_ident(name) {
        return Err(syntax(line, format!("bad loop name `{name}`")));
    }
    let trip: i64 = trip
        .parse()
        .map_err(|_| Reader::bad("loops", line, format!("trip `{trip}` is not an integer")))?;
    if trip <= 0 {
        return Err(invalid(
            line,
            format!("loop `{name}` must have a positive trip count, got {trip}"),
        ));
    }
    Ok(IsaLoop {
        name: name.to_string(),
        trip,
    })
}

fn parse_transfer(section: &RawSection) -> Result<IsaTransfer, TextError> {
    let mut r = Reader::new(section);
    let (instruction, iline) = r.str("instruction")?;
    if instruction.is_empty() {
        return Err(Reader::bad("instruction", iline, "must not be empty"));
    }
    let (operand, _) = r.str("operand")?;
    let strides = r.opt_int_list("strides")?.map(|(s, _)| s);
    let base = r.opt_str("base")?.map(|(b, _)| b);
    r.finish()?;
    Ok(IsaTransfer {
        instruction,
        operand,
        strides,
        base,
    })
}

fn parse_isa_intrinsic(section: &RawSection) -> Result<IsaIntrinsic, TextError> {
    let mut r = Reader::new(section);
    let (name, nline) = r.str("name")?;
    if name.is_empty() {
        return Err(Reader::bad("name", nline, "must not be empty"));
    }
    let (op_text, oline) = r.str("op")?;
    let op = parse_op(&op_text, oline)?;

    let (loop_specs, lline) = r.str_list("loops")?;
    if loop_specs.is_empty() {
        return Err(invalid(lline, "an intrinsic needs at least one loop"));
    }
    let mut loops = Vec::with_capacity(loop_specs.len());
    for spec in &loop_specs {
        loops.push(parse_isa_loop(spec, lline)?);
    }
    check_unique_names(loops.iter().map(|l| l.name.as_str()), "loop", lline)?;
    let loop_names: Vec<&str> = loops.iter().map(|l| l.name.as_str()).collect();

    let (src_specs, sline) = r.str_list("srcs")?;
    if src_specs.len() != op.arity() {
        return Err(invalid(
            sline,
            format!(
                "operation `{op_text}` takes {} source(s), got {}",
                op.arity(),
                src_specs.len()
            ),
        ));
    }
    let mut srcs = Vec::with_capacity(src_specs.len());
    for spec in &src_specs {
        let (name, dims) = parse_operand(spec, &loop_names, sline)?;
        srcs.push(IsaAccess { name, dims });
    }
    let (dst_spec, dline) = r.str("dst")?;
    let (dst_name, dst_dims) = parse_operand(&dst_spec, &loop_names, dline)?;
    let dst = IsaAccess {
        name: dst_name,
        dims: dst_dims,
    };
    check_unique_names(
        srcs.iter()
            .map(|s| s.name.as_str())
            .chain([dst.name.as_str()]),
        "operand",
        sline,
    )?;

    let (latency, latline) = r.u64("latency")?;
    if latency == 0 {
        return Err(Reader::bad("latency", latline, "must be at least 1 cycle"));
    }
    let (initiation_interval, iiline) = r.u64("initiation_interval")?;
    if initiation_interval == 0 {
        return Err(Reader::bad(
            "initiation_interval",
            iiline,
            "must be at least 1 cycle",
        ));
    }
    if latency < initiation_interval {
        return Err(invalid(
            iiline,
            format!(
                "latency ({latency}) must be at least the initiation interval \
                 ({initiation_interval})"
            ),
        ));
    }
    let (src_dtype_text, sdline) = r.str("src_dtype")?;
    let src_dtype = parse_dtype("src_dtype", &src_dtype_text, sdline)?;
    let (acc_dtype_text, adline) = r.str("acc_dtype")?;
    let acc_dtype = parse_dtype("acc_dtype", &acc_dtype_text, adline)?;
    r.finish()?;

    Ok(IsaIntrinsic {
        name,
        op,
        loops,
        srcs,
        dst,
        loads: Vec::new(),
        store: None,
        latency,
        initiation_interval,
        src_dtype,
        acc_dtype,
    })
}

fn isa_from_doc(doc: &RawDoc) -> Result<IsaDesc, TextError> {
    let mut root = Reader::new(&doc.root);
    let header = read_root(&mut root)?;
    root.finish()?;
    if header.kind != SourceKind::Isa {
        return Err(invalid(
            1,
            "this is an accelerator description, not an ISA description \
             (`kind = \"isa\"`)",
        ));
    }

    let mut levels = Vec::new();
    let mut first_level_line = 0;
    let mut intrinsics: Vec<IsaIntrinsic> = Vec::new();
    for section in &doc.sections {
        match section.name.as_str() {
            "level" => {
                if levels.is_empty() {
                    first_level_line = section.line;
                }
                levels.push(parse_level(section)?);
            }
            "intrinsic" => intrinsics.push(parse_isa_intrinsic(section)?),
            "intrinsic.load" => {
                let Some(intr) = intrinsics.last_mut() else {
                    return Err(syntax(
                        section.line,
                        "[[intrinsic.load]] must follow an [[intrinsic]]",
                    ));
                };
                intr.loads.push(parse_transfer(section)?);
            }
            "intrinsic.store" => {
                let Some(intr) = intrinsics.last_mut() else {
                    return Err(syntax(
                        section.line,
                        "[[intrinsic.store]] must follow an [[intrinsic]]",
                    ));
                };
                if intr.store.is_some() {
                    return Err(invalid(
                        section.line,
                        format!("intrinsic `{}` already has a store", intr.name),
                    ));
                }
                intr.store = Some(parse_transfer(section)?);
            }
            other => {
                return Err(TextError::new(
                    section.line,
                    TextErrorKind::UnknownSection(other.to_string()),
                ));
            }
        }
    }
    if levels.is_empty() {
        return Err(invalid(
            1,
            "an ISA description needs at least one [[level]]",
        ));
    }
    validate_levels(&levels, first_level_line)?;
    if intrinsics.is_empty() {
        return Err(invalid(
            1,
            "an ISA description needs at least one [[intrinsic]]",
        ));
    }
    check_unique_names(intrinsics.iter().map(|i| i.name.as_str()), "intrinsic", 1)?;

    Ok(IsaDesc {
        name: header.name,
        levels,
        intrinsics,
        clock_ghz: header.clock_ghz,
        scalar_ops_per_core_cycle: header.scalar_ops_per_core_cycle,
    })
}

impl IsaDesc {
    /// Serializes the ISA description to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("# AMOS primitive ISA description (text format 1).\n");
        s.push_str("# Derive the hardware abstraction with `amos accel derive`.\n");
        s.push_str(&format!("format = {TEXT_FORMAT_VERSION}\n"));
        s.push_str("kind = \"isa\"\n");
        s.push_str(&format!("name = \"{}\"\n", self.name));
        s.push_str(&format!("clock_ghz = {}\n", fmt_f64(self.clock_ghz)));
        s.push_str(&format!(
            "scalar_ops_per_core_cycle = {}\n",
            fmt_f64(self.scalar_ops_per_core_cycle)
        ));
        for level in &self.levels {
            s.push_str("\n[[level]]\n");
            s.push_str(&format!("name = \"{}\"\n", level.name));
            s.push_str(&format!("inner_units = {}\n", level.inner_units));
            s.push_str(&format!("capacity_bytes = {}\n", level.capacity_bytes));
            s.push_str(&format!(
                "bytes_per_cycle = {}\n",
                fmt_f64(level.bytes_per_cycle)
            ));
        }
        for intr in &self.intrinsics {
            s.push_str("\n[[intrinsic]]\n");
            s.push_str(&format!("name = \"{}\"\n", intr.name));
            s.push_str(&format!("op = \"{}\"\n", op_to_text(intr.op)));
            let loops: Vec<String> = intr
                .loops
                .iter()
                .map(|l| format!("\"{} {}\"", l.name, l.trip))
                .collect();
            s.push_str(&format!("loops = [{}]\n", loops.join(", ")));
            let loop_descs: Vec<IterDesc> = intr
                .loops
                .iter()
                .map(|l| IterDesc::spatial(l.name.clone(), l.trip))
                .collect();
            let srcs: Vec<String> = intr
                .srcs
                .iter()
                .map(|a| format!("\"{}\"", operand_to_text(&a.name, &a.dims, &loop_descs)))
                .collect();
            s.push_str(&format!("srcs = [{}]\n", srcs.join(", ")));
            s.push_str(&format!(
                "dst = \"{}\"\n",
                operand_to_text(&intr.dst.name, &intr.dst.dims, &loop_descs)
            ));
            s.push_str(&format!("latency = {}\n", intr.latency));
            s.push_str(&format!(
                "initiation_interval = {}\n",
                intr.initiation_interval
            ));
            s.push_str(&format!("src_dtype = \"{}\"\n", intr.src_dtype));
            s.push_str(&format!("acc_dtype = \"{}\"\n", intr.acc_dtype));
            for transfer in &intr.loads {
                s.push_str("\n[[intrinsic.load]]\n");
                s.push_str(&transfer_to_text(transfer));
            }
            if let Some(store) = &intr.store {
                s.push_str("\n[[intrinsic.store]]\n");
                s.push_str(&transfer_to_text(store));
            }
        }
        s
    }

    /// Parses a `kind = "isa"` document; never panics on malformed input.
    pub fn from_text(text: &str) -> Result<IsaDesc, TextError> {
        isa_from_doc(&parse_raw(text)?)
    }
}

fn transfer_to_text(t: &IsaTransfer) -> String {
    let mut s = String::new();
    s.push_str(&format!("instruction = \"{}\"\n", t.instruction));
    s.push_str(&format!("operand = \"{}\"\n", t.operand));
    if let Some(strides) = &t.strides {
        let items: Vec<String> = strides.iter().map(|v| v.to_string()).collect();
        s.push_str(&format!("strides = [{}]\n", items.join(", ")));
    }
    if let Some(base) = &t.base {
        s.push_str(&format!("base = \"{base}\"\n"));
    }
    s
}

// ---------------------------------------------------------------------------
// File loading
// ---------------------------------------------------------------------------

/// A document parsed without knowing its kind in advance.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyDesc {
    /// A full accelerator description.
    Accelerator(AcceleratorDesc),
    /// A primitive ISA description.
    Isa(IsaDesc),
}

/// Parses either document kind, dispatching on the root `kind` key.
pub fn parse_any(text: &str) -> Result<AnyDesc, TextError> {
    let doc = parse_raw(text)?;
    let mut root = Reader::new(&doc.root);
    let header = read_root(&mut root)?;
    match header.kind {
        SourceKind::Accelerator => Ok(AnyDesc::Accelerator(accelerator_from_doc(&doc)?)),
        SourceKind::Isa => Ok(AnyDesc::Isa(isa_from_doc(&doc)?)),
    }
}

fn file_err(path: &Path, error: AccelError) -> FileError {
    FileError {
        file: path.to_path_buf(),
        error,
    }
}

/// Loads one accelerator file, running the derivation pass when the document
/// is a primitive ISA description. Returns the (possibly derived) description
/// and which kind the file declared.
pub fn load_path(path: &Path) -> Result<(AcceleratorDesc, SourceKind), FileError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| file_err(path, AccelError::Io(e.to_string())))?;
    match parse_any(&text).map_err(|e| file_err(path, AccelError::Text(e)))? {
        AnyDesc::Accelerator(desc) => Ok((desc, SourceKind::Accelerator)),
        AnyDesc::Isa(isa) => {
            let desc =
                derive_abstraction(&isa).map_err(|e| file_err(path, AccelError::Derive(e)))?;
            Ok((desc, SourceKind::Isa))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn catalog_round_trips_through_text() {
        for desc in catalog::descriptors() {
            let text = desc.to_text();
            let reparsed = AcceleratorDesc::from_text(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", desc.name));
            assert_eq!(reparsed, desc, "round-trip mismatch for {}", desc.name);
            // And the parsed desc builds the identical spec.
            assert_eq!(reparsed.build(), desc.build());
        }
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let text = catalog::descriptors()[0].to_text();
        let noisy: String = text
            .lines()
            .map(|l| format!("  {l}   # trailing comment\n\n"))
            .collect();
        assert_eq!(
            AcceleratorDesc::from_text(&noisy).unwrap(),
            catalog::descriptors()[0]
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let mut desc = catalog::descriptors()[5].clone(); // mini
        desc.levels[0].name = "pe#0".into();
        let text = desc.to_text();
        assert_eq!(AcceleratorDesc::from_text(&text).unwrap(), desc);
    }

    #[test]
    fn unknown_key_reports_its_line() {
        let mut text = catalog::descriptors()[0].to_text();
        text.push_str("frobnicate = 3\n");
        let expected_line = text.lines().count();
        let err = AcceleratorDesc::from_text(&text).unwrap_err();
        assert_eq!(err.kind, TextErrorKind::UnknownKey("frobnicate".into()));
        assert_eq!(err.line, expected_line);
    }

    #[test]
    fn duplicate_key_reports_second_line() {
        let text = "format = 1\nname = \"a\"\nname = \"b\"\n";
        let err = AcceleratorDesc::from_text(text).unwrap_err();
        assert_eq!(err.kind, TextErrorKind::DuplicateKey("name".into()));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unsupported_format_version_is_rejected() {
        let err = AcceleratorDesc::from_text("format = 99\n").unwrap_err();
        assert_eq!(err.kind, TextErrorKind::UnsupportedFormat(99));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn missing_root_key_is_reported_at_line_1() {
        let err = AcceleratorDesc::from_text("format = 1\n").unwrap_err();
        assert_eq!(err.kind, TextErrorKind::MissingKey("name".into()));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn bad_iter_kind_is_a_dedicated_diagnostic() {
        let text = catalog::descriptors()[5]
            .to_text()
            .replacen(" spatial ", " sideways ", 1);
        let err = AcceleratorDesc::from_text(&text).unwrap_err();
        assert_eq!(err.kind, TextErrorKind::BadIterKind("sideways".into()));
    }

    #[test]
    fn unknown_iter_reference_names_operand_and_iter() {
        let mut text = catalog::descriptors()[5].to_text();
        text = text.replace("\"Src1[i1, r1]\"", "\"Src1[i1, bogus]\"");
        let err = AcceleratorDesc::from_text(&text).unwrap_err();
        assert_eq!(
            err.kind,
            TextErrorKind::UnknownIter {
                operand: "Src1".into(),
                iter: "bogus".into(),
            }
        );
    }

    #[test]
    fn negative_capacity_is_rejected() {
        let text: String = catalog::descriptors()[5]
            .to_text()
            .lines()
            .map(|l| {
                if l.starts_with("capacity_bytes = ") {
                    "capacity_bytes = -1\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let err = AcceleratorDesc::from_text(&text).unwrap_err();
        assert!(
            matches!(err.kind, TextErrorKind::BadValue { ref key, .. } if key == "capacity_bytes"),
            "{err}"
        );
    }

    #[test]
    fn zero_innermost_capacity_is_rejected_but_outer_is_fine() {
        // v100's `sub-core` level legitimately has capacity 0; only the
        // innermost level (where fragments live) must be nonzero.
        let v100 = catalog::descriptors()[0].clone();
        assert!(v100.levels.iter().skip(1).any(|l| l.capacity_bytes == 0));
        assert!(AcceleratorDesc::from_text(&v100.to_text()).is_ok());

        let mut broken = v100;
        broken.levels[0].capacity_bytes = 0;
        let err = AcceleratorDesc::from_text(&broken.to_text()).unwrap_err();
        assert!(matches!(err.kind, TextErrorKind::Invalid(_)), "{err}");
    }

    #[test]
    fn file_error_display_is_editor_clickable() {
        let err = FileError {
            file: PathBuf::from("data/accels/x.toml"),
            error: AccelError::Text(TextError::new(7, TextErrorKind::UnknownKey("frob".into()))),
        };
        assert_eq!(err.to_string(), "data/accels/x.toml:7: unknown key `frob`");
    }

    #[test]
    fn single_bracket_table_is_a_syntax_error() {
        let err = AcceleratorDesc::from_text("format = 1\n[level]\n").unwrap_err();
        assert!(matches!(err.kind, TextErrorKind::Syntax(_)));
        assert_eq!(err.line, 2);
    }
}

//! # amos-hw — hardware abstraction for spatial accelerators
//!
//! The hardware side of the AMOS mapping problem (paper §4): intrinsics are
//! rewritten into analysable scalar form.
//!
//! * [`ComputeAbstraction`] — `Dst[ĩ] = F(Src1[j̃₁], ...)` with iteration
//!   ranges (Def 4.1), constraint matrices and the access matrix `Z`,
//! * [`MemoryAbstraction`] — scoped fragment transfers (Def 4.2),
//! * [`Intrinsic`] — the two abstractions plus latency and dtypes,
//! * [`AcceleratorSpec`] — the hierarchical machine of paper Fig 1a,
//! * [`desc`] — declarative plain-data descriptions ([`AcceleratorDesc`],
//!   [`IntrinsicDesc`]) that lower to the spec types,
//! * [`Registry`] — name → description lookup, pre-populated from the
//!   catalog, extensible with new accelerators (§7.5) and layerable with
//!   on-disk machines via [`Registry::load_dir`],
//! * [`text`] — the versioned on-disk text format (`to_text`/`from_text`
//!   with line-numbered diagnostics) behind the `data/accels/` catalog,
//! * [`isa`] — primitive intrinsic-ISA descriptions and
//!   [`derive_abstraction`], which computes iteration kinds (Algorithm-1
//!   constraint-matrix inputs) and memory stride/fragment parameters
//!   automatically,
//! * [`catalog`] — Tensor Core (V100/A100/T4), AVX-512 VNNI, Mali
//!   `arm_dot`, the Figure-3 mini accelerator, TPU/Gemmini/Ascend-style
//!   devices, and the §7.5 virtual AXPY/GEMV/CONV accelerators — all
//!   authored as descriptor tables.
//!
//! ## Example
//!
//! ```
//! use amos_hw::catalog;
//!
//! let wmma = catalog::wmma_16x16x16();
//! assert_eq!(
//!     wmma.compute.statement_string(),
//!     "Dst[i1, i2] = multiply-add(Src1[i1, r1], Src2[r1, i2])"
//! );
//! assert_eq!(wmma.compute.problem_size(), vec![16, 16, 16]);
//!
//! let v100 = catalog::v100();
//! assert_eq!(v100.total_pe_arrays(), 320); // 80 SMs x 4 sub-cores
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod abstraction;
mod accelerator;
mod intrinsic;
mod memory;
mod registry;

pub mod catalog;
pub mod desc;
pub mod isa;
pub mod text;

pub use abstraction::{ComputeAbstraction, IntrinsicIter, OperandRef, OperandSpec};
pub use accelerator::{AcceleratorSpec, Level, MemorySpec};
pub use desc::{AcceleratorDesc, IntrinsicDesc, IterDesc, LevelDesc, MemoryDesc, OperandDesc};
pub use intrinsic::Intrinsic;
pub use isa::{derive_abstraction, DeriveError, IsaDesc, IsaIntrinsic, IsaLoop, IsaTransfer};
pub use memory::{MemStatement, MemoryAbstraction, TransferDir};
pub use registry::Registry;
pub use text::{AccelError, FileError, SourceKind, TextError, TextErrorKind, TEXT_FORMAT_VERSION};

/// Version of the hardware abstraction's *semantics*, as seen by persisted
/// exploration results. The structural cache fingerprint already captures
/// every field of an [`AcceleratorSpec`] via its `Debug` output, but a
/// change to what those fields *mean* (a new timing term, a reinterpreted
/// constraint matrix) leaves the fingerprint unchanged while invalidating
/// stored winners. Bump this constant on any such change: it is folded into
/// the on-disk cache salt, so stale entries degrade to cold misses instead
/// of replaying results the current model would never produce.
pub const ABSTRACTION_VERSION: u32 = 1;

// Accelerator descriptions are shared by reference across explorer worker
// threads; keep them free of interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AcceleratorSpec>();
    assert_send_sync::<Intrinsic>();
};

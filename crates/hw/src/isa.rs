//! Primitive intrinsic-ISA descriptions and the derivation pass.
//!
//! An [`AcceleratorDesc`] already labels every iteration axis spatial or
//! reduction and names an abstract memory style — information Algorithm 1
//! (paper §4.1) consumes directly. Following ACT ("Automatically Generating
//! Compiler Backends from Tensor Accelerator ISA Descriptions"), this module
//! accepts something strictly *more primitive*: an [`IsaDesc`] records only
//! what an ISA manual states — loop trip counts, operand access expressions,
//! dtypes, and the per-level load/store instructions with their base+stride
//! addressing — and [`derive_abstraction`] computes the rest:
//!
//! * **Iteration kinds** (the §4.1 index-match constraint-matrix inputs):
//!   an axis is spatial iff it appears in the destination's access
//!   expression; every other axis accumulates in place and is a reduction.
//!   The derived kinds are exactly what `constraint_matrices()` needs to
//!   build the A/B/C systems of Algorithm 1.
//! * **Memory abstraction** (Def 4.2 stride/fragment parameters): operands
//!   with explicit load/store instructions become the fragment style; the
//!   declared strides are checked against the dense row-major strides of the
//!   fragment shape implied by the access expressions (dimension `d` spans
//!   `1 + Σ_terms (trip − 1)` elements), so an inconsistent ISA descriptor
//!   is rejected instead of silently mis-modelled. No transfers at all means
//!   the implicit style (AVX-512 / `arm_dot`).
//!
//! The inverse, [`IsaDesc::from_accelerator`], re-expresses a hand-written
//! description as its primitive ISA form (failing with
//! [`DeriveError::NotExpressible`] when the kinds are not dst-determined);
//! `derive_abstraction(&IsaDesc::from_accelerator(d)?) == d` for the whole
//! built-in catalog, which is the property the derivation tests pin.

use std::fmt;

use crate::desc::{AcceleratorDesc, IntrinsicDesc, IterDesc, LevelDesc, MemoryDesc, OperandDesc};
use amos_ir::{DType, IterKind, OpKind};

/// One loop of a primitive intrinsic, with no spatial/reduction label — the
/// derivation pass computes the kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaLoop {
    /// Loop name (`i1`, `r1`, ...).
    pub name: String,
    /// Trip count.
    pub trip: i64,
}

/// One operand access expression: `dims[d]` lists the loop positions summed
/// to index dimension `d` (empty `dims` is a scalar operand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaAccess {
    /// Operand name (`Src1`, `Dst`, ...).
    pub name: String,
    /// Per-dimension sums of loop positions into [`IsaIntrinsic::loops`].
    pub dims: Vec<Vec<usize>>,
}

/// A load or store instruction moving one operand between levels, with
/// base+stride addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaTransfer {
    /// Instruction mnemonic (`load_matrix_sync`, `mvin`, ...).
    pub instruction: String,
    /// Name of the operand it moves.
    pub operand: String,
    /// Row-major element strides per fragment dimension; `None` lets the
    /// derivation pass compute the dense strides from the access expression.
    pub strides: Option<Vec<i64>>,
    /// Optional symbolic base address (documentation only; addressing is
    /// relative to the fragment).
    pub base: Option<String>,
}

/// A primitive intrinsic: shape, accesses, timing, dtypes and transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct IsaIntrinsic {
    /// Compute instruction mnemonic.
    pub name: String,
    /// The arithmetic operation.
    pub op: OpKind,
    /// Loops in declaration order; accesses refer to these by position.
    pub loops: Vec<IsaLoop>,
    /// Source operand accesses (must match `op.arity()`).
    pub srcs: Vec<IsaAccess>,
    /// Destination operand access.
    pub dst: IsaAccess,
    /// Load instructions (one per source for fragment-style machines; empty
    /// for implicit-style machines).
    pub loads: Vec<IsaTransfer>,
    /// Store instruction for the destination, if explicit.
    pub store: Option<IsaTransfer>,
    /// Issue-to-retire latency in cycles.
    pub latency: u64,
    /// Pipelined initiation interval in cycles.
    pub initiation_interval: u64,
    /// Element type of the sources.
    pub src_dtype: DType,
    /// Element type of the accumulator/destination.
    pub acc_dtype: DType,
}

/// A complete primitive ISA description of one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct IsaDesc {
    /// Machine name; becomes the registry key of the derived description.
    pub name: String,
    /// Hierarchy levels, innermost first (same shape as the desc layer).
    pub levels: Vec<LevelDesc>,
    /// Primitive intrinsics; the first is primary.
    pub intrinsics: Vec<IsaIntrinsic>,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Scalar multiply-add throughput per core per cycle.
    pub scalar_ops_per_core_cycle: f64,
}

/// Why the derivation pass (or its inverse) rejected a description.
#[derive(Debug, Clone, PartialEq)]
pub enum DeriveError {
    /// The description lists no intrinsics.
    NoIntrinsics,
    /// An intrinsic has no loops.
    EmptyLoops {
        /// The offending intrinsic.
        intrinsic: String,
    },
    /// Two loops share a name.
    DuplicateLoop {
        /// The offending intrinsic.
        intrinsic: String,
        /// The repeated loop name.
        name: String,
    },
    /// A loop with a non-positive trip count.
    BadTrip {
        /// The offending intrinsic.
        intrinsic: String,
        /// The loop name.
        name: String,
        /// Its declared trip count.
        trip: i64,
    },
    /// An access referencing a loop position that does not exist.
    UnknownLoop {
        /// The offending intrinsic.
        intrinsic: String,
        /// The operand whose access is broken.
        operand: String,
        /// The out-of-range loop position.
        position: usize,
    },
    /// An access dimension with no terms.
    EmptyDim {
        /// The offending intrinsic.
        intrinsic: String,
        /// The operand whose access is broken.
        operand: String,
    },
    /// Source count does not match the operation's arity.
    ArityMismatch {
        /// The offending intrinsic.
        intrinsic: String,
        /// The declared operation.
        op: OpKind,
        /// Number of sources given.
        srcs: usize,
    },
    /// A transfer naming an operand the intrinsic does not have.
    UnknownTransferOperand {
        /// The offending intrinsic.
        intrinsic: String,
        /// The unresolvable operand name.
        operand: String,
    },
    /// Loads/stores present but not covering every operand exactly once.
    InconsistentTransfers {
        /// The offending intrinsic.
        intrinsic: String,
        /// What is missing or duplicated.
        detail: String,
    },
    /// Sources loaded by different instructions (the fragment style has one
    /// load mnemonic).
    MixedLoadInstructions {
        /// The offending intrinsic.
        intrinsic: String,
    },
    /// Declared strides disagree with the dense strides of the fragment
    /// shape implied by the access expression.
    StrideMismatch {
        /// The offending intrinsic.
        intrinsic: String,
        /// The operand whose strides are wrong.
        operand: String,
        /// Dense strides the access expression implies.
        expected: Vec<i64>,
        /// Strides the descriptor declared.
        got: Vec<i64>,
    },
    /// (Inverse direction) the hand-written description cannot be expressed
    /// as a primitive ISA description.
    NotExpressible {
        /// The offending intrinsic.
        intrinsic: String,
        /// Why the kinds are not dst-determined.
        detail: String,
    },
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::NoIntrinsics => write!(f, "the description lists no intrinsics"),
            DeriveError::EmptyLoops { intrinsic } => {
                write!(f, "intrinsic `{intrinsic}` has no loops")
            }
            DeriveError::DuplicateLoop { intrinsic, name } => {
                write!(f, "intrinsic `{intrinsic}` declares loop `{name}` twice")
            }
            DeriveError::BadTrip {
                intrinsic,
                name,
                trip,
            } => write!(
                f,
                "intrinsic `{intrinsic}` loop `{name}` has non-positive trip count {trip}"
            ),
            DeriveError::UnknownLoop {
                intrinsic,
                operand,
                position,
            } => write!(
                f,
                "intrinsic `{intrinsic}` operand `{operand}` references loop position \
                 {position}, which does not exist"
            ),
            DeriveError::EmptyDim { intrinsic, operand } => write!(
                f,
                "intrinsic `{intrinsic}` operand `{operand}` has an access dimension with \
                 no terms"
            ),
            DeriveError::ArityMismatch {
                intrinsic,
                op,
                srcs,
            } => write!(
                f,
                "intrinsic `{intrinsic}`: operation `{op}` takes {} source(s), got {srcs}",
                op.arity()
            ),
            DeriveError::UnknownTransferOperand { intrinsic, operand } => write!(
                f,
                "intrinsic `{intrinsic}` has a transfer for unknown operand `{operand}`"
            ),
            DeriveError::InconsistentTransfers { intrinsic, detail } => {
                write!(f, "intrinsic `{intrinsic}`: {detail}")
            }
            DeriveError::MixedLoadInstructions { intrinsic } => write!(
                f,
                "intrinsic `{intrinsic}` loads its sources with different instructions; \
                 the fragment style has a single load mnemonic"
            ),
            DeriveError::StrideMismatch {
                intrinsic,
                operand,
                expected,
                got,
            } => write!(
                f,
                "intrinsic `{intrinsic}` operand `{operand}`: declared strides {got:?} \
                 disagree with the dense fragment strides {expected:?}"
            ),
            DeriveError::NotExpressible { intrinsic, detail } => write!(
                f,
                "intrinsic `{intrinsic}` is not expressible as a primitive ISA \
                 description: {detail}"
            ),
        }
    }
}

impl std::error::Error for DeriveError {}

/// The fragment shape an access expression implies: dimension `d` of the
/// operand spans `1 + Σ_{t ∈ dims[d]} (trip(t) − 1)` distinct elements
/// (each term contributes its full travel; compound window dims like
/// `i2 + r2` overlap accordingly). Matches
/// `ComputeAbstraction::fragment_shape` for descriptions in this index
/// language.
pub fn access_shape(loops: &[IsaLoop], access: &IsaAccess) -> Vec<i64> {
    access
        .dims
        .iter()
        .map(|terms| 1 + terms.iter().map(|&t| loops[t].trip - 1).sum::<i64>())
        .collect()
}

/// Dense row-major element strides of a fragment shape (innermost dimension
/// last, stride 1).
pub fn dense_strides(shape: &[i64]) -> Vec<i64> {
    let mut strides = vec![1i64; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * shape[d + 1];
    }
    strides
}

/// Validates the structural part of one primitive intrinsic (loops, trips,
/// access references, arity).
fn validate_shape(intr: &IsaIntrinsic) -> Result<(), DeriveError> {
    if intr.loops.is_empty() {
        return Err(DeriveError::EmptyLoops {
            intrinsic: intr.name.clone(),
        });
    }
    let mut seen: Vec<&str> = Vec::new();
    for l in &intr.loops {
        if seen.contains(&l.name.as_str()) {
            return Err(DeriveError::DuplicateLoop {
                intrinsic: intr.name.clone(),
                name: l.name.clone(),
            });
        }
        seen.push(&l.name);
        if l.trip <= 0 {
            return Err(DeriveError::BadTrip {
                intrinsic: intr.name.clone(),
                name: l.name.clone(),
                trip: l.trip,
            });
        }
    }
    if intr.srcs.len() != intr.op.arity() {
        return Err(DeriveError::ArityMismatch {
            intrinsic: intr.name.clone(),
            op: intr.op,
            srcs: intr.srcs.len(),
        });
    }
    for access in intr.srcs.iter().chain([&intr.dst]) {
        for terms in &access.dims {
            if terms.is_empty() {
                return Err(DeriveError::EmptyDim {
                    intrinsic: intr.name.clone(),
                    operand: access.name.clone(),
                });
            }
            for &t in terms {
                if t >= intr.loops.len() {
                    return Err(DeriveError::UnknownLoop {
                        intrinsic: intr.name.clone(),
                        operand: access.name.clone(),
                        position: t,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Derives the memory abstraction style from the declared transfers, checking
/// stride consistency along the way.
fn derive_memory(intr: &IsaIntrinsic) -> Result<MemoryDesc, DeriveError> {
    if intr.loads.is_empty() && intr.store.is_none() {
        return Ok(MemoryDesc::Implicit);
    }
    let err = |detail: String| DeriveError::InconsistentTransfers {
        intrinsic: intr.name.clone(),
        detail,
    };
    // Every transfer must name a real operand.
    for t in intr.loads.iter().chain(intr.store.as_ref()) {
        let known = intr.srcs.iter().any(|s| s.name == t.operand) || intr.dst.name == t.operand;
        if !known {
            return Err(DeriveError::UnknownTransferOperand {
                intrinsic: intr.name.clone(),
                operand: t.operand.clone(),
            });
        }
    }
    // Exactly one load per source.
    let mut load_instruction: Option<&str> = None;
    for src in &intr.srcs {
        let loads: Vec<&IsaTransfer> = intr
            .loads
            .iter()
            .filter(|t| t.operand == src.name)
            .collect();
        match loads.len() {
            0 => {
                return Err(err(format!(
                    "source `{}` has no load instruction",
                    src.name
                )))
            }
            1 => {}
            n => {
                return Err(err(format!(
                    "source `{}` has {n} load instructions (expected 1)",
                    src.name
                )))
            }
        }
        let load = loads[0];
        match load_instruction {
            None => load_instruction = Some(&load.instruction),
            Some(first) if first != load.instruction => {
                return Err(DeriveError::MixedLoadInstructions {
                    intrinsic: intr.name.clone(),
                })
            }
            Some(_) => {}
        }
        check_strides(intr, src, load)?;
    }
    // Loads must not target the destination.
    if intr.loads.iter().any(|t| t.operand == intr.dst.name) {
        return Err(err(format!(
            "destination `{}` has a load instruction (only sources are loaded)",
            intr.dst.name
        )));
    }
    let store = intr
        .store
        .as_ref()
        .ok_or_else(|| err("sources are loaded but the destination has no store".into()))?;
    if store.operand != intr.dst.name {
        return Err(err(format!(
            "store targets `{}`, but the destination is `{}`",
            store.operand, intr.dst.name
        )));
    }
    check_strides(intr, &intr.dst, store)?;
    Ok(MemoryDesc::Fragment {
        load: load_instruction
            .expect("every op has at least one source")
            .to_string(),
        store: store.instruction.clone(),
    })
}

/// Declared strides must equal the dense row-major strides of the fragment
/// shape the access expression implies.
fn check_strides(
    intr: &IsaIntrinsic,
    access: &IsaAccess,
    transfer: &IsaTransfer,
) -> Result<(), DeriveError> {
    if let Some(got) = &transfer.strides {
        let expected = dense_strides(&access_shape(&intr.loops, access));
        if *got != expected {
            return Err(DeriveError::StrideMismatch {
                intrinsic: intr.name.clone(),
                operand: access.name.clone(),
                expected,
                got: got.clone(),
            });
        }
    }
    Ok(())
}

/// Derives a full [`AcceleratorDesc`] from a primitive ISA description.
///
/// Iteration kinds are computed from the destination access (spatial iff the
/// loop indexes the destination), memory style from the declared transfers,
/// and both are validated so the returned description always passes
/// [`AcceleratorDesc::build`]'s Algorithm-1 input checks.
pub fn derive_abstraction(isa: &IsaDesc) -> Result<AcceleratorDesc, DeriveError> {
    if isa.intrinsics.is_empty() {
        return Err(DeriveError::NoIntrinsics);
    }
    let mut intrinsics = Vec::with_capacity(isa.intrinsics.len());
    for intr in &isa.intrinsics {
        validate_shape(intr)?;
        // A loop is spatial iff it addresses the destination; everything
        // else accumulates in place (reduction). This is the Algorithm-1
        // constraint-matrix partition of §4.1.
        let mut is_spatial = vec![false; intr.loops.len()];
        for terms in &intr.dst.dims {
            for &t in terms {
                is_spatial[t] = true;
            }
        }
        let iters: Vec<IterDesc> = intr
            .loops
            .iter()
            .zip(&is_spatial)
            .map(|(l, &spatial)| IterDesc {
                name: l.name.clone(),
                extent: l.trip,
                kind: if spatial {
                    IterKind::Spatial
                } else {
                    IterKind::Reduction
                },
            })
            .collect();
        let memory = derive_memory(intr)?;
        intrinsics.push(IntrinsicDesc {
            name: intr.name.clone(),
            iters,
            srcs: intr
                .srcs
                .iter()
                .map(|a| OperandDesc {
                    name: a.name.clone(),
                    index: a.dims.clone(),
                })
                .collect(),
            dst: OperandDesc {
                name: intr.dst.name.clone(),
                index: intr.dst.dims.clone(),
            },
            op: intr.op,
            memory,
            latency: intr.latency,
            initiation_interval: intr.initiation_interval,
            src_dtype: intr.src_dtype,
            acc_dtype: intr.acc_dtype,
        });
    }
    Ok(AcceleratorDesc {
        name: isa.name.clone(),
        levels: isa.levels.clone(),
        intrinsics,
        clock_ghz: isa.clock_ghz,
        scalar_ops_per_core_cycle: isa.scalar_ops_per_core_cycle,
    })
}

impl IsaDesc {
    /// Re-expresses a hand-written description in the primitive ISA form,
    /// the inverse of [`derive_abstraction`].
    ///
    /// Fails with [`DeriveError::NotExpressible`] when the iteration kinds
    /// are not determined by the destination access (a spatial axis missing
    /// from the destination, or a reduction axis indexing it) — such a
    /// machine cannot be described by loops + accesses alone.
    pub fn from_accelerator(desc: &AcceleratorDesc) -> Result<IsaDesc, DeriveError> {
        let mut intrinsics = Vec::with_capacity(desc.intrinsics.len());
        for intr in &desc.intrinsics {
            let mut in_dst = vec![false; intr.iters.len()];
            for terms in &intr.dst.index {
                for &t in terms {
                    if let Some(slot) = in_dst.get_mut(t) {
                        *slot = true;
                    }
                }
            }
            for (pos, iter) in intr.iters.iter().enumerate() {
                let derived = if in_dst[pos] {
                    IterKind::Spatial
                } else {
                    IterKind::Reduction
                };
                if derived != iter.kind {
                    return Err(DeriveError::NotExpressible {
                        intrinsic: intr.name.clone(),
                        detail: format!(
                            "iteration `{}` is {} but {} the destination",
                            iter.name,
                            iter.kind,
                            if in_dst[pos] {
                                "indexes"
                            } else {
                                "never indexes"
                            }
                        ),
                    });
                }
            }
            let loops: Vec<IsaLoop> = intr
                .iters
                .iter()
                .map(|it| IsaLoop {
                    name: it.name.clone(),
                    trip: it.extent,
                })
                .collect();
            let srcs: Vec<IsaAccess> = intr
                .srcs
                .iter()
                .map(|o| IsaAccess {
                    name: o.name.clone(),
                    dims: o.index.clone(),
                })
                .collect();
            let dst = IsaAccess {
                name: intr.dst.name.clone(),
                dims: intr.dst.index.clone(),
            };
            let (loads, store) = match &intr.memory {
                MemoryDesc::Fragment { load, store } => {
                    let loads = srcs
                        .iter()
                        .map(|src| IsaTransfer {
                            instruction: load.clone(),
                            operand: src.name.clone(),
                            strides: Some(dense_strides(&access_shape(&loops, src))),
                            base: None,
                        })
                        .collect();
                    let store = IsaTransfer {
                        instruction: store.clone(),
                        operand: dst.name.clone(),
                        strides: Some(dense_strides(&access_shape(&loops, &dst))),
                        base: None,
                    };
                    (loads, Some(store))
                }
                MemoryDesc::Implicit => (Vec::new(), None),
            };
            intrinsics.push(IsaIntrinsic {
                name: intr.name.clone(),
                op: intr.op,
                loops,
                srcs,
                dst,
                loads,
                store,
                latency: intr.latency,
                initiation_interval: intr.initiation_interval,
                src_dtype: intr.src_dtype,
                acc_dtype: intr.acc_dtype,
            });
        }
        Ok(IsaDesc {
            name: desc.name.clone(),
            levels: desc.levels.clone(),
            intrinsics,
            clock_ghz: desc.clock_ghz,
            scalar_ops_per_core_cycle: desc.scalar_ops_per_core_cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn whole_catalog_round_trips_through_the_isa_form() {
        for desc in catalog::descriptors() {
            let isa = IsaDesc::from_accelerator(&desc)
                .unwrap_or_else(|e| panic!("{} not expressible: {e}", desc.name));
            let derived = derive_abstraction(&isa)
                .unwrap_or_else(|e| panic!("{} derivation failed: {e}", desc.name));
            assert_eq!(
                derived, desc,
                "derive(from_accelerator) != id for {}",
                desc.name
            );
        }
    }

    #[test]
    fn derived_kinds_are_dst_determined() {
        let isa = IsaDesc::from_accelerator(&catalog::descriptors()[0]).unwrap();
        // wmma: Dst[i1, i2] — i1/i2 spatial, r1 reduction.
        let derived = derive_abstraction(&isa).unwrap();
        let kinds: Vec<IterKind> = derived.intrinsics[0].iters.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![IterKind::Spatial, IterKind::Spatial, IterKind::Reduction]
        );
    }

    #[test]
    fn omitted_strides_are_derived_dense() {
        let mut isa = IsaDesc::from_accelerator(&catalog::descriptors()[0]).unwrap();
        for intr in &mut isa.intrinsics {
            for load in &mut intr.loads {
                load.strides = None;
            }
            if let Some(store) = &mut intr.store {
                store.strides = None;
            }
        }
        assert_eq!(derive_abstraction(&isa).unwrap(), catalog::descriptors()[0]);
    }

    #[test]
    fn wrong_strides_are_rejected() {
        let mut isa = IsaDesc::from_accelerator(&catalog::descriptors()[0]).unwrap();
        isa.intrinsics[0].loads[0].strides = Some(vec![1, 16]);
        let err = derive_abstraction(&isa).unwrap_err();
        assert!(
            matches!(err, DeriveError::StrideMismatch { ref operand, .. } if operand == "Src1"),
            "{err}"
        );
    }

    #[test]
    fn window_access_shape_overlaps() {
        // virtual-conv's Src1[r1, i2 + r2]: the line buffer spans
        // i2 + r2 − 1 positions.
        let conv = catalog::descriptors()
            .into_iter()
            .find(|d| d.name == "virtual-conv")
            .unwrap();
        let isa = IsaDesc::from_accelerator(&conv).unwrap();
        let intr = &isa.intrinsics[0];
        let src1 = &intr.srcs[0];
        let shape = access_shape(&intr.loops, src1);
        let built = conv.intrinsics[0].build();
        let spec_shape = built
            .compute
            .fragment_shape(crate::abstraction::OperandRef::Src(0));
        assert_eq!(shape, spec_shape);
    }

    #[test]
    fn missing_store_is_inconsistent() {
        let mut isa = IsaDesc::from_accelerator(&catalog::descriptors()[0]).unwrap();
        isa.intrinsics[0].store = None;
        let err = derive_abstraction(&isa).unwrap_err();
        assert!(
            matches!(err, DeriveError::InconsistentTransfers { .. }),
            "{err}"
        );
    }

    #[test]
    fn mixed_load_instructions_are_rejected() {
        let mut isa = IsaDesc::from_accelerator(&catalog::descriptors()[0]).unwrap();
        isa.intrinsics[0].loads[1].instruction = "other_load".into();
        let err = derive_abstraction(&isa).unwrap_err();
        assert!(
            matches!(err, DeriveError::MixedLoadInstructions { .. }),
            "{err}"
        );
    }

    #[test]
    fn spatial_axis_missing_from_dst_is_not_expressible() {
        let mut desc = catalog::descriptors()[5].clone(); // mini
                                                          // Force a reduction axis to be labelled spatial: the ISA form cannot
                                                          // represent that.
        let pos = desc.intrinsics[0]
            .iters
            .iter()
            .position(|i| i.kind == IterKind::Reduction)
            .unwrap();
        desc.intrinsics[0].iters[pos].kind = IterKind::Spatial;
        let err = IsaDesc::from_accelerator(&desc).unwrap_err();
        assert!(matches!(err, DeriveError::NotExpressible { .. }), "{err}");
    }

    #[test]
    fn dense_strides_are_row_major() {
        assert_eq!(dense_strides(&[4, 10]), vec![10, 1]);
        assert_eq!(dense_strides(&[2, 3, 5]), vec![15, 5, 1]);
        assert_eq!(dense_strides(&[7]), vec![1]);
        assert_eq!(dense_strides(&[]), Vec::<i64>::new());
    }
}

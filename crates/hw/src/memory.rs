//! Hardware **memory abstraction** (paper Def 4.2).
//!
//! A memory abstraction is a list of scoped transfer statements. Each
//! statement moves one operand between two scopes; the source address is
//! parameterised by a base address and per-dimension strides that the
//! compiler fills in during memory mapping:
//!
//! ```text
//! reg.Src1[i1, r1]  = shared.Src1[addr_a + i1*stride_a + r1]
//! reg.Src2[r1, i2]  = shared.Src2[addr_b + r1*stride_b + i2]
//! global.Dst[addr_c + i1*stride_c + i2] = reg.Dst[i1, i2]
//! ```

use crate::abstraction::OperandRef;
use amos_ir::nodes::Scope;
use std::fmt;

/// Direction of a memory statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDir {
    /// Load an operand fragment toward the PE array (e.g. shared → reg).
    Load,
    /// Store an operand fragment away from the PE array (e.g. reg → global).
    Store,
}

/// One statement of the memory abstraction: a scoped fragment transfer for a
/// single operand, implemented by one memory intrinsic (or fused into the
/// compute intrinsic on accelerators like Mali that have no explicit
/// load/store intrinsics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemStatement {
    /// Which operand moves.
    pub operand: OperandRef,
    /// Scope the data comes from.
    pub from: Scope,
    /// Scope the data goes to.
    pub to: Scope,
    /// Load or store (relative to the PE array).
    pub dir: TransferDir,
    /// Name of the memory intrinsic implementing the transfer; `None` when
    /// the transfer is implicit in the compute intrinsic.
    pub intrinsic: Option<String>,
}

/// The full memory abstraction of one intrinsic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryAbstraction {
    statements: Vec<MemStatement>,
}

impl MemoryAbstraction {
    /// Creates a memory abstraction from statements.
    pub fn new(statements: Vec<MemStatement>) -> Self {
        MemoryAbstraction { statements }
    }

    /// The conventional shape used by register-fragment accelerators
    /// (Tensor Core): every source loads shared → reg via `load_intrinsic`,
    /// the destination stores reg → global via `store_intrinsic`.
    pub fn fragment_style(num_srcs: usize, load_intrinsic: &str, store_intrinsic: &str) -> Self {
        let mut statements: Vec<MemStatement> = (0..num_srcs)
            .map(|m| MemStatement {
                operand: OperandRef::Src(m),
                from: Scope::Shared,
                to: Scope::Register,
                dir: TransferDir::Load,
                intrinsic: Some(load_intrinsic.to_string()),
            })
            .collect();
        statements.push(MemStatement {
            operand: OperandRef::Dst,
            from: Scope::Register,
            to: Scope::Global,
            dir: TransferDir::Store,
            intrinsic: Some(store_intrinsic.to_string()),
        });
        MemoryAbstraction::new(statements)
    }

    /// The shape used by accelerators whose compute intrinsic reads operands
    /// from registers directly without explicit memory intrinsics (AVX-512,
    /// Mali `arm_dot`): transfers exist but have no named intrinsic.
    pub fn implicit_style(num_srcs: usize) -> Self {
        let mut statements: Vec<MemStatement> = (0..num_srcs)
            .map(|m| MemStatement {
                operand: OperandRef::Src(m),
                from: Scope::Shared,
                to: Scope::Register,
                dir: TransferDir::Load,
                intrinsic: None,
            })
            .collect();
        statements.push(MemStatement {
            operand: OperandRef::Dst,
            from: Scope::Register,
            to: Scope::Global,
            dir: TransferDir::Store,
            intrinsic: None,
        });
        MemoryAbstraction::new(statements)
    }

    /// All statements.
    pub fn statements(&self) -> &[MemStatement] {
        &self.statements
    }

    /// The statement transferring a given operand, if any.
    pub fn statement_for(&self, operand: OperandRef) -> Option<&MemStatement> {
        self.statements.iter().find(|s| s.operand == operand)
    }
}

impl fmt::Display for MemoryAbstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.statements {
            let name = s.operand.to_string();
            match s.dir {
                TransferDir::Load => writeln!(
                    f,
                    "{}.{}[j̃] = {}.{}[addr + j̃·stride]",
                    s.to, name, s.from, name
                )?,
                TransferDir::Store => writeln!(
                    f,
                    "{}.{}[addr + ĩ·stride] = {}.{}[ĩ]",
                    s.to, name, s.from, name
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_style_matches_wmma_pattern() {
        let m = MemoryAbstraction::fragment_style(2, "load_matrix_sync", "store_matrix_sync");
        assert_eq!(m.statements().len(), 3);
        let s0 = m.statement_for(OperandRef::Src(0)).unwrap();
        assert_eq!(s0.from, Scope::Shared);
        assert_eq!(s0.to, Scope::Register);
        assert_eq!(s0.dir, TransferDir::Load);
        assert_eq!(s0.intrinsic.as_deref(), Some("load_matrix_sync"));

        let d = m.statement_for(OperandRef::Dst).unwrap();
        assert_eq!(d.from, Scope::Register);
        assert_eq!(d.to, Scope::Global);
        assert_eq!(d.dir, TransferDir::Store);
        assert_eq!(d.intrinsic.as_deref(), Some("store_matrix_sync"));
    }

    #[test]
    fn implicit_style_has_no_intrinsics() {
        let m = MemoryAbstraction::implicit_style(2);
        assert!(m.statements().iter().all(|s| s.intrinsic.is_none()));
        assert_eq!(m.statements().len(), 3);
    }

    #[test]
    fn display_shows_scoped_statements() {
        let m = MemoryAbstraction::fragment_style(1, "ld", "st");
        let text = m.to_string();
        assert!(text.contains("reg.Src1"));
        assert!(text.contains("shared.Src1"));
        assert!(text.contains("global.Dst"));
    }
}

//! Declarative accelerator descriptions — the *data* layer behind the
//! catalog.
//!
//! Paper §7.5 argues that retargeting AMOS to a new spatial accelerator
//! should take "a few lines of description". This module makes that literal:
//! an accelerator is a plain-data [`AcceleratorDesc`] (hierarchy levels plus
//! one or more [`IntrinsicDesc`] entries), and [`AcceleratorDesc::build`]
//! lowers it to the validated [`AcceleratorSpec`] the rest of the stack
//! consumes. The catalog authors every built-in accelerator this way, and
//! [`crate::Registry`] keeps the descriptions addressable by name.
//!
//! Descriptions are deliberately less expressive than the spec layer: operand
//! indices are sums of iteration positions (enough for every intrinsic in the
//! paper, including window-style convolution units), and memory follows one
//! of the two conventional shapes ([`MemoryDesc::Fragment`] /
//! [`MemoryDesc::Implicit`]). Building a description produces a spec
//! `PartialEq`-identical to one written by hand against the spec types.

use crate::abstraction::{ComputeAbstraction, IntrinsicIter, OperandSpec};
use crate::accelerator::{AcceleratorSpec, Level, MemorySpec};
use crate::intrinsic::Intrinsic;
use crate::memory::MemoryAbstraction;
use amos_ir::{DType, Expr, IterId, IterKind, OpKind};

/// One iteration axis of a described intrinsic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterDesc {
    /// Display name (`i1`, `r1`, ...).
    pub name: String,
    /// Problem-size extent of the axis.
    pub extent: i64,
    /// Spatial or reduction.
    pub kind: IterKind,
}

impl IterDesc {
    /// A spatial iteration axis.
    pub fn spatial(name: impl Into<String>, extent: i64) -> Self {
        IterDesc {
            name: name.into(),
            extent,
            kind: IterKind::Spatial,
        }
    }

    /// A reduction iteration axis.
    pub fn reduce(name: impl Into<String>, extent: i64) -> Self {
        IterDesc {
            name: name.into(),
            extent,
            kind: IterKind::Reduction,
        }
    }
}

/// One operand of a described intrinsic.
///
/// `index[d]` lists the iteration positions (into [`IntrinsicDesc::iters`])
/// summed to index dimension `d`: `[[0], [2]]` reads `Src[i0, i2]`, while a
/// window-style `[[2], [1, 3]]` reads `Src[i2, i1 + i3]`. An empty `index`
/// is a scalar operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandDesc {
    /// Operand name for display (`Src1`, `Dst`, ...).
    pub name: String,
    /// Per-dimension sums of iteration positions.
    pub index: Vec<Vec<usize>>,
}

impl OperandDesc {
    /// An operand whose dimensions are arbitrary sums of iterations.
    pub fn new(name: impl Into<String>, index: &[&[usize]]) -> Self {
        OperandDesc {
            name: name.into(),
            index: index.iter().map(|terms| terms.to_vec()).collect(),
        }
    }

    /// The common case: one iteration per dimension.
    pub fn simple(name: impl Into<String>, iters: &[usize]) -> Self {
        OperandDesc {
            name: name.into(),
            index: iters.iter().map(|&i| vec![i]).collect(),
        }
    }

    /// A zero-dimensional (scalar) operand.
    pub fn scalar(name: impl Into<String>) -> Self {
        OperandDesc {
            name: name.into(),
            index: Vec::new(),
        }
    }

    fn build(&self) -> OperandSpec {
        OperandSpec {
            name: self.name.clone(),
            dims: self.index.iter().map(|terms| dim_expr(terms)).collect(),
        }
    }
}

/// Folds a sum of iteration positions into an affine index expression.
fn dim_expr(terms: &[usize]) -> Expr {
    let (&first, rest) = terms
        .split_first()
        .expect("an operand dimension must reference at least one iteration");
    rest.iter().fold(Expr::Var(IterId(first as u32)), |e, &t| {
        e + Expr::Var(IterId(t as u32))
    })
}

/// The memory-abstraction shape of a described intrinsic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryDesc {
    /// Explicit fragment load/store intrinsics (Tensor-Core style): every
    /// source loads shared → reg via `load`, the destination stores
    /// reg → global via `store`.
    Fragment {
        /// Name of the load intrinsic (`load_matrix_sync`, `mvin`, ...).
        load: String,
        /// Name of the store intrinsic (`store_matrix_sync`, `mvout`, ...).
        store: String,
    },
    /// Transfers exist but are implicit in the compute intrinsic (AVX-512,
    /// Mali `arm_dot`): no named memory intrinsics.
    Implicit,
}

impl MemoryDesc {
    /// Shorthand for [`MemoryDesc::Fragment`].
    pub fn fragment(load: impl Into<String>, store: impl Into<String>) -> Self {
        MemoryDesc::Fragment {
            load: load.into(),
            store: store.into(),
        }
    }

    fn build(&self, num_srcs: usize) -> MemoryAbstraction {
        match self {
            MemoryDesc::Fragment { load, store } => {
                MemoryAbstraction::fragment_style(num_srcs, load, store)
            }
            MemoryDesc::Implicit => MemoryAbstraction::implicit_style(num_srcs),
        }
    }
}

/// A complete declarative intrinsic description.
#[derive(Debug, Clone, PartialEq)]
pub struct IntrinsicDesc {
    /// Name of the compute intrinsic (e.g. `mma_sync`).
    pub name: String,
    /// Iteration axes in declaration order; operand indices refer to these
    /// by position.
    pub iters: Vec<IterDesc>,
    /// Source operands.
    pub srcs: Vec<OperandDesc>,
    /// Destination operand.
    pub dst: OperandDesc,
    /// The arithmetic operation `F` of Def 4.1.
    pub op: OpKind,
    /// Memory-abstraction shape.
    pub memory: MemoryDesc,
    /// Issue-to-retire latency of one call, in cycles.
    pub latency: u64,
    /// Pipelined initiation interval in cycles.
    pub initiation_interval: u64,
    /// Element type the sources are consumed in.
    pub src_dtype: DType,
    /// Element type of the accumulator/destination.
    pub acc_dtype: DType,
}

impl IntrinsicDesc {
    /// Lowers the description to a validated [`Intrinsic`].
    ///
    /// # Panics
    ///
    /// Panics when the description is inconsistent (operand referencing an
    /// unknown iteration, operand count not matching the arity of `op`,
    /// non-positive extent) — descriptions are authored data, so violations
    /// are programming errors, mirroring [`ComputeAbstraction::new`].
    pub fn build(&self) -> Intrinsic {
        let iters = self
            .iters
            .iter()
            .map(|it| IntrinsicIter {
                name: it.name.clone(),
                extent: it.extent,
                kind: it.kind,
            })
            .collect();
        let srcs: Vec<OperandSpec> = self.srcs.iter().map(OperandDesc::build).collect();
        let num_srcs = srcs.len();
        let compute = ComputeAbstraction::new(iters, srcs, self.dst.build(), self.op);
        Intrinsic {
            name: self.name.clone(),
            compute,
            memory: self.memory.build(num_srcs),
            latency: self.latency,
            initiation_interval: self.initiation_interval,
            src_dtype: self.src_dtype,
            acc_dtype: self.acc_dtype,
        }
    }
}

/// One hierarchy level of a described accelerator, with symmetric load/store
/// bandwidth (every catalog machine models memory this way).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelDesc {
    /// Display name (`pe-array`, `core`, `device`, ...).
    pub name: String,
    /// Units of the previous (inner) level contained in one unit of this
    /// level; the innermost level uses 1.
    pub inner_units: u64,
    /// Memory capacity per unit, in bytes.
    pub capacity_bytes: u64,
    /// Sustained bandwidth per unit, bytes per cycle (load and store).
    pub bytes_per_cycle: f64,
}

impl LevelDesc {
    /// One row of a hierarchy table.
    pub fn new(
        name: impl Into<String>,
        inner_units: u64,
        capacity_bytes: u64,
        bytes_per_cycle: f64,
    ) -> Self {
        LevelDesc {
            name: name.into(),
            inner_units,
            capacity_bytes,
            bytes_per_cycle,
        }
    }

    fn build(&self) -> Level {
        Level {
            name: self.name.clone(),
            inner_units: self.inner_units,
            memory: MemorySpec::symmetric(self.capacity_bytes, self.bytes_per_cycle),
        }
    }
}

/// A complete declarative accelerator description: the "few lines" of §7.5.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorDesc {
    /// Accelerator name (`v100`, `virtual-axpy`, ...); the registry key.
    pub name: String,
    /// Hierarchy levels from innermost (PE array) to outermost (device).
    pub levels: Vec<LevelDesc>,
    /// Intrinsics exposed by the PE array; the first is the primary one,
    /// the rest are heterogeneous extras (e.g. an NPU vector unit).
    pub intrinsics: Vec<IntrinsicDesc>,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Scalar multiply-add throughput per core per cycle (baseline fallback).
    pub scalar_ops_per_core_cycle: f64,
}

impl AcceleratorDesc {
    /// Lowers the description to a validated [`AcceleratorSpec`].
    ///
    /// # Panics
    ///
    /// Panics when the description has no intrinsic or an intrinsic is
    /// inconsistent (see [`IntrinsicDesc::build`]).
    pub fn build(&self) -> AcceleratorSpec {
        let (primary, extras) = self
            .intrinsics
            .split_first()
            .expect("an accelerator description must list at least one intrinsic");
        AcceleratorSpec {
            name: self.name.clone(),
            levels: self.levels.iter().map(LevelDesc::build).collect(),
            intrinsic: primary.build(),
            extra_intrinsics: extras.iter().map(IntrinsicDesc::build).collect(),
            clock_ghz: self.clock_ghz,
            scalar_ops_per_core_cycle: self.scalar_ops_per_core_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::OperandRef;

    fn toy_desc() -> AcceleratorDesc {
        AcceleratorDesc {
            name: "toy".into(),
            levels: vec![
                LevelDesc::new("pe-array", 1, 4 * 1024, 32.0),
                LevelDesc::new("core", 2, 32 * 1024, 32.0),
                LevelDesc::new("device", 4, 1 << 30, 64.0),
            ],
            intrinsics: vec![IntrinsicDesc {
                name: "toy_mma".into(),
                iters: vec![
                    IterDesc::spatial("i1", 4),
                    IterDesc::spatial("i2", 4),
                    IterDesc::reduce("r1", 4),
                ],
                srcs: vec![
                    OperandDesc::simple("Src1", &[0, 2]),
                    OperandDesc::simple("Src2", &[2, 1]),
                ],
                dst: OperandDesc::simple("Dst", &[0, 1]),
                op: OpKind::MulAcc,
                memory: MemoryDesc::fragment("ld", "st"),
                latency: 8,
                initiation_interval: 4,
                src_dtype: DType::F16,
                acc_dtype: DType::F32,
            }],
            clock_ghz: 1.0,
            scalar_ops_per_core_cycle: 2.0,
        }
    }

    #[test]
    fn build_produces_validated_spec() {
        let spec = toy_desc().build();
        assert_eq!(spec.name, "toy");
        assert_eq!(spec.num_levels(), 3);
        assert_eq!(spec.total_pe_arrays(), 8);
        assert_eq!(spec.intrinsic.name, "toy_mma");
        assert_eq!(spec.intrinsic.scalar_ops(), 64);
        assert!(spec.extra_intrinsics.is_empty());
    }

    #[test]
    fn simple_operand_matches_spec_layer() {
        // The desc layer must produce exactly what `OperandSpec::simple`
        // would: single-variable dims, no `Add` wrappers.
        let built = OperandDesc::simple("Src1", &[0, 2]).build();
        assert_eq!(built, OperandSpec::simple("Src1", &[0, 2]));
        let scalar = OperandDesc::scalar("Src1").build();
        assert_eq!(scalar, OperandSpec::scalar("Src1"));
    }

    #[test]
    fn compound_dimension_folds_to_sum() {
        let built = OperandDesc::new("Src1", &[&[2], &[1, 3]]).build();
        assert_eq!(
            built.dims,
            vec![
                Expr::Var(IterId(2)),
                Expr::Var(IterId(1)) + Expr::Var(IterId(3)),
            ]
        );
    }

    #[test]
    fn window_intrinsic_fragment_shape() {
        let conv = IntrinsicDesc {
            name: "conv".into(),
            iters: vec![
                IterDesc::spatial("i1", 4),
                IterDesc::spatial("i2", 8),
                IterDesc::reduce("r1", 4),
                IterDesc::reduce("r2", 3),
            ],
            srcs: vec![
                OperandDesc::new("Src1", &[&[2], &[1, 3]]),
                OperandDesc::simple("Src2", &[0, 2, 3]),
            ],
            dst: OperandDesc::simple("Dst", &[0, 1]),
            op: OpKind::MulAcc,
            memory: MemoryDesc::Implicit,
            latency: 4,
            initiation_interval: 2,
            src_dtype: DType::F16,
            acc_dtype: DType::F32,
        }
        .build();
        // The line buffer spans i2 + r2 - 1 = 10 positions.
        assert_eq!(conv.compute.fragment_shape(OperandRef::Src(0)), vec![4, 10]);
        assert!(conv
            .memory
            .statements()
            .iter()
            .all(|s| s.intrinsic.is_none()));
    }

    #[test]
    fn extra_intrinsics_follow_the_primary() {
        let mut desc = toy_desc();
        let mut vec_unit = desc.intrinsics[0].clone();
        vec_unit.name = "toy_vec".into();
        desc.intrinsics.push(vec_unit);
        let spec = desc.build();
        let names: Vec<&str> = spec.all_intrinsics().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["toy_mma", "toy_vec"]);
    }
}

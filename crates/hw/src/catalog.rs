//! Catalog of intrinsics and accelerators used in the AMOS evaluation.
//!
//! The commercial accelerators are parameterised from their public
//! whitepapers (V100/A100 SM counts, shared-memory sizes, DRAM bandwidths);
//! the intrinsic latencies follow published microbenchmarking (Jia et al.,
//! "Dissecting the NVIDIA Volta GPU Architecture"). The three *virtual*
//! accelerators (AXPY/GEMV/CONV units) reproduce paper §7.5.
//!
//! All figures drive a simulator, not silicon; see DESIGN.md §2 for the
//! substitution rationale.

use crate::abstraction::{ComputeAbstraction, IntrinsicIter, OperandSpec};
use crate::accelerator::{AcceleratorSpec, Level, MemorySpec};
use crate::intrinsic::Intrinsic;
use crate::memory::MemoryAbstraction;
use amos_ir::{DType, Expr, IterId, IterKind, OpKind};

fn iter(name: &str, extent: i64, kind: IterKind) -> IntrinsicIter {
    IntrinsicIter {
        name: name.into(),
        extent,
        kind,
    }
}

/// The `mma_sync` WMMA intrinsic: a 16x16x16 f16 matrix multiply-accumulate
/// with explicit `load_matrix_sync`/`store_matrix_sync` memory intrinsics.
pub fn wmma_16x16x16() -> Intrinsic {
    wmma_with_timing(64, 32)
}

/// WMMA with explicit pipeline timing, used to differentiate GPU generations.
pub fn wmma_with_timing(latency: u64, initiation_interval: u64) -> Intrinsic {
    let compute = ComputeAbstraction::new(
        vec![
            iter("i1", 16, IterKind::Spatial),
            iter("i2", 16, IterKind::Spatial),
            iter("r1", 16, IterKind::Reduction),
        ],
        vec![
            OperandSpec::simple("Src1", &[0, 2]),
            OperandSpec::simple("Src2", &[2, 1]),
        ],
        OperandSpec::simple("Dst", &[0, 1]),
        OpKind::MulAcc,
    );
    Intrinsic {
        name: "mma_sync".into(),
        compute,
        memory: MemoryAbstraction::fragment_style(2, "load_matrix_sync", "store_matrix_sync"),
        latency,
        initiation_interval,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// The simplified 2x2x2 Tensor Core of the paper's Figure 3 running example.
pub fn mini_mma_2x2x2() -> Intrinsic {
    let compute = ComputeAbstraction::new(
        vec![
            iter("i1", 2, IterKind::Spatial),
            iter("i2", 2, IterKind::Spatial),
            iter("r1", 2, IterKind::Reduction),
        ],
        vec![
            OperandSpec::simple("Src1", &[0, 2]),
            OperandSpec::simple("Src2", &[2, 1]),
        ],
        OperandSpec::simple("Dst", &[0, 1]),
        OpKind::MulAcc,
    );
    Intrinsic {
        name: "mini_mma".into(),
        compute,
        memory: MemoryAbstraction::fragment_style(2, "load_matrix", "store_matrix"),
        latency: 4,
        initiation_interval: 2,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// The AVX-512 VNNI `_mm512_dpbusds_epi32` intrinsic used as the paper does
/// (§7.5): a 16x4 *matrix-vector* multiply-accumulate. Lane `i1` holds row
/// `Src1[i1, r1]`; the second operand is the 4-element vector `Src2[r1]`
/// replicated across lanes (the replication is a register-layout detail that
/// the memory mapping performs).
pub fn avx512_vnni() -> Intrinsic {
    let compute = ComputeAbstraction::new(
        vec![
            iter("i1", 16, IterKind::Spatial),
            iter("r1", 4, IterKind::Reduction),
        ],
        vec![
            OperandSpec::simple("Src1", &[0, 1]),
            OperandSpec::simple("Src2", &[1]),
        ],
        OperandSpec::simple("Dst", &[0]),
        OpKind::MulAcc,
    );
    Intrinsic {
        name: "_mm512_dpbusds_epi32".into(),
        compute,
        memory: MemoryAbstraction::implicit_style(2),
        latency: 5,
        initiation_interval: 1,
        src_dtype: DType::I8,
        acc_dtype: DType::I32,
    }
}

/// The Mali Bifrost `arm_dot` intrinsic: one 4-element i8 dot product
/// accumulated into a scalar i32, with no explicit memory intrinsics.
pub fn arm_dot4() -> Intrinsic {
    let compute = ComputeAbstraction::new(
        vec![iter("r1", 4, IterKind::Reduction)],
        vec![
            OperandSpec::simple("Src1", &[0]),
            OperandSpec::simple("Src2", &[0]),
        ],
        OperandSpec::scalar("Dst"),
        OpKind::MulAcc,
    );
    Intrinsic {
        name: "arm_dot".into(),
        compute,
        memory: MemoryAbstraction::implicit_style(2),
        latency: 4,
        initiation_interval: 1,
        src_dtype: DType::I8,
        acc_dtype: DType::I32,
    }
}

/// §7.5 virtual accelerator intrinsic: a BLAS-1 AXPY unit
/// `Dst[i1] += Src1[] * Src2[i1]` over 32 lanes (Src1 is a broadcast scalar).
pub fn axpy_unit() -> Intrinsic {
    let compute = ComputeAbstraction::new(
        vec![iter("i1", 32, IterKind::Spatial)],
        vec![
            OperandSpec::scalar("Src1"),
            OperandSpec::simple("Src2", &[0]),
        ],
        OperandSpec::simple("Dst", &[0]),
        OpKind::MulAcc,
    );
    Intrinsic {
        name: "axpy32".into(),
        compute,
        memory: MemoryAbstraction::fragment_style(2, "load_vec", "store_vec"),
        latency: 8,
        initiation_interval: 2,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// §7.5 virtual accelerator intrinsic: a BLAS-2 GEMV unit
/// `Dst[i1] += Src1[i1, r1] * Src2[r1]` (16x16 matrix times 16-vector).
pub fn gemv_unit() -> Intrinsic {
    let compute = ComputeAbstraction::new(
        vec![
            iter("i1", 16, IterKind::Spatial),
            iter("r1", 16, IterKind::Reduction),
        ],
        vec![
            OperandSpec::simple("Src1", &[0, 1]),
            OperandSpec::simple("Src2", &[1]),
        ],
        OperandSpec::simple("Dst", &[0]),
        OpKind::MulAcc,
    );
    Intrinsic {
        name: "gemv16".into(),
        compute,
        memory: MemoryAbstraction::fragment_style(2, "load_tile", "store_tile"),
        latency: 16,
        initiation_interval: 8,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// §7.5 virtual accelerator intrinsic: a BLAS-3-style 1D convolution engine
/// `Dst[i1, i2] += Src1[r1, i2 + r2] * Src2[i1, r1, r2]` — output channels
/// `i1`, output positions `i2`, input channels `r1` and a 3-tap window `r2`.
pub fn conv_unit() -> Intrinsic {
    let compute = ComputeAbstraction::new(
        vec![
            iter("i1", 8, IterKind::Spatial),
            iter("i2", 8, IterKind::Spatial),
            iter("r1", 8, IterKind::Reduction),
            iter("r2", 3, IterKind::Reduction),
        ],
        vec![
            OperandSpec {
                name: "Src1".into(),
                dims: vec![
                    Expr::Var(IterId(2)),
                    Expr::Var(IterId(1)) + Expr::Var(IterId(3)),
                ],
            },
            OperandSpec::simple("Src2", &[0, 2, 3]),
        ],
        OperandSpec::simple("Dst", &[0, 1]),
        OpKind::MulAcc,
    );
    Intrinsic {
        name: "conv8x8x3".into(),
        compute,
        memory: MemoryAbstraction::fragment_style(2, "load_line", "store_line"),
        latency: 24,
        initiation_interval: 12,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// NVIDIA V100 (Volta): 80 SMs x 4 sub-cores, 96 KiB shared memory per SM,
/// ~900 GB/s HBM2 at 1.53 GHz.
pub fn v100() -> AcceleratorSpec {
    AcceleratorSpec {
        name: "v100".into(),
        levels: vec![
            Level {
                name: "pe-array".into(),
                inner_units: 1,
                // 64 KiB register file per sub-core; shared->reg ~128 B/cyc.
                memory: MemorySpec::symmetric(64 * 1024, 128.0),
            },
            Level {
                name: "sub-core".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(0, 0.0),
            },
            Level {
                name: "core".into(),
                inner_units: 4,
                // 96 KiB shared memory per SM, ~128 B/cyc from L2/DRAM side.
                memory: MemorySpec::symmetric(96 * 1024, 128.0),
            },
            Level {
                name: "device".into(),
                inner_units: 80,
                // 900 GB/s / 1.53 GHz ≈ 588 B/cycle aggregate.
                memory: MemorySpec::symmetric(16 << 30, 588.0),
            },
        ],
        intrinsic: wmma_with_timing(64, 32),
        extra_intrinsics: Vec::new(),
        clock_ghz: 1.53,
        scalar_ops_per_core_cycle: 64.0, // fp32 FMAs per SM per cycle
    }
}

/// NVIDIA A100 (Ampere): 108 SMs x 4 sub-cores, 164 KiB shared memory per
/// SM, ~1555 GB/s HBM2e at 1.41 GHz, third-generation Tensor Cores with
/// twice the per-subcore WMMA throughput.
pub fn a100() -> AcceleratorSpec {
    AcceleratorSpec {
        name: "a100".into(),
        levels: vec![
            Level {
                name: "pe-array".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(64 * 1024, 256.0),
            },
            Level {
                name: "sub-core".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(0, 0.0),
            },
            Level {
                name: "core".into(),
                inner_units: 4,
                memory: MemorySpec::symmetric(164 * 1024, 256.0),
            },
            Level {
                name: "device".into(),
                inner_units: 108,
                // 1555 GB/s / 1.41 GHz ≈ 1103 B/cycle aggregate.
                memory: MemorySpec::symmetric(40u64 << 30, 1103.0),
            },
        ],
        intrinsic: wmma_with_timing(32, 16),
        extra_intrinsics: Vec::new(),
        clock_ghz: 1.41,
        scalar_ops_per_core_cycle: 64.0,
    }
}

/// Intel Xeon Silver 4110-class CPU with AVX-512 VNNI: 8 cores, 32 KiB L1D,
/// ~2.1 GHz, ~100 GB/s socket bandwidth.
pub fn xeon_avx512() -> AcceleratorSpec {
    AcceleratorSpec {
        name: "xeon-avx512".into(),
        levels: vec![
            Level {
                name: "vector-unit".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(2 * 1024, 128.0), // zmm register file
            },
            Level {
                name: "port".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(0, 0.0),
            },
            Level {
                name: "core".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(32 * 1024, 64.0), // L1D
            },
            Level {
                name: "socket".into(),
                inner_units: 8,
                // ~100 GB/s / 2.1 GHz ≈ 48 B/cycle.
                memory: MemorySpec::symmetric(64u64 << 30, 48.0),
            },
        ],
        intrinsic: avx512_vnni(),
        extra_intrinsics: Vec::new(),
        clock_ghz: 2.1,
        scalar_ops_per_core_cycle: 16.0, // AVX2 fp32 FMA fallback
    }
}

/// ARM Mali G76 (Bifrost): 12 cores x 3 execution engines with `arm_dot`,
/// ~0.8 GHz, ~15 GB/s LPDDR bandwidth.
pub fn mali_g76() -> AcceleratorSpec {
    AcceleratorSpec {
        name: "mali-g76".into(),
        levels: vec![
            Level {
                name: "dot-unit".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(1024, 32.0),
            },
            Level {
                name: "engine".into(),
                inner_units: 3,
                memory: MemorySpec::symmetric(0, 0.0),
            },
            Level {
                name: "core".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(16 * 1024, 16.0), // load/store cache
            },
            Level {
                name: "device".into(),
                inner_units: 12,
                // ~15 GB/s / 0.8 GHz ≈ 19 B/cycle.
                memory: MemorySpec::symmetric(4u64 << 30, 19.0),
            },
        ],
        intrinsic: arm_dot4(),
        extra_intrinsics: Vec::new(),
        clock_ghz: 0.8,
        scalar_ops_per_core_cycle: 8.0,
    }
}

/// The tiny accelerator of the Figure 3 running example: a 2x2x2 matrix
/// unit with just enough staging memory to exercise every constraint.
pub fn mini_accel() -> AcceleratorSpec {
    AcceleratorSpec {
        name: "mini".into(),
        levels: vec![
            Level {
                name: "pe-array".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(256, 8.0),
            },
            Level {
                name: "core".into(),
                inner_units: 2,
                memory: MemorySpec::symmetric(1024, 8.0),
            },
            Level {
                name: "device".into(),
                inner_units: 2,
                memory: MemorySpec::symmetric(1 << 20, 16.0),
            },
        ],
        intrinsic: mini_mma_2x2x2(),
        extra_intrinsics: Vec::new(),
        clock_ghz: 1.0,
        scalar_ops_per_core_cycle: 1.0,
    }
}

fn virtual_accel(name: &str, intrinsic: Intrinsic) -> AcceleratorSpec {
    AcceleratorSpec {
        name: name.into(),
        levels: vec![
            Level {
                name: "pe-array".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(16 * 1024, 64.0),
            },
            Level {
                name: "core".into(),
                inner_units: 4,
                memory: MemorySpec::symmetric(64 * 1024, 64.0),
            },
            Level {
                name: "device".into(),
                inner_units: 16,
                memory: MemorySpec::symmetric(8u64 << 30, 256.0),
            },
        ],
        intrinsic,
        extra_intrinsics: Vec::new(),
        clock_ghz: 1.0,
        scalar_ops_per_core_cycle: 4.0,
    }
}

/// NVIDIA T4 (Turing): 40 SMs x 4 sub-cores, 64 KiB shared memory per SM,
/// ~320 GB/s GDDR6 at 1.35 GHz — a smaller Tensor Core part that stresses
/// the schedule space differently from V100/A100.
pub fn t4() -> AcceleratorSpec {
    AcceleratorSpec {
        name: "t4".into(),
        levels: vec![
            Level {
                name: "pe-array".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(64 * 1024, 128.0),
            },
            Level {
                name: "sub-core".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(0, 0.0),
            },
            Level {
                name: "core".into(),
                inner_units: 4,
                memory: MemorySpec::symmetric(64 * 1024, 128.0),
            },
            Level {
                name: "device".into(),
                inner_units: 40,
                // 320 GB/s / 1.35 GHz = 237 B/cycle aggregate.
                memory: MemorySpec::symmetric(16u64 << 30, 237.0),
            },
        ],
        intrinsic: wmma_with_timing(64, 32),
        clock_ghz: 1.35,
        scalar_ops_per_core_cycle: 64.0,
        extra_intrinsics: Vec::new(),
    }
}

/// A TPU-v1-style device (the paper's canonical systolic example): one huge
/// 128x128x128 matrix unit per core, few cores, large unified buffer. The
/// giant problem size makes padding the dominant effect for small operators.
pub fn tpu_like() -> AcceleratorSpec {
    let compute = ComputeAbstraction::new(
        vec![
            iter("i1", 128, IterKind::Spatial),
            iter("i2", 128, IterKind::Spatial),
            iter("r1", 128, IterKind::Reduction),
        ],
        vec![
            OperandSpec::simple("Src1", &[0, 2]),
            OperandSpec::simple("Src2", &[2, 1]),
        ],
        OperandSpec::simple("Dst", &[0, 1]),
        OpKind::MulAcc,
    );
    let mxu = Intrinsic {
        name: "mxu_128x128".into(),
        compute,
        memory: MemoryAbstraction::fragment_style(2, "load_tile", "store_tile"),
        latency: 256,
        initiation_interval: 128,
        src_dtype: DType::I8,
        acc_dtype: DType::I32,
    };
    AcceleratorSpec {
        name: "tpu-like".into(),
        levels: vec![
            Level {
                name: "mxu".into(),
                inner_units: 1,
                // Accumulators + weight FIFO.
                memory: MemorySpec::symmetric(256 * 1024, 512.0),
            },
            Level {
                name: "core".into(),
                inner_units: 1,
                // 24 MiB unified buffer.
                memory: MemorySpec::symmetric(24 * 1024 * 1024, 256.0),
            },
            Level {
                name: "device".into(),
                inner_units: 2,
                memory: MemorySpec::symmetric(8u64 << 30, 128.0),
            },
        ],
        intrinsic: mxu,
        clock_ghz: 0.7,
        scalar_ops_per_core_cycle: 4.0,
        extra_intrinsics: Vec::new(),
    }
}

/// A Gemmini-style INT8 systolic array (16x16x16), the paper's example of an
/// academic generator-produced accelerator.
pub fn gemmini_like() -> AcceleratorSpec {
    let compute = ComputeAbstraction::new(
        vec![
            iter("i1", 16, IterKind::Spatial),
            iter("i2", 16, IterKind::Spatial),
            iter("r1", 16, IterKind::Reduction),
        ],
        vec![
            OperandSpec::simple("Src1", &[0, 2]),
            OperandSpec::simple("Src2", &[2, 1]),
        ],
        OperandSpec::simple("Dst", &[0, 1]),
        OpKind::MulAcc,
    );
    let systolic = Intrinsic {
        name: "gemmini_matmul".into(),
        compute,
        memory: MemoryAbstraction::fragment_style(2, "mvin", "mvout"),
        latency: 48,
        initiation_interval: 16,
        src_dtype: DType::I8,
        acc_dtype: DType::I32,
    };
    AcceleratorSpec {
        name: "gemmini-like".into(),
        levels: vec![
            Level {
                name: "systolic-array".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(64 * 1024, 64.0), // accumulator SRAM
            },
            Level {
                name: "core".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(256 * 1024, 64.0), // scratchpad
            },
            Level {
                name: "device".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(4u64 << 30, 32.0),
            },
        ],
        intrinsic: systolic,
        clock_ghz: 1.0,
        scalar_ops_per_core_cycle: 2.0,
        extra_intrinsics: Vec::new(),
    }
}

/// An Ascend-910-style NPU with *heterogeneous* units (paper Fig 1 cites
/// Ascend's cube and vector units): a 16x16x16 cube matrix engine as the
/// primary intrinsic plus a 32-lane vector MAC unit. The explorer picks the
/// better unit per operator via `Explorer::explore_multi`.
pub fn ascend_npu() -> AcceleratorSpec {
    let cube = Intrinsic {
        name: "cube_mma".into(),
        ..wmma_with_timing(48, 24)
    };
    let vector = Intrinsic {
        name: "vec_mac".into(),
        compute: ComputeAbstraction::new(
            vec![
                iter("i1", 32, IterKind::Spatial),
                iter("r1", 4, IterKind::Reduction),
            ],
            vec![
                OperandSpec::simple("Src1", &[0, 1]),
                OperandSpec::simple("Src2", &[1]),
            ],
            OperandSpec::simple("Dst", &[0]),
            OpKind::MulAcc,
        ),
        memory: MemoryAbstraction::implicit_style(2),
        latency: 6,
        initiation_interval: 1,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    };
    AcceleratorSpec {
        name: "ascend-npu".into(),
        levels: vec![
            Level {
                name: "pe-array".into(),
                inner_units: 1,
                memory: MemorySpec::symmetric(64 * 1024, 256.0),
            },
            Level {
                name: "ai-core".into(),
                inner_units: 2,
                memory: MemorySpec::symmetric(192 * 1024, 256.0),
            },
            Level {
                name: "device".into(),
                inner_units: 32,
                memory: MemorySpec::symmetric(32u64 << 30, 800.0),
            },
        ],
        intrinsic: cube,
        extra_intrinsics: vec![vector],
        clock_ghz: 1.0,
        scalar_ops_per_core_cycle: 16.0,
    }
}

/// §7.5 virtual spatial accelerator built around the AXPY unit.
pub fn virtual_axpy() -> AcceleratorSpec {
    virtual_accel("virtual-axpy", axpy_unit())
}

/// §7.5 virtual spatial accelerator built around the GEMV unit.
pub fn virtual_gemv() -> AcceleratorSpec {
    virtual_accel("virtual-gemv", gemv_unit())
}

/// §7.5 virtual spatial accelerator built around the CONV unit.
pub fn virtual_conv() -> AcceleratorSpec {
    virtual_accel("virtual-conv", conv_unit())
}

/// Every accelerator in the catalog, for sweep-style tests and benches.
pub fn all_accelerators() -> Vec<AcceleratorSpec> {
    vec![
        v100(),
        a100(),
        t4(),
        xeon_avx512(),
        mali_g76(),
        mini_accel(),
        ascend_npu(),
        tpu_like(),
        gemmini_like(),
        virtual_axpy(),
        virtual_gemv(),
        virtual_conv(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::OperandRef;
    use amos_ir::BinMatrix;

    #[test]
    fn vnni_access_matrix() {
        let z = avx512_vnni().compute.access_matrix();
        // Rows Src1, Src2, Dst; cols i1, r1 (Src2 is the broadcast vector).
        assert_eq!(z, BinMatrix::from_rows(&[&[1, 1], &[0, 1], &[1, 0]]));
    }

    #[test]
    fn arm_dot_is_scalar_output() {
        let d = arm_dot4();
        assert_eq!(d.compute.fragment_len(OperandRef::Dst), 1);
        assert_eq!(d.scalar_ops(), 4);
        assert!(d.memory.statements().iter().all(|s| s.intrinsic.is_none()));
    }

    #[test]
    fn conv_unit_has_window_fragment() {
        let c = conv_unit();
        // Src1 line buffer holds i2 + r2 - 1 = 10 positions per channel.
        assert_eq!(c.compute.fragment_shape(OperandRef::Src(0)), vec![8, 10]);
        assert_eq!(c.scalar_ops(), 8 * 8 * 8 * 3);
    }

    #[test]
    fn gemv_and_axpy_shapes() {
        assert_eq!(gemv_unit().scalar_ops(), 256);
        assert_eq!(axpy_unit().scalar_ops(), 32);
        assert_eq!(
            axpy_unit().compute.fragment_len(OperandRef::Src(0)),
            1,
            "axpy scalar operand"
        );
    }

    #[test]
    fn catalog_accelerators_are_well_formed() {
        for acc in all_accelerators() {
            assert!(acc.num_levels() >= 3, "{} too shallow", acc.name);
            assert!(acc.total_pe_arrays() >= 1);
            assert!(acc.clock_ghz > 0.0);
            // Fragments must fit the innermost memory.
            assert!(
                acc.intrinsic.total_fragment_bytes() <= acc.levels[0].memory.capacity_bytes,
                "{}: fragments do not fit register capacity",
                acc.name
            );
            // Shared staging must exist and be larger than a fragment set.
            let shared = acc.shared_level();
            assert!(
                acc.levels[shared].memory.capacity_bytes >= acc.intrinsic.total_fragment_bytes(),
                "{}: shared level too small",
                acc.name
            );
        }
    }

    #[test]
    fn tpu_mxu_dwarfs_the_tensor_core_tile() {
        let tpu = tpu_like();
        assert_eq!(tpu.intrinsic.compute.problem_size(), vec![128, 128, 128]);
        assert_eq!(tpu.intrinsic.scalar_ops(), 128 * 128 * 128);
        // i8 fragments fit the MXU-side memory.
        assert!(tpu.intrinsic.total_fragment_bytes() <= tpu.levels[0].memory.capacity_bytes);
    }

    #[test]
    fn t4_sits_between_nothing_and_v100() {
        let (t4, v) = (t4(), v100());
        assert!(t4.total_pe_arrays() < v.total_pe_arrays());
        assert!(t4.peak_tensor_ops_per_cycle() < v.peak_tensor_ops_per_cycle());
    }

    #[test]
    fn gemmini_is_a_single_core_device() {
        let g = gemmini_like();
        assert_eq!(g.total_pe_arrays(), 1);
        assert_eq!(g.intrinsic.name, "gemmini_matmul");
    }

    #[test]
    fn wmma_throughput_scales_between_generations() {
        let (v, a) = (v100(), a100());
        assert!(a.intrinsic.ops_per_cycle() > v.intrinsic.ops_per_cycle());
    }
}

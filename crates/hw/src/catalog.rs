//! Catalog of intrinsics and accelerators used in the AMOS evaluation.
//!
//! Every entry is authored as declarative *data* — an [`IntrinsicDesc`] /
//! [`AcceleratorDesc`] table (see [`crate::desc`]) — and the public
//! constructor functions simply build those tables. [`descriptors`] exposes
//! the raw tables so the [`crate::Registry`] can enumerate, look up and
//! extend the catalog by name.
//!
//! The commercial accelerators are parameterised from their public
//! whitepapers (V100/A100 SM counts, shared-memory sizes, DRAM bandwidths);
//! the intrinsic latencies follow published microbenchmarking (Jia et al.,
//! "Dissecting the NVIDIA Volta GPU Architecture"). The three *virtual*
//! accelerators (AXPY/GEMV/CONV units) reproduce paper §7.5.
//!
//! All figures drive a simulator, not silicon; see DESIGN.md §2 for the
//! substitution rationale.

use crate::accelerator::AcceleratorSpec;
use crate::desc::{AcceleratorDesc, IntrinsicDesc, IterDesc, LevelDesc, MemoryDesc, OperandDesc};
use crate::intrinsic::Intrinsic;
use amos_ir::{DType, OpKind};

// ---------------------------------------------------------------------------
// Intrinsic tables
// ---------------------------------------------------------------------------

/// Declarative table of the `mma_sync` WMMA intrinsic with explicit pipeline
/// timing (used to differentiate GPU generations).
pub fn wmma_desc(latency: u64, initiation_interval: u64) -> IntrinsicDesc {
    IntrinsicDesc {
        name: "mma_sync".into(),
        iters: vec![
            IterDesc::spatial("i1", 16),
            IterDesc::spatial("i2", 16),
            IterDesc::reduce("r1", 16),
        ],
        srcs: vec![
            OperandDesc::simple("Src1", &[0, 2]),
            OperandDesc::simple("Src2", &[2, 1]),
        ],
        dst: OperandDesc::simple("Dst", &[0, 1]),
        op: OpKind::MulAcc,
        memory: MemoryDesc::fragment("load_matrix_sync", "store_matrix_sync"),
        latency,
        initiation_interval,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// The `mma_sync` WMMA intrinsic: a 16x16x16 f16 matrix multiply-accumulate
/// with explicit `load_matrix_sync`/`store_matrix_sync` memory intrinsics.
pub fn wmma_16x16x16() -> Intrinsic {
    wmma_with_timing(64, 32)
}

/// WMMA with explicit pipeline timing, used to differentiate GPU generations.
pub fn wmma_with_timing(latency: u64, initiation_interval: u64) -> Intrinsic {
    wmma_desc(latency, initiation_interval).build()
}

/// Declarative table of the Figure-3 2x2x2 mini Tensor Core.
pub fn mini_mma_desc() -> IntrinsicDesc {
    IntrinsicDesc {
        name: "mini_mma".into(),
        iters: vec![
            IterDesc::spatial("i1", 2),
            IterDesc::spatial("i2", 2),
            IterDesc::reduce("r1", 2),
        ],
        srcs: vec![
            OperandDesc::simple("Src1", &[0, 2]),
            OperandDesc::simple("Src2", &[2, 1]),
        ],
        dst: OperandDesc::simple("Dst", &[0, 1]),
        op: OpKind::MulAcc,
        memory: MemoryDesc::fragment("load_matrix", "store_matrix"),
        latency: 4,
        initiation_interval: 2,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// The simplified 2x2x2 Tensor Core of the paper's Figure 3 running example.
pub fn mini_mma_2x2x2() -> Intrinsic {
    mini_mma_desc().build()
}

/// Declarative table of the AVX-512 VNNI intrinsic.
pub fn avx512_vnni_desc() -> IntrinsicDesc {
    IntrinsicDesc {
        name: "_mm512_dpbusds_epi32".into(),
        iters: vec![IterDesc::spatial("i1", 16), IterDesc::reduce("r1", 4)],
        srcs: vec![
            OperandDesc::simple("Src1", &[0, 1]),
            OperandDesc::simple("Src2", &[1]),
        ],
        dst: OperandDesc::simple("Dst", &[0]),
        op: OpKind::MulAcc,
        memory: MemoryDesc::Implicit,
        latency: 5,
        initiation_interval: 1,
        src_dtype: DType::I8,
        acc_dtype: DType::I32,
    }
}

/// The AVX-512 VNNI `_mm512_dpbusds_epi32` intrinsic used as the paper does
/// (§7.5): a 16x4 *matrix-vector* multiply-accumulate. Lane `i1` holds row
/// `Src1[i1, r1]`; the second operand is the 4-element vector `Src2[r1]`
/// replicated across lanes (the replication is a register-layout detail that
/// the memory mapping performs).
pub fn avx512_vnni() -> Intrinsic {
    avx512_vnni_desc().build()
}

/// Declarative table of the Mali Bifrost `arm_dot` intrinsic.
pub fn arm_dot4_desc() -> IntrinsicDesc {
    IntrinsicDesc {
        name: "arm_dot".into(),
        iters: vec![IterDesc::reduce("r1", 4)],
        srcs: vec![
            OperandDesc::simple("Src1", &[0]),
            OperandDesc::simple("Src2", &[0]),
        ],
        dst: OperandDesc::scalar("Dst"),
        op: OpKind::MulAcc,
        memory: MemoryDesc::Implicit,
        latency: 4,
        initiation_interval: 1,
        src_dtype: DType::I8,
        acc_dtype: DType::I32,
    }
}

/// The Mali Bifrost `arm_dot` intrinsic: one 4-element i8 dot product
/// accumulated into a scalar i32, with no explicit memory intrinsics.
pub fn arm_dot4() -> Intrinsic {
    arm_dot4_desc().build()
}

/// Declarative table of the §7.5 AXPY unit.
pub fn axpy_unit_desc() -> IntrinsicDesc {
    IntrinsicDesc {
        name: "axpy32".into(),
        iters: vec![IterDesc::spatial("i1", 32)],
        srcs: vec![
            OperandDesc::scalar("Src1"),
            OperandDesc::simple("Src2", &[0]),
        ],
        dst: OperandDesc::simple("Dst", &[0]),
        op: OpKind::MulAcc,
        memory: MemoryDesc::fragment("load_vec", "store_vec"),
        latency: 8,
        initiation_interval: 2,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// §7.5 virtual accelerator intrinsic: a BLAS-1 AXPY unit
/// `Dst[i1] += Src1[] * Src2[i1]` over 32 lanes (Src1 is a broadcast scalar).
pub fn axpy_unit() -> Intrinsic {
    axpy_unit_desc().build()
}

/// Declarative table of the §7.5 GEMV unit.
pub fn gemv_unit_desc() -> IntrinsicDesc {
    IntrinsicDesc {
        name: "gemv16".into(),
        iters: vec![IterDesc::spatial("i1", 16), IterDesc::reduce("r1", 16)],
        srcs: vec![
            OperandDesc::simple("Src1", &[0, 1]),
            OperandDesc::simple("Src2", &[1]),
        ],
        dst: OperandDesc::simple("Dst", &[0]),
        op: OpKind::MulAcc,
        memory: MemoryDesc::fragment("load_tile", "store_tile"),
        latency: 16,
        initiation_interval: 8,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// §7.5 virtual accelerator intrinsic: a BLAS-2 GEMV unit
/// `Dst[i1] += Src1[i1, r1] * Src2[r1]` (16x16 matrix times 16-vector).
pub fn gemv_unit() -> Intrinsic {
    gemv_unit_desc().build()
}

/// Declarative table of the §7.5 CONV unit. The window dimension
/// `Src1[r1, i2 + r2]` is the one compound index in the catalog.
pub fn conv_unit_desc() -> IntrinsicDesc {
    IntrinsicDesc {
        name: "conv8x8x3".into(),
        iters: vec![
            IterDesc::spatial("i1", 8),
            IterDesc::spatial("i2", 8),
            IterDesc::reduce("r1", 8),
            IterDesc::reduce("r2", 3),
        ],
        srcs: vec![
            OperandDesc::new("Src1", &[&[2], &[1, 3]]),
            OperandDesc::simple("Src2", &[0, 2, 3]),
        ],
        dst: OperandDesc::simple("Dst", &[0, 1]),
        op: OpKind::MulAcc,
        memory: MemoryDesc::fragment("load_line", "store_line"),
        latency: 24,
        initiation_interval: 12,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    }
}

/// §7.5 virtual accelerator intrinsic: a BLAS-3-style 1D convolution engine
/// `Dst[i1, i2] += Src1[r1, i2 + r2] * Src2[i1, r1, r2]` — output channels
/// `i1`, output positions `i2`, input channels `r1` and a 3-tap window `r2`.
pub fn conv_unit() -> Intrinsic {
    conv_unit_desc().build()
}

// ---------------------------------------------------------------------------
// Accelerator tables
// ---------------------------------------------------------------------------

/// Declarative table of the NVIDIA V100.
pub fn v100_desc() -> AcceleratorDesc {
    AcceleratorDesc {
        name: "v100".into(),
        levels: vec![
            // 64 KiB register file per sub-core; shared->reg ~128 B/cyc.
            LevelDesc::new("pe-array", 1, 64 * 1024, 128.0),
            LevelDesc::new("sub-core", 1, 0, 0.0),
            // 96 KiB shared memory per SM, ~128 B/cyc from L2/DRAM side.
            LevelDesc::new("core", 4, 96 * 1024, 128.0),
            // 900 GB/s / 1.53 GHz ≈ 588 B/cycle aggregate.
            LevelDesc::new("device", 80, 16 << 30, 588.0),
        ],
        intrinsics: vec![wmma_desc(64, 32)],
        clock_ghz: 1.53,
        scalar_ops_per_core_cycle: 64.0, // fp32 FMAs per SM per cycle
    }
}

/// NVIDIA V100 (Volta): 80 SMs x 4 sub-cores, 96 KiB shared memory per SM,
/// ~900 GB/s HBM2 at 1.53 GHz.
pub fn v100() -> AcceleratorSpec {
    v100_desc().build()
}

/// Declarative table of the NVIDIA A100.
pub fn a100_desc() -> AcceleratorDesc {
    AcceleratorDesc {
        name: "a100".into(),
        levels: vec![
            LevelDesc::new("pe-array", 1, 64 * 1024, 256.0),
            LevelDesc::new("sub-core", 1, 0, 0.0),
            LevelDesc::new("core", 4, 164 * 1024, 256.0),
            // 1555 GB/s / 1.41 GHz ≈ 1103 B/cycle aggregate.
            LevelDesc::new("device", 108, 40u64 << 30, 1103.0),
        ],
        intrinsics: vec![wmma_desc(32, 16)],
        clock_ghz: 1.41,
        scalar_ops_per_core_cycle: 64.0,
    }
}

/// NVIDIA A100 (Ampere): 108 SMs x 4 sub-cores, 164 KiB shared memory per
/// SM, ~1555 GB/s HBM2e at 1.41 GHz, third-generation Tensor Cores with
/// twice the per-subcore WMMA throughput.
pub fn a100() -> AcceleratorSpec {
    a100_desc().build()
}

/// Declarative table of the NVIDIA T4.
pub fn t4_desc() -> AcceleratorDesc {
    AcceleratorDesc {
        name: "t4".into(),
        levels: vec![
            LevelDesc::new("pe-array", 1, 64 * 1024, 128.0),
            LevelDesc::new("sub-core", 1, 0, 0.0),
            LevelDesc::new("core", 4, 64 * 1024, 128.0),
            // 320 GB/s / 1.35 GHz = 237 B/cycle aggregate.
            LevelDesc::new("device", 40, 16u64 << 30, 237.0),
        ],
        intrinsics: vec![wmma_desc(64, 32)],
        clock_ghz: 1.35,
        scalar_ops_per_core_cycle: 64.0,
    }
}

/// NVIDIA T4 (Turing): 40 SMs x 4 sub-cores, 64 KiB shared memory per SM,
/// ~320 GB/s GDDR6 at 1.35 GHz — a smaller Tensor Core part that stresses
/// the schedule space differently from V100/A100.
pub fn t4() -> AcceleratorSpec {
    t4_desc().build()
}

/// Declarative table of the Xeon AVX-512 machine.
pub fn xeon_avx512_desc() -> AcceleratorDesc {
    AcceleratorDesc {
        name: "xeon-avx512".into(),
        levels: vec![
            LevelDesc::new("vector-unit", 1, 2 * 1024, 128.0), // zmm register file
            LevelDesc::new("port", 1, 0, 0.0),
            LevelDesc::new("core", 1, 32 * 1024, 64.0), // L1D
            // ~100 GB/s / 2.1 GHz ≈ 48 B/cycle.
            LevelDesc::new("socket", 8, 64u64 << 30, 48.0),
        ],
        intrinsics: vec![avx512_vnni_desc()],
        clock_ghz: 2.1,
        scalar_ops_per_core_cycle: 16.0, // AVX2 fp32 FMA fallback
    }
}

/// Intel Xeon Silver 4110-class CPU with AVX-512 VNNI: 8 cores, 32 KiB L1D,
/// ~2.1 GHz, ~100 GB/s socket bandwidth.
pub fn xeon_avx512() -> AcceleratorSpec {
    xeon_avx512_desc().build()
}

/// Declarative table of the ARM Mali G76.
pub fn mali_g76_desc() -> AcceleratorDesc {
    AcceleratorDesc {
        name: "mali-g76".into(),
        levels: vec![
            LevelDesc::new("dot-unit", 1, 1024, 32.0),
            LevelDesc::new("engine", 3, 0, 0.0),
            LevelDesc::new("core", 1, 16 * 1024, 16.0), // load/store cache
            // ~15 GB/s / 0.8 GHz ≈ 19 B/cycle.
            LevelDesc::new("device", 12, 4u64 << 30, 19.0),
        ],
        intrinsics: vec![arm_dot4_desc()],
        clock_ghz: 0.8,
        scalar_ops_per_core_cycle: 8.0,
    }
}

/// ARM Mali G76 (Bifrost): 12 cores x 3 execution engines with `arm_dot`,
/// ~0.8 GHz, ~15 GB/s LPDDR bandwidth.
pub fn mali_g76() -> AcceleratorSpec {
    mali_g76_desc().build()
}

/// Declarative table of the Figure-3 mini accelerator.
pub fn mini_accel_desc() -> AcceleratorDesc {
    AcceleratorDesc {
        name: "mini".into(),
        levels: vec![
            LevelDesc::new("pe-array", 1, 256, 8.0),
            LevelDesc::new("core", 2, 1024, 8.0),
            LevelDesc::new("device", 2, 1 << 20, 16.0),
        ],
        intrinsics: vec![mini_mma_desc()],
        clock_ghz: 1.0,
        scalar_ops_per_core_cycle: 1.0,
    }
}

/// The tiny accelerator of the Figure 3 running example: a 2x2x2 matrix
/// unit with just enough staging memory to exercise every constraint.
pub fn mini_accel() -> AcceleratorSpec {
    mini_accel_desc().build()
}

/// Declarative table of the Ascend-910-style NPU: a cube matrix engine plus
/// a 32-lane vector MAC unit as a heterogeneous extra.
pub fn ascend_npu_desc() -> AcceleratorDesc {
    let cube = IntrinsicDesc {
        name: "cube_mma".into(),
        ..wmma_desc(48, 24)
    };
    let vector = IntrinsicDesc {
        name: "vec_mac".into(),
        iters: vec![IterDesc::spatial("i1", 32), IterDesc::reduce("r1", 4)],
        srcs: vec![
            OperandDesc::simple("Src1", &[0, 1]),
            OperandDesc::simple("Src2", &[1]),
        ],
        dst: OperandDesc::simple("Dst", &[0]),
        op: OpKind::MulAcc,
        memory: MemoryDesc::Implicit,
        latency: 6,
        initiation_interval: 1,
        src_dtype: DType::F16,
        acc_dtype: DType::F32,
    };
    AcceleratorDesc {
        name: "ascend-npu".into(),
        levels: vec![
            LevelDesc::new("pe-array", 1, 64 * 1024, 256.0),
            LevelDesc::new("ai-core", 2, 192 * 1024, 256.0),
            LevelDesc::new("device", 32, 32u64 << 30, 800.0),
        ],
        intrinsics: vec![cube, vector],
        clock_ghz: 1.0,
        scalar_ops_per_core_cycle: 16.0,
    }
}

/// An Ascend-910-style NPU with *heterogeneous* units (paper Fig 1 cites
/// Ascend's cube and vector units): a 16x16x16 cube matrix engine as the
/// primary intrinsic plus a 32-lane vector MAC unit. The explorer picks the
/// better unit per operator via `Explorer::explore_multi`.
pub fn ascend_npu() -> AcceleratorSpec {
    ascend_npu_desc().build()
}

/// Declarative table of the TPU-v1-style device.
pub fn tpu_like_desc() -> AcceleratorDesc {
    let mxu = IntrinsicDesc {
        name: "mxu_128x128".into(),
        iters: vec![
            IterDesc::spatial("i1", 128),
            IterDesc::spatial("i2", 128),
            IterDesc::reduce("r1", 128),
        ],
        srcs: vec![
            OperandDesc::simple("Src1", &[0, 2]),
            OperandDesc::simple("Src2", &[2, 1]),
        ],
        dst: OperandDesc::simple("Dst", &[0, 1]),
        op: OpKind::MulAcc,
        memory: MemoryDesc::fragment("load_tile", "store_tile"),
        latency: 256,
        initiation_interval: 128,
        src_dtype: DType::I8,
        acc_dtype: DType::I32,
    };
    AcceleratorDesc {
        name: "tpu-like".into(),
        levels: vec![
            // Accumulators + weight FIFO.
            LevelDesc::new("mxu", 1, 256 * 1024, 512.0),
            // 24 MiB unified buffer.
            LevelDesc::new("core", 1, 24 * 1024 * 1024, 256.0),
            LevelDesc::new("device", 2, 8u64 << 30, 128.0),
        ],
        intrinsics: vec![mxu],
        clock_ghz: 0.7,
        scalar_ops_per_core_cycle: 4.0,
    }
}

/// A TPU-v1-style device (the paper's canonical systolic example): one huge
/// 128x128x128 matrix unit per core, few cores, large unified buffer. The
/// giant problem size makes padding the dominant effect for small operators.
pub fn tpu_like() -> AcceleratorSpec {
    tpu_like_desc().build()
}

/// Declarative table of the Gemmini-style systolic array.
pub fn gemmini_like_desc() -> AcceleratorDesc {
    let systolic = IntrinsicDesc {
        name: "gemmini_matmul".into(),
        iters: vec![
            IterDesc::spatial("i1", 16),
            IterDesc::spatial("i2", 16),
            IterDesc::reduce("r1", 16),
        ],
        srcs: vec![
            OperandDesc::simple("Src1", &[0, 2]),
            OperandDesc::simple("Src2", &[2, 1]),
        ],
        dst: OperandDesc::simple("Dst", &[0, 1]),
        op: OpKind::MulAcc,
        memory: MemoryDesc::fragment("mvin", "mvout"),
        latency: 48,
        initiation_interval: 16,
        src_dtype: DType::I8,
        acc_dtype: DType::I32,
    };
    AcceleratorDesc {
        name: "gemmini-like".into(),
        levels: vec![
            LevelDesc::new("systolic-array", 1, 64 * 1024, 64.0), // accumulator SRAM
            LevelDesc::new("core", 1, 256 * 1024, 64.0),          // scratchpad
            LevelDesc::new("device", 1, 4u64 << 30, 32.0),
        ],
        intrinsics: vec![systolic],
        clock_ghz: 1.0,
        scalar_ops_per_core_cycle: 2.0,
    }
}

/// A Gemmini-style INT8 systolic array (16x16x16), the paper's example of an
/// academic generator-produced accelerator.
pub fn gemmini_like() -> AcceleratorSpec {
    gemmini_like_desc().build()
}

/// The shared hierarchy of the §7.5 virtual accelerators, around one unit.
fn virtual_desc(name: &str, intrinsic: IntrinsicDesc) -> AcceleratorDesc {
    AcceleratorDesc {
        name: name.into(),
        levels: vec![
            LevelDesc::new("pe-array", 1, 16 * 1024, 64.0),
            LevelDesc::new("core", 4, 64 * 1024, 64.0),
            LevelDesc::new("device", 16, 8u64 << 30, 256.0),
        ],
        intrinsics: vec![intrinsic],
        clock_ghz: 1.0,
        scalar_ops_per_core_cycle: 4.0,
    }
}

/// Declarative table of the §7.5 virtual AXPY accelerator.
pub fn virtual_axpy_desc() -> AcceleratorDesc {
    virtual_desc("virtual-axpy", axpy_unit_desc())
}

/// §7.5 virtual spatial accelerator built around the AXPY unit.
pub fn virtual_axpy() -> AcceleratorSpec {
    virtual_axpy_desc().build()
}

/// Declarative table of the §7.5 virtual GEMV accelerator.
pub fn virtual_gemv_desc() -> AcceleratorDesc {
    virtual_desc("virtual-gemv", gemv_unit_desc())
}

/// §7.5 virtual spatial accelerator built around the GEMV unit.
pub fn virtual_gemv() -> AcceleratorSpec {
    virtual_gemv_desc().build()
}

/// Declarative table of the §7.5 virtual CONV accelerator.
pub fn virtual_conv_desc() -> AcceleratorDesc {
    virtual_desc("virtual-conv", conv_unit_desc())
}

/// §7.5 virtual spatial accelerator built around the CONV unit.
pub fn virtual_conv() -> AcceleratorSpec {
    virtual_conv_desc().build()
}

/// Every accelerator description in the catalog, in catalog order — the
/// data the builtin [`crate::Registry`] is populated from.
pub fn descriptors() -> Vec<AcceleratorDesc> {
    vec![
        v100_desc(),
        a100_desc(),
        t4_desc(),
        xeon_avx512_desc(),
        mali_g76_desc(),
        mini_accel_desc(),
        ascend_npu_desc(),
        tpu_like_desc(),
        gemmini_like_desc(),
        virtual_axpy_desc(),
        virtual_gemv_desc(),
        virtual_conv_desc(),
    ]
}

/// Every accelerator in the catalog, for sweep-style tests and benches.
pub fn all_accelerators() -> Vec<AcceleratorSpec> {
    descriptors().iter().map(AcceleratorDesc::build).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::OperandRef;
    use amos_ir::BinMatrix;

    #[test]
    fn vnni_access_matrix() {
        let z = avx512_vnni().compute.access_matrix();
        // Rows Src1, Src2, Dst; cols i1, r1 (Src2 is the broadcast vector).
        assert_eq!(z, BinMatrix::from_rows(&[&[1, 1], &[0, 1], &[1, 0]]));
    }

    #[test]
    fn arm_dot_is_scalar_output() {
        let d = arm_dot4();
        assert_eq!(d.compute.fragment_len(OperandRef::Dst), 1);
        assert_eq!(d.scalar_ops(), 4);
        assert!(d.memory.statements().iter().all(|s| s.intrinsic.is_none()));
    }

    #[test]
    fn conv_unit_has_window_fragment() {
        let c = conv_unit();
        // Src1 line buffer holds i2 + r2 - 1 = 10 positions per channel.
        assert_eq!(c.compute.fragment_shape(OperandRef::Src(0)), vec![8, 10]);
        assert_eq!(c.scalar_ops(), 8 * 8 * 8 * 3);
    }

    #[test]
    fn gemv_and_axpy_shapes() {
        assert_eq!(gemv_unit().scalar_ops(), 256);
        assert_eq!(axpy_unit().scalar_ops(), 32);
        assert_eq!(
            axpy_unit().compute.fragment_len(OperandRef::Src(0)),
            1,
            "axpy scalar operand"
        );
    }

    #[test]
    fn catalog_accelerators_are_well_formed() {
        for acc in all_accelerators() {
            assert!(acc.num_levels() >= 3, "{} too shallow", acc.name);
            assert!(acc.total_pe_arrays() >= 1);
            assert!(acc.clock_ghz > 0.0);
            // Fragments must fit the innermost memory.
            assert!(
                acc.intrinsic.total_fragment_bytes() <= acc.levels[0].memory.capacity_bytes,
                "{}: fragments do not fit register capacity",
                acc.name
            );
            // Shared staging must exist and be larger than a fragment set.
            let shared = acc.shared_level();
            assert!(
                acc.levels[shared].memory.capacity_bytes >= acc.intrinsic.total_fragment_bytes(),
                "{}: shared level too small",
                acc.name
            );
        }
    }

    #[test]
    fn descriptors_match_constructed_accelerators() {
        // The public constructors are thin builds of the descriptor tables;
        // the two views of the catalog must agree entry by entry.
        let built: Vec<AcceleratorSpec> =
            descriptors().iter().map(AcceleratorDesc::build).collect();
        assert_eq!(built, all_accelerators());
        let names: Vec<&str> = built.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "v100",
                "a100",
                "t4",
                "xeon-avx512",
                "mali-g76",
                "mini",
                "ascend-npu",
                "tpu-like",
                "gemmini-like",
                "virtual-axpy",
                "virtual-gemv",
                "virtual-conv",
            ]
        );
    }

    #[test]
    fn tpu_mxu_dwarfs_the_tensor_core_tile() {
        let tpu = tpu_like();
        assert_eq!(tpu.intrinsic.compute.problem_size(), vec![128, 128, 128]);
        assert_eq!(tpu.intrinsic.scalar_ops(), 128 * 128 * 128);
        // i8 fragments fit the MXU-side memory.
        assert!(tpu.intrinsic.total_fragment_bytes() <= tpu.levels[0].memory.capacity_bytes);
    }

    #[test]
    fn t4_sits_between_nothing_and_v100() {
        let (t4, v) = (t4(), v100());
        assert!(t4.total_pe_arrays() < v.total_pe_arrays());
        assert!(t4.peak_tensor_ops_per_cycle() < v.peak_tensor_ops_per_cycle());
    }

    #[test]
    fn gemmini_is_a_single_core_device() {
        let g = gemmini_like();
        assert_eq!(g.total_pe_arrays(), 1);
        assert_eq!(g.intrinsic.name, "gemmini_matmul");
    }

    #[test]
    fn wmma_throughput_scales_between_generations() {
        let (v, a) = (v100(), a100());
        assert!(a.intrinsic.ops_per_cycle() > v.intrinsic.ops_per_cycle());
    }
}

//! Property tests for the on-disk text format and the ISA derivation pass.
//!
//! * `AcceleratorDesc -> to_text -> from_text` is the identity over
//!   randomized descriptions (including window-style compound indices,
//!   implicit memory, scalar operands and bit-exotic floats).
//! * Corrupt inputs — truncations, unknown keys, bad integers — yield a
//!   line-numbered diagnostic, never a panic.
//! * For every machine expressible as an `IsaDesc`, `derive_abstraction`
//!   reproduces the hand-written description exactly, so the built
//!   intrinsics have identical `constraint_matrices()`.

use amos_hw::desc::{AcceleratorDesc, IntrinsicDesc, IterDesc, LevelDesc, MemoryDesc, OperandDesc};
use amos_hw::isa::{derive_abstraction, IsaDesc};
use amos_hw::text::TextErrorKind;
use amos_ir::{DType, IterKind, OpKind};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Seeded generator
//
// The offline proptest stub has no flat_map, so variable-length structures
// are generated from one seed via splitmix64 — every draw is a pure function
// of the seed, which the harness reports on failure.
// ---------------------------------------------------------------------------

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // splitmix64
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// A positive finite f64 — usually a "nice" value, sometimes one with a
    /// full random mantissa to exercise shortest-round-trip formatting.
    fn positive_f64(&mut self) -> f64 {
        if self.flag() {
            (self.range(1, 4096) as f64) / 16.0
        } else {
            let v = f64::from_bits(self.next()).abs();
            if v.is_finite() && v > 0.0 && v < 1e300 {
                v
            } else {
                1.5
            }
        }
    }
}

fn random_operand(g: &mut Gen, name: &str, n_iters: usize) -> OperandDesc {
    let n_dims = g.range(0, 3) as usize;
    let index = (0..n_dims)
        .map(|_| {
            let n_terms = g.range(1, 2) as usize;
            (0..n_terms)
                .map(|_| g.range(0, n_iters as u64 - 1) as usize)
                .collect()
        })
        .collect();
    OperandDesc {
        name: name.to_string(),
        index,
    }
}

fn random_desc(seed: u64) -> AcceleratorDesc {
    let mut g = Gen(seed);
    let n_levels = g.range(1, 4);
    let levels = (0..n_levels)
        .map(|i| LevelDesc {
            name: format!("lvl{i}"),
            inner_units: g.range(1, 8),
            // Outer levels may legitimately have no addressable capacity
            // (the v100 `sub-core` pattern); the innermost must not.
            capacity_bytes: if i == 0 {
                g.range(1, 1 << 20)
            } else {
                g.range(0, 1 << 20)
            },
            bytes_per_cycle: g.positive_f64(),
        })
        .collect();
    let n_intr = g.range(1, 3);
    let intrinsics = (0..n_intr)
        .map(|k| {
            let op = match g.range(0, 2) {
                0 => OpKind::MulAcc,
                1 => OpKind::AddAcc,
                _ => OpKind::MaxAcc,
            };
            let n_iters = g.range(1, 4) as usize;
            let iters = (0..n_iters)
                .map(|i| IterDesc {
                    name: format!("i{i}"),
                    extent: g.range(1, 16) as i64,
                    kind: if g.flag() {
                        IterKind::Spatial
                    } else {
                        IterKind::Reduction
                    },
                })
                .collect();
            let srcs = (0..op.arity())
                .map(|s| random_operand(&mut g, &format!("Src{}", s + 1), n_iters))
                .collect();
            let dst = random_operand(&mut g, "Dst", n_iters);
            let memory = if g.flag() {
                MemoryDesc::Fragment {
                    load: format!("ld{k}"),
                    store: format!("st{k}"),
                }
            } else {
                MemoryDesc::Implicit
            };
            let initiation_interval = g.range(1, 16);
            IntrinsicDesc {
                name: format!("intr{k}"),
                iters,
                srcs,
                dst,
                op,
                memory,
                latency: initiation_interval + g.range(0, 16),
                initiation_interval,
                src_dtype: match g.range(0, 3) {
                    0 => DType::F16,
                    1 => DType::F32,
                    2 => DType::I8,
                    _ => DType::I32,
                },
                acc_dtype: if g.flag() { DType::F32 } else { DType::I32 },
            }
        })
        .collect();
    AcceleratorDesc {
        name: format!("m{}", seed % 100_000),
        levels,
        intrinsics,
        clock_ghz: g.positive_f64(),
        scalar_ops_per_core_cycle: g.positive_f64(),
    }
}

/// Relabels every iteration kind to be destination-determined (spatial iff
/// the axis indexes the destination) — the class of machines the primitive
/// ISA form can express.
fn make_dst_determined(mut desc: AcceleratorDesc) -> AcceleratorDesc {
    for intr in &mut desc.intrinsics {
        let mut in_dst = vec![false; intr.iters.len()];
        for terms in &intr.dst.index {
            for &t in terms {
                in_dst[t] = true;
            }
        }
        for (iter, &spatial) in intr.iters.iter_mut().zip(&in_dst) {
            iter.kind = if spatial {
                IterKind::Spatial
            } else {
                IterKind::Reduction
            };
        }
    }
    desc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn to_text_from_text_is_identity(seed in 0u64..(1 << 48)) {
        let desc = random_desc(seed);
        let text = desc.to_text();
        let reparsed = AcceleratorDesc::from_text(&text)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}\n{text}")))?;
        prop_assert_eq!(reparsed, desc);
    }

    #[test]
    fn truncated_input_never_panics(seed in 0u64..(1 << 48), cut_permille in 0u64..1000) {
        // Cutting a valid document at any char boundary must yield Ok (a
        // prefix can be complete) or a line-numbered error — never a panic.
        let desc = random_desc(seed);
        let text = desc.to_text();
        let n_chars = text.chars().count();
        let keep = (n_chars as u64 * cut_permille / 1000) as usize;
        let truncated: String = text.chars().take(keep).collect();
        if let Err(e) = AcceleratorDesc::from_text(&truncated) {
            let lines = truncated.lines().count();
            prop_assert!(e.line >= 1 && e.line <= lines.max(1), "line {} of {lines}", e.line);
        }
    }

    #[test]
    fn derivation_reproduces_dst_determined_descs(seed in 0u64..(1 << 48)) {
        // Satellite property: for every machine expressible as an IsaDesc,
        // the derivation pass rebuilds the hand-written desc exactly, so
        // Algorithm-1 validation sees identical constraint matrices.
        let desc = make_dst_determined(random_desc(seed));
        let isa = IsaDesc::from_accelerator(&desc)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
        let derived = derive_abstraction(&isa)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
        prop_assert_eq!(&derived, &desc);
        // The ISA text format round-trips too.
        let reparsed = IsaDesc::from_text(&isa.to_text())
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
        prop_assert_eq!(reparsed, isa);
        for (d, h) in derived.intrinsics.iter().zip(&desc.intrinsics) {
            prop_assert_eq!(
                d.build().compute.constraint_matrices(),
                h.build().compute.constraint_matrices()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Corrupt-input diagnostics (deterministic cases)
// ---------------------------------------------------------------------------

#[test]
fn truncated_file_reports_a_line_number() {
    let text = random_desc(7).to_text();
    // Keep only the first half of the lines: some required key of the last
    // open section is now missing.
    let lines: Vec<&str> = text.lines().collect();
    let truncated: String = lines[..lines.len() / 2]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    let err = AcceleratorDesc::from_text(&truncated).expect_err("half a file must not parse");
    assert!(err.line >= 1 && err.line <= lines.len() / 2, "{err}");
    assert!(err.to_string().starts_with(&format!("line {}", err.line)));
}

#[test]
fn unknown_key_reports_the_offending_line() {
    let mut text = String::from("format = 1\nname = \"x\"\n");
    text.push_str("widgets = 3\n");
    text.push_str("clock_ghz = 1.0\nscalar_ops_per_core_cycle = 1.0\n");
    let err = AcceleratorDesc::from_text(&text).unwrap_err();
    assert_eq!(err.kind, TextErrorKind::UnknownKey("widgets".into()));
    assert_eq!(err.line, 3);
}

#[test]
fn bad_integer_reports_the_offending_line() {
    let desc = random_desc(11);
    let text: String = desc
        .to_text()
        .lines()
        .map(|l| {
            if l.starts_with("inner_units = ") {
                "inner_units = twelve\n".to_string()
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let err = AcceleratorDesc::from_text(&text).unwrap_err();
    let expected_line = text
        .lines()
        .position(|l| l.starts_with("inner_units = twelve"))
        .unwrap()
        + 1;
    assert_eq!(err.line, expected_line, "{err}");
    assert!(matches!(err.kind, TextErrorKind::Syntax(_)), "{err}");
}

#[test]
fn float_in_integer_position_is_a_bad_value() {
    let desc = random_desc(13);
    let text: String = desc
        .to_text()
        .lines()
        .map(|l| {
            if l.starts_with("latency = ") {
                "latency = 2.5\n".to_string()
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let err = AcceleratorDesc::from_text(&text).unwrap_err();
    assert!(
        matches!(err.kind, TextErrorKind::BadValue { ref key, .. } if key == "latency"),
        "{err}"
    );
}

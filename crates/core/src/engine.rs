//! The staged compilation engine.
//!
//! [`Engine`] is the one front door to the AMOS stack. It owns every cache in
//! one place — the structural exploration cache (and, transitively, the
//! compiled lane programs and screening contexts that live on the lowered
//! programs it stores) — plus a seeded base [`ExplorerConfig`], so batch and
//! network compilation reuse work across calls without callers plumbing
//! caches by hand.
//!
//! Compilation is a typed pipeline; each stage is a named step whose output
//! is the next stage's input:
//!
//! ```text
//! analyze → Analyzed → generate → MappingSet → lower → Lowered
//!         → explore → Explored → emit → Artifact
//! ```
//!
//! [`Engine::compile`] runs the whole pipeline with a single cache lookup
//! (so repeated shapes skip even enumeration and lowering), and the
//! staged methods let callers stop mid-way — e.g. `generate` alone
//! reproduces the paper's Table 6 mapping counts. Staged and one-shot runs
//! share cache entries: exploring the same shape either way is one miss and
//! then hits.
//!
//! All failures are reported as [`AmosError`] values carrying the stage,
//! operator and accelerator context.

use crate::cache::{CacheStats, ExplorationCache};
use crate::disk::CacheConfig;
use crate::error::{AmosError, Stage};
use crate::explore::{ExplorationResult, ExploreError, Explorer, ExplorerConfig, LoweredUnit};
use crate::mapping::Mapping;
use crate::report::MappingReport;
use amos_hw::{AcceleratorSpec, Registry};
use amos_ir::nodes::Stmt;
use amos_ir::ComputeDef;
use std::path::Path;

/// An operator bound to an accelerator and decomposed into per-intrinsic
/// exploration units. Output of [`Engine::analyze`].
#[derive(Debug, Clone)]
pub struct Analyzed {
    def: ComputeDef,
    accel: AcceleratorSpec,
    config: ExplorerConfig,
    units: Vec<AcceleratorSpec>,
}

impl Analyzed {
    /// The operator under compilation.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// The target accelerator.
    pub fn accelerator(&self) -> &AcceleratorSpec {
        &self.accel
    }

    /// The exploration configuration this pipeline run carries.
    pub fn config(&self) -> &ExplorerConfig {
        &self.config
    }

    /// Number of per-intrinsic units the accelerator decomposed into
    /// (one for homogeneous devices, more for e.g. an Ascend-style NPU).
    pub fn num_units(&self) -> usize {
        self.units.len()
    }
}

/// The enumerated valid-mapping sets, one per unit (paper §5.1, Table 6).
/// Output of [`Engine::generate`].
#[derive(Debug, Clone)]
pub struct MappingSet {
    def: ComputeDef,
    accel: AcceleratorSpec,
    config: ExplorerConfig,
    units: Vec<(AcceleratorSpec, Vec<Mapping>)>,
}

impl MappingSet {
    /// The operator under compilation.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// The target accelerator.
    pub fn accelerator(&self) -> &AcceleratorSpec {
        &self.accel
    }

    /// Total number of valid mappings across all units — the Table 6 count.
    pub fn total_mappings(&self) -> usize {
        self.units.iter().map(|(_, m)| m.len()).sum()
    }

    /// Mapping counts per unit, in unit order.
    pub fn per_unit_counts(&self) -> Vec<usize> {
        self.units.iter().map(|(_, m)| m.len()).collect()
    }
}

/// Mapped programs, one per mapping per unit (§6 lowering). Output of
/// [`Engine::lower`]. Lane programs and screening contexts compiled during
/// later stages are cached on these programs and travel with the value.
#[derive(Debug, Clone)]
pub struct Lowered {
    def: ComputeDef,
    accel: AcceleratorSpec,
    config: ExplorerConfig,
    units: Vec<LoweredUnit>,
}

impl Lowered {
    /// The operator under compilation.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// The target accelerator.
    pub fn accelerator(&self) -> &AcceleratorSpec {
        &self.accel
    }

    /// Total number of lowered programs across all units.
    pub fn total_programs(&self) -> usize {
        self.units.iter().map(|u| u.programs.len()).sum()
    }
}

/// The best measured (mapping, schedule) pair with the full evaluation
/// trace, plus the operator/accelerator it was found for. Output of
/// [`Engine::explore`] and [`Engine::compile`].
#[derive(Debug, Clone)]
pub struct Explored {
    def: ComputeDef,
    accel: AcceleratorSpec,
    result: ExplorationResult,
}

impl Explored {
    /// The operator that was compiled.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// The target accelerator.
    pub fn accelerator(&self) -> &AcceleratorSpec {
        &self.accel
    }

    /// The underlying exploration result.
    pub fn result(&self) -> &ExplorationResult {
        &self.result
    }

    /// Consumes the stage and returns the underlying result.
    pub fn into_result(self) -> ExplorationResult {
        self.result
    }

    /// Best measured cycles.
    pub fn cycles(&self) -> f64 {
        self.result.cycles()
    }
}

/// Everything the stack can emit for a compiled operator: the Table-5-style
/// mapping report, the Table-4 `Compute`/`Memory` IR and CUDA-like source.
/// Output of [`Engine::emit`].
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Table-5-style mapping report for the winner.
    pub report: MappingReport,
    /// The winner lowered to the Table 4 `Compute`/`Memory` IR.
    pub ir: Vec<Stmt>,
    /// CUDA-like source for the winner.
    pub cuda: String,
}

/// The shared compilation engine: a seeded base configuration plus every
/// cache the stack uses, behind one front door.
///
/// Entry points (CLI, baselines, benches, network evaluation) construct one
/// `Engine` and compile through it; none of them constructs or threads an
/// exploration cache by hand. Repeated structures — same shape, accelerator and budget — are answered
/// from cache, including across the staged and one-shot APIs and across the
/// refinement sub-runs of different calls.
#[derive(Debug)]
pub struct Engine {
    base: ExplorerConfig,
    cache: ExplorationCache,
    cache_config: CacheConfig,
    registry: Registry,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::with_cache(ExplorerConfig::default(), CacheConfig::default())
    }
}

impl Engine {
    /// An engine with the default exploration budget.
    pub fn new() -> Self {
        Engine::default()
    }

    /// An engine with a custom base configuration.
    pub fn with_config(base: ExplorerConfig) -> Self {
        Engine::with_cache(base, CacheConfig::default())
    }

    /// An engine whose exploration cache is backed by the persistent
    /// on-disk tier of [`CacheConfig::cache_dir`] (when set): clean
    /// finished explorations are written through to disk and answer
    /// lookups in later processes. Infallible — an unusable directory
    /// degrades to a memory-only engine.
    pub fn with_cache(base: ExplorerConfig, cache_config: CacheConfig) -> Self {
        Engine {
            base,
            cache: ExplorationCache::with_disk(&cache_config),
            cache_config,
            registry: Registry::builtin(),
        }
    }

    /// Replaces the accelerator registry this engine resolves names
    /// against — the `--accel-dir` path: build the registry with
    /// [`load_registry`] and every verb sees the file-loaded machines.
    #[must_use]
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    /// The accelerator registry this engine resolves names against.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Builds the named accelerator from the engine's registry.
    ///
    /// # Errors
    ///
    /// A usage error listing the known machines when `name` is not
    /// registered.
    pub fn accelerator(&self, name: &str) -> Result<AcceleratorSpec, AmosError> {
        self.registry.build(name).ok_or_else(|| {
            AmosError::usage(format!(
                "unknown accelerator `{name}` (known: {})",
                self.registry.names().join(", ")
            ))
            .on_accelerator(name)
        })
    }

    /// The cache placement this engine was built with.
    pub fn cache_config(&self) -> &CacheConfig {
        &self.cache_config
    }

    /// The base configuration used when no per-call override is given.
    pub fn config(&self) -> &ExplorerConfig {
        &self.base
    }

    /// The base configuration with a different seed — the idiom for
    /// per-layer seeds in network compilation.
    pub fn config_with_seed(&self, seed: u64) -> ExplorerConfig {
        ExplorerConfig {
            seed,
            ..self.base.clone()
        }
    }

    /// Top-level cache counters (hits, misses).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Counters of the persistent worker pool this engine's parallel
    /// explorations run on (threads spawned, waves submitted, tasks and
    /// chunks claimed). The pool is process-wide — workers are spawned
    /// lazily on the first parallel wave and reused by every engine and
    /// every exploration thereafter — so these counters are cumulative for
    /// the process, not per-engine.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        crate::pool::pool_stats()
    }

    /// Number of distinct (shape, accelerator, config) entries cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Refinement sub-runs answered from the cache.
    pub fn refine_hits(&self) -> usize {
        self.cache.refine_hits()
    }

    /// Refinement sub-runs that had to run the generation loop.
    pub fn refine_misses(&self) -> usize {
        self.cache.refine_misses()
    }

    // ---- staged pipeline ---------------------------------------------------

    /// Stage 1: binds an operator to an accelerator under the base
    /// configuration and decomposes the device into per-intrinsic units.
    pub fn analyze(&self, def: &ComputeDef, accel: &AcceleratorSpec) -> Analyzed {
        self.analyze_with(self.base.clone(), def, accel)
    }

    /// [`Engine::analyze`] with a per-call configuration override (used by
    /// baselines that carry their own budget and seed).
    pub fn analyze_with(
        &self,
        config: ExplorerConfig,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Analyzed {
        let explorer = Explorer::with_config(config.clone());
        Analyzed {
            units: explorer.unit_accelerators(accel),
            def: def.clone(),
            accel: accel.clone(),
            config,
        }
    }

    /// Stage 2: enumerates the valid software–hardware mappings of every
    /// unit (§5.1).
    ///
    /// # Errors
    ///
    /// [`Stage::Generate`] / no valid mapping when every unit's enumeration
    /// is empty.
    pub fn generate(&self, analyzed: Analyzed) -> Result<MappingSet, AmosError> {
        let Analyzed {
            def,
            accel,
            config,
            units,
        } = analyzed;
        let explorer = Explorer::with_config(config.clone());
        let units: Vec<(AcceleratorSpec, Vec<Mapping>)> = units
            .into_iter()
            .map(|unit| {
                let mappings = explorer.enumerate_unit(&def, &unit);
                (unit, mappings)
            })
            .collect();
        if units.iter().all(|(_, m)| m.is_empty()) {
            return Err(AmosError::from(ExploreError::NoValidMapping {
                computation: def.name().to_string(),
                intrinsic: accel
                    .all_intrinsics()
                    .map(|i| i.name.clone())
                    .collect::<Vec<_>>()
                    .join("|"),
            })
            .at_stage(Stage::Generate)
            .for_operator(def.name())
            .on_accelerator(&accel.name));
        }
        Ok(MappingSet {
            def,
            accel,
            config,
            units,
        })
    }

    /// Stage 3: lowers every mapping to a mapped program (§6), concurrently
    /// on the configured worker count.
    ///
    /// # Errors
    ///
    /// [`Stage::Lower`] wrapping the simulator error of the first mapping
    /// (in mapping order) that fails to lower.
    pub fn lower(&self, set: MappingSet) -> Result<Lowered, AmosError> {
        let MappingSet {
            def,
            accel,
            config,
            units,
        } = set;
        let explorer = Explorer::with_config(config.clone());
        let units = units
            .into_iter()
            .map(|(unit, mappings)| {
                let programs = explorer
                    .lower_mappings(&def, &unit, &mappings)
                    .map_err(|e| {
                        AmosError::from(e)
                            .at_stage(Stage::Lower)
                            .for_operator(def.name())
                            .on_accelerator(&accel.name)
                    })?;
                Ok(LoweredUnit {
                    accel: unit,
                    mappings,
                    programs,
                })
            })
            .collect::<Result<Vec<_>, AmosError>>()?;
        Ok(Lowered {
            def,
            accel,
            config,
            units,
        })
    }

    /// Stage 4: the joint mapping × schedule search over the lowered units
    /// (§5.3), memoised in the engine's cache under the same key as
    /// [`Engine::compile`] — so staged and one-shot runs share entries.
    ///
    /// # Errors
    ///
    /// [`Stage::Explore`] wrapping the exploration failure.
    pub fn explore(&self, lowered: Lowered) -> Result<Explored, AmosError> {
        let Lowered {
            def,
            accel,
            config,
            units,
        } = lowered;
        let explorer = Explorer::with_config(config);
        // Same key as the one-shot `explore_multi` path (so staged and
        // one-shot lookups share entries), including the warm-start donor
        // consultation on a miss.
        let result = self
            .cache
            .explore_units(&explorer, &def, &accel, &units)
            .map_err(|e| {
                AmosError::from(e)
                    .at_stage(Stage::Explore)
                    .for_operator(def.name())
                    .on_accelerator(&accel.name)
            })?;
        Ok(Explored { def, accel, result })
    }

    /// Stage 5: emits the mapping report, Table-4 IR and CUDA-like source
    /// for an exploration winner.
    pub fn emit(&self, explored: &Explored) -> Artifact {
        let result = &explored.result;
        Artifact {
            report: MappingReport::from_result(result, &explored.accel),
            ir: crate::codegen::emit_ir(&result.best_program, &result.best_schedule),
            cuda: crate::cuda_like::emit_cuda_like(&result.best_program, &result.best_schedule),
        }
    }

    // ---- one-shot entry points ---------------------------------------------

    /// Runs the whole pipeline under the base configuration with a single
    /// cache lookup: a repeated structure skips enumeration and lowering
    /// entirely and returns the cached winner.
    ///
    /// # Errors
    ///
    /// The underlying stage failure, with context attached.
    pub fn compile(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Result<Explored, AmosError> {
        self.compile_with(self.base.clone(), def, accel)
    }

    /// [`Engine::compile`] with a per-call configuration override.
    ///
    /// # Errors
    ///
    /// The underlying stage failure, with context attached.
    pub fn compile_with(
        &self,
        config: ExplorerConfig,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Result<Explored, AmosError> {
        let result = self.explore_op_with(config, def, accel)?;
        Ok(Explored {
            def: def.clone(),
            accel: accel.clone(),
            result,
        })
    }

    /// Explores `def` on `accel` under the base configuration, searching
    /// across every intrinsic of a heterogeneous device, memoised in the
    /// engine's cache.
    ///
    /// # Errors
    ///
    /// [`Stage::Explore`] wrapping the exploration failure.
    pub fn explore_op(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Result<ExplorationResult, AmosError> {
        self.explore_op_with(self.base.clone(), def, accel)
    }

    /// [`Engine::explore_op`] with a per-call configuration override.
    ///
    /// # Errors
    ///
    /// [`Stage::Explore`] wrapping the exploration failure.
    pub fn explore_op_with(
        &self,
        config: ExplorerConfig,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Result<ExplorationResult, AmosError> {
        let explorer = Explorer::with_config(config);
        self.cache
            .explore_multi(&explorer, def, accel)
            .map_err(|e| {
                AmosError::from(e)
                    .at_stage(Stage::Explore)
                    .for_operator(def.name())
                    .on_accelerator(&accel.name)
            })
    }

    /// [`Engine::explore_op_with`] for callers that already computed
    /// [`crate::shape_fingerprint`]`(def)` — network evaluation derives
    /// per-shape seeds from it — so the cache key reuses it instead of
    /// rebuilding it. `shape`, when given, **must** equal
    /// `shape_fingerprint(def)` (debug builds assert this).
    ///
    /// # Errors
    ///
    /// [`Stage::Explore`] wrapping the exploration failure.
    pub fn explore_op_shaped(
        &self,
        config: ExplorerConfig,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        shape: Option<&str>,
    ) -> Result<ExplorationResult, AmosError> {
        let explorer = Explorer::with_config(config);
        self.cache
            .explore_multi_shaped(&explorer, def, accel, shape)
            .map_err(|e| {
                AmosError::from(e)
                    .at_stage(Stage::Explore)
                    .for_operator(def.name())
                    .on_accelerator(&accel.name)
            })
    }

    /// Explores with a *fixed* mapping set under `tag` (the §7.6
    /// fixed-mapping baselines: AMOS's schedule tuner with the mapping
    /// frozen). The tag keeps different mapping flavours over the same
    /// shape from colliding in the cache.
    ///
    /// # Errors
    ///
    /// [`Stage::Explore`] wrapping the exploration failure.
    pub fn explore_fixed(
        &self,
        tag: &str,
        config: ExplorerConfig,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        mappings: Vec<Mapping>,
    ) -> Result<ExplorationResult, AmosError> {
        let explorer = Explorer::with_config(config);
        self.cache
            .explore_tagged(tag, &explorer, def, accel, || {
                explorer.explore_mappings_cached(def, accel, Some(mappings), Some(&self.cache))
            })
            .map_err(|e| {
                AmosError::from(e)
                    .at_stage(Stage::Explore)
                    .for_operator(def.name())
                    .on_accelerator(&accel.name)
            })
    }

    /// [`Engine::explore_fixed`] with a precomputed
    /// [`crate::shape_fingerprint`]`(def)` (same contract as
    /// [`Engine::explore_op_shaped`]).
    ///
    /// # Errors
    ///
    /// [`Stage::Explore`] wrapping the exploration failure.
    pub fn explore_fixed_shaped(
        &self,
        tag: &str,
        config: ExplorerConfig,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        mappings: Vec<Mapping>,
        shape: Option<&str>,
    ) -> Result<ExplorationResult, AmosError> {
        let explorer = Explorer::with_config(config);
        self.cache
            .explore_tagged_shaped(tag, &explorer, def, accel, shape, || {
                explorer.explore_mappings_cached(def, accel, Some(mappings), Some(&self.cache))
            })
            .map_err(|e| {
                AmosError::from(e)
                    .at_stage(Stage::Explore)
                    .for_operator(def.name())
                    .on_accelerator(&accel.name)
            })
    }
}

/// The registry an `--accel-dir` invocation runs against: the built-in
/// catalog, layered with every accelerator file in `accel_dir` when one is
/// given (same-name file wins; ISA-kind files are run through the
/// derivation pass).
///
/// # Errors
///
/// `AmosErrorKind::Accel` wrapping the file/line diagnostic of the first
/// unreadable or invalid file.
pub fn load_registry(accel_dir: Option<&Path>) -> Result<Registry, AmosError> {
    match accel_dir {
        None => Ok(Registry::builtin()),
        Some(dir) => Registry::load_dir(dir).map_err(AmosError::from),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AmosErrorKind;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn small_gemm() -> ComputeDef {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", 64);
        let j = b.spatial("j", 64);
        let k = b.reduce("k", 64);
        let a = b.input("a", &[64, 64], DType::F16);
        let w = b.input("b", &[64, 64], DType::F16);
        let c = b.output("c", &[64, 64], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, k]), w.at([k, j]));
        b.finish().expect("valid gemm")
    }

    fn tiny_config(seed: u64) -> ExplorerConfig {
        ExplorerConfig {
            population: 8,
            generations: 2,
            survivors: 3,
            measure_top: 2,
            seed,
            jobs: 1,
            ..Default::default()
        }
    }

    #[test]
    fn staged_pipeline_matches_one_shot_compile() {
        let def = small_gemm();
        let accel = catalog::v100();

        let staged_engine = Engine::with_config(tiny_config(7));
        let analyzed = staged_engine.analyze(&def, &accel);
        assert_eq!(analyzed.num_units(), 1);
        let mappings = staged_engine.generate(analyzed).expect("mappings");
        assert_eq!(mappings.total_mappings(), 1);
        let lowered = staged_engine.lower(mappings).expect("lowered");
        assert_eq!(lowered.total_programs(), 1);
        let staged = staged_engine.explore(lowered).expect("explored");

        let oneshot_engine = Engine::with_config(tiny_config(7));
        let oneshot = oneshot_engine.compile(&def, &accel).expect("compiled");

        assert_eq!(
            staged.cycles().to_bits(),
            oneshot.cycles().to_bits(),
            "staged and one-shot pipelines must agree bit-for-bit"
        );
        assert_eq!(
            staged.result().best_schedule,
            oneshot.result().best_schedule
        );
    }

    #[test]
    fn staged_and_one_shot_share_cache_entries() {
        let def = small_gemm();
        let accel = catalog::v100();
        let engine = Engine::with_config(tiny_config(3));

        let analyzed = engine.analyze(&def, &accel);
        let lowered = engine.lower(engine.generate(analyzed).unwrap()).unwrap();
        let staged = engine.explore(lowered).expect("staged");
        assert_eq!(engine.cache_stats().misses, 1);

        // The one-shot path over the same structure must be a pure hit.
        let oneshot = engine.compile(&def, &accel).expect("one-shot");
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 1);
        assert_eq!(staged.cycles().to_bits(), oneshot.cycles().to_bits());
    }

    #[test]
    fn heterogeneous_device_decomposes_into_units() {
        let engine = Engine::with_config(tiny_config(1));
        let analyzed = engine.analyze(&small_gemm(), &catalog::ascend_npu());
        assert_eq!(analyzed.num_units(), 2, "cube + vector units");
    }

    #[test]
    fn emit_produces_report_ir_and_source() {
        let engine = Engine::with_config(tiny_config(11));
        let explored = engine
            .compile(&small_gemm(), &catalog::v100())
            .expect("compiled");
        let artifact = engine.emit(&explored);
        assert!(!artifact.ir.is_empty());
        assert!(!artifact.cuda.is_empty());
        assert_eq!(artifact.report.intrinsic, "mma_sync");
    }

    #[test]
    fn errors_carry_stage_and_context() {
        let engine = Engine::with_config(tiny_config(1));
        // A pure elementwise op admits no tensor-core mapping.
        let mut b = ComputeBuilder::new("relu-ish");
        let i = b.spatial("i", 64);
        let x = b.input("x", &[64], DType::F16);
        let y = b.output("y", &[64], DType::F32);
        b.mul_acc(y.at([i]), x.at([i]), x.at([i]));
        let def = b.finish().expect("valid def");

        let accel = catalog::v100();
        let analyzed = engine.analyze(&def, &accel);
        let err = match engine.generate(analyzed) {
            Err(e) => e,
            Ok(set) => panic!("expected no mappings, got {}", set.total_mappings()),
        };
        assert_eq!(err.stage, Some(Stage::Generate));
        assert_eq!(err.operator.as_deref(), Some("relu-ish"));
        assert_eq!(err.accelerator.as_deref(), Some("v100"));
        assert!(matches!(err.kind, AmosErrorKind::Explore(_)));
        assert!(err.to_string().contains("[generate]"));
    }

    #[test]
    fn engine_resolves_accelerators_from_its_registry() {
        let engine = Engine::with_config(tiny_config(1));
        assert_eq!(engine.accelerator("v100").unwrap(), catalog::v100());
        let err = engine.accelerator("z9000").unwrap_err();
        assert!(matches!(err.kind, AmosErrorKind::Usage(_)));
        assert_eq!(err.accelerator.as_deref(), Some("z9000"));
        assert!(err.to_string().contains("v100"), "{err}");

        // A custom registry changes what the engine sees.
        let mut registry = amos_hw::Registry::builtin();
        let mut custom = registry.get("mini").unwrap().clone();
        custom.name = "my-npu".into();
        registry.register(custom);
        let engine = Engine::with_config(tiny_config(1)).with_registry(registry);
        assert!(engine.accelerator("my-npu").is_ok());
    }

    #[test]
    fn load_registry_surfaces_accel_errors() {
        assert_eq!(
            load_registry(None).unwrap().names(),
            amos_hw::Registry::builtin().names()
        );
        let dir = std::env::temp_dir().join(format!("amos-engine-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.toml"), "format = 1\nwhat = 3\n").unwrap();
        let err = load_registry(Some(&dir)).unwrap_err();
        assert!(matches!(err.kind, AmosErrorKind::Accel(_)));
        assert!(err.to_string().contains("bad.toml"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Code generation: lowering a mapped program and schedule into the
//! `Compute`/`Memory` statement IR of paper Table 4 (§6).
//!
//! The emitted tree is the human-readable face of the compiler output; the
//! executable form is interpreted directly from the [`MappedProgram`] by the
//! simulator, and both follow the same loop structure.

use amos_hw::{OperandRef, TransferDir};
use amos_ir::nodes::{BufferRef, Scope, Stmt};
use amos_ir::{Expr, IterId};
use amos_sim::{AxisKind, MappedProgram, Schedule};

/// Emits the Table-4 statement IR for a mapped program under a schedule.
///
/// Loop structure (outer to inner): parallel spatial axes (grid-split), then
/// sequential spatial remainders, accumulator init, reduction axes, per-source
/// `Memory` loads, one `Compute` call, and the final `Memory` store.
pub fn emit_ir(prog: &MappedProgram, schedule: &Schedule) -> Vec<Stmt> {
    let axes = prog.axes();
    let intr = prog.intrinsic();
    let num_srcs = intr.compute.num_srcs();

    // Loop variables: one per axis, in axis order.
    let loop_vars: Vec<(String, IterId, i64, bool)> = axes
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let name = match a.kind {
                AxisKind::OuterSpatial(id) | AxisKind::OuterReduction(id) => {
                    prog.def().iter_var(id).name.clone()
                }
                AxisKind::TileSpatial(t) | AxisKind::TileReduction(t) => {
                    format!("{}_o", intr.compute.iters()[t].name)
                }
            };
            let parallel = a.kind.is_spatial() && schedule.grid[i] > 1;
            (name, IterId(i as u32), a.extent, parallel)
        })
        .collect();

    let operand_ref = |r: OperandRef| -> BufferRef {
        let name = intr.compute.operand(r).name.clone();
        BufferRef {
            tensor: format!("{name}_frag"),
            scope: Scope::Register,
            indices: vec![],
        }
    };

    // Innermost body: loads, compute, (store emitted at spatial level).
    let mut body: Vec<Stmt> = Vec::new();
    for m in 0..num_srcs {
        let stmt = intr.memory.statement_for(OperandRef::Src(m));
        let load_name = stmt
            .and_then(|s| s.intrinsic.clone())
            .unwrap_or_else(|| "load".to_string());
        let src_scope = stmt
            .map(|s| match s.from {
                amos_ir::nodes::Scope::Global => Scope::Global,
                amos_ir::nodes::Scope::Shared => Scope::Shared,
                amos_ir::nodes::Scope::Register => Scope::Register,
            })
            .unwrap_or(Scope::Shared);
        // Tile indices: the axes this operand depends on.
        let indices: Vec<Expr> = axes
            .iter()
            .enumerate()
            .filter(|(_, a)| prog.operand_uses_axis(m, a))
            .map(|(i, _)| Expr::Var(IterId(i as u32)))
            .collect();
        let access = &prog.def().inputs()[prog.correspondence()[m]];
        body.push(Stmt::Memory {
            intrinsic: load_name,
            dst: operand_ref(OperandRef::Src(m)),
            src: BufferRef {
                tensor: prog.def().tensor(access.tensor).name.clone(),
                scope: src_scope,
                indices,
            },
        });
    }
    body.push(Stmt::Compute {
        intrinsic: intr.name.clone(),
        dst: operand_ref(OperandRef::Dst),
        srcs: (0..num_srcs)
            .map(|m| operand_ref(OperandRef::Src(m)))
            .collect(),
    });

    // Wrap reduction axes around the body.
    let mut inner = body;
    for (i, a) in axes.iter().enumerate().rev() {
        if a.kind.is_spatial() {
            continue;
        }
        let (name, id, extent, parallel) = loop_vars[i].clone();
        inner = vec![Stmt::Loop {
            var: name,
            id,
            extent,
            parallel,
            body: inner,
        }];
    }

    // Accumulator init, reduction loops, and the destination store.
    let mut spatial_body = vec![Stmt::Fill {
        dst: operand_ref(OperandRef::Dst),
        value: 0.0,
    }];
    spatial_body.extend(inner);
    let dst_row = num_srcs;
    let store_stmt = intr.memory.statement_for(OperandRef::Dst);
    let store_name = store_stmt
        .and_then(|s| s.intrinsic.clone())
        .unwrap_or_else(|| "store".to_string());
    debug_assert!(store_stmt
        .map(|s| s.dir == TransferDir::Store)
        .unwrap_or(true));
    let dst_indices: Vec<Expr> = axes
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind.is_spatial() && prog.operand_uses_axis(dst_row, a))
        .map(|(i, _)| Expr::Var(IterId(i as u32)))
        .collect();
    spatial_body.push(Stmt::Memory {
        intrinsic: store_name,
        dst: BufferRef {
            tensor: prog.def().tensor(prog.def().output().tensor).name.clone(),
            scope: Scope::Global,
            indices: dst_indices,
        },
        src: operand_ref(OperandRef::Dst),
    });

    // Wrap spatial axes.
    let mut program = spatial_body;
    for (i, a) in axes.iter().enumerate().rev() {
        if !a.kind.is_spatial() {
            continue;
        }
        let (name, id, extent, parallel) = loop_vars[i].clone();
        program = vec![Stmt::Loop {
            var: name,
            id,
            extent,
            parallel,
            body: program,
        }];
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::nodes::render_program;
    use amos_ir::{ComputeBuilder, DType};
    use amos_sim::FusedGroup;

    fn gemm_prog() -> MappedProgram {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", 64);
        let j = b.spatial("j", 64);
        let k = b.reduce("k", 64);
        let a = b.input("a", &[64, 64], DType::F16);
        let w = b.input("b", &[64, 64], DType::F16);
        let c = b.output("c", &[64, 64], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, k]), w.at([k, j]));
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        MappedProgram::new(
            def,
            catalog::wmma_16x16x16(),
            vec![
                FusedGroup::of(vec![ids[0]]),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[2]]),
            ],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn emitted_ir_has_expected_structure() {
        let prog = gemm_prog();
        let accel = catalog::v100();
        let schedule = Schedule::balanced(&prog, &accel);
        let ir = emit_ir(&prog, &schedule);
        let text = render_program(&ir);
        assert!(text.contains("parallel i1_o in 0..4"), "{text}");
        assert!(text.contains("for r1_o in 0..4"), "{text}");
        assert!(text.contains("load_matrix_sync(reg.Src1_frag[] <- shared.a[i1_o, r1_o])"));
        assert!(text.contains("mma_sync(reg.Dst_frag[], reg.Src1_frag[], reg.Src2_frag[])"));
        assert!(text.contains("store_matrix_sync(global.c[i1_o, i2_o] <- reg.Dst_frag[])"));
        assert!(text.contains("fill(reg.Dst_frag[], 0)"));
    }

    #[test]
    fn implicit_memory_intrinsics_emit_generic_loads() {
        // VNNI has no named memory intrinsics; loads/stores fall back to
        // generic statements.
        let mut b = ComputeBuilder::new("matvec");
        let i = b.spatial("i", 64);
        let k = b.reduce("k", 16);
        let a = b.input("a", &[64, 16], DType::I8);
        let x = b.input("x", &[16], DType::I8);
        let o = b.output("o", &[64], DType::I32);
        b.mul_acc(o.at([i.ex()]), a.at([i.ex(), k.ex()]), x.at([k.ex()]));
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def,
            catalog::avx512_vnni(),
            vec![FusedGroup::of(vec![ids[0]]), FusedGroup::of(vec![ids[1]])],
            vec![0, 1],
        )
        .unwrap();
        let ir = emit_ir(&prog, &Schedule::naive(&prog));
        let text = render_program(&ir);
        assert!(
            text.contains("load(reg.Src1_frag[] <- shared.a[i1_o, r1_o])"),
            "{text}"
        );
        assert!(
            text.contains("load(reg.Src2_frag[] <- shared.x[r1_o])"),
            "{text}"
        );
        assert!(text.contains("_mm512_dpbusds_epi32("), "{text}");
        assert!(
            text.contains("store(global.o[i1_o] <- reg.Dst_frag[])"),
            "{text}"
        );
    }

    #[test]
    fn outer_loops_appear_with_software_names() {
        // Map only j and k; i stays an outer software loop named `i`.
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", 4);
        let j = b.spatial("j", 64);
        let k = b.reduce("k", 64);
        let a = b.input("a", &[4, 64], DType::F16);
        let w = b.input("b", &[64, 64], DType::F16);
        let c = b.output("c", &[4, 64], DType::F32);
        b.mul_acc(
            c.at([i.ex(), j.ex()]),
            a.at([i.ex(), k.ex()]),
            w.at([k.ex(), j.ex()]),
        );
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def,
            catalog::wmma_16x16x16(),
            vec![
                FusedGroup::empty(),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[2]]),
            ],
            vec![0, 1],
        )
        .unwrap();
        let ir = emit_ir(&prog, &Schedule::naive(&prog));
        let text = render_program(&ir);
        assert!(text.contains("for i in 0..4 {"), "{text}");
    }

    #[test]
    fn sequential_schedule_has_no_parallel_loops() {
        let prog = gemm_prog();
        let ir = emit_ir(&prog, &Schedule::naive(&prog));
        let text = render_program(&ir);
        assert!(!text.contains("parallel"));
        assert!(text.contains("for i1_o in 0..4"));
    }
}

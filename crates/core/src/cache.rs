//! Cross-layer memoisation of exploration results.
//!
//! Real networks repeat layer shapes heavily (most ResNet residual blocks
//! share a handful of distinct convolution shapes), and the explorer is a
//! deterministic function of `(workload shape, accelerator, config)` — so a
//! network-level sweep only needs to pay the search cost once per distinct
//! shape and can replay the winner everywhere else.
//!
//! The cache is keyed by a *structural* fingerprint: the computation's
//! iteration space, tensor shapes, access patterns, operator and predicates
//! (but not its name, so `conv3` and `conv7` with identical shapes share an
//! entry), the full accelerator description, and every explorer knob except
//! [`ExplorerConfig::jobs`] — results are bit-identical for every thread
//! count, so `jobs` must not split entries.

use crate::explore::{
    Completion, ExplorationResult, ExploreError, Explorer, ExplorerConfig, LoweredUnit,
};
use crate::mapping::Mapping;
use amos_hw::AcceleratorSpec;
use amos_ir::ComputeDef;
use amos_sim::Schedule;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hit/miss counters of the engine's structural exploration cache. The three
/// fields partition top-level lookups: every lookup is exactly one of an
/// exact hit, a warm-started miss or a cold miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (exact structural key match).
    pub hits: usize,
    /// Lookups that missed but ran the explorer seeded from the nearest
    /// previously-explored shape (the similarity index; only populated when
    /// [`ExplorerConfig::warm_start`] is on).
    pub warm_starts: usize,
    /// Lookups that ran the explorer cold.
    pub misses: usize,
}

/// One donor entry of the warm-start similarity index: the winning candidate
/// of a previously-explored shape, keyed by operator class + accelerator and
/// ranked by extent distance at lookup time.
#[derive(Debug, Clone)]
pub(crate) struct WarmStart {
    /// Iteration extents of the donor shape (the similarity metric's input).
    pub(crate) extents: Vec<i64>,
    /// The donor's winning mapping.
    pub(crate) mapping: Mapping,
    /// The donor's winning schedule.
    pub(crate) schedule: Schedule,
    /// Name of the intrinsic the winner mapped onto; units of a
    /// heterogeneous accelerator only accept donors of their own intrinsic.
    pub(crate) intrinsic: String,
}

/// A thread-safe memo table for exploration runs.
///
/// Failed explorations (`Err`) are cached too: a shape with no valid mapping
/// stays unmappable, and network sweeps probe such shapes repeatedly.
#[derive(Debug, Default)]
pub struct ExplorationCache {
    entries: Mutex<HashMap<String, Result<ExplorationResult, ExploreError>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    warm_starts: AtomicUsize,
    // The refinement phase's internal sub-runs are memoised under separate
    // counters so they don't distort the caller-visible `stats()` — a hit
    // rate over top-level lookups, as every existing consumer expects.
    refine_hits: AtomicUsize,
    refine_misses: AtomicUsize,
    // The similarity index: operator class + accelerator -> donors, one per
    // distinct donor shape (first clean result wins; exploration is
    // deterministic, so re-running a shape can never produce a different
    // donor). Recorded on every clean top-level result regardless of
    // `warm_start`, so enabling the flag mid-session benefits from shapes
    // explored before it.
    warm_index: Mutex<HashMap<String, Vec<WarmStart>>>,
}

impl ExplorationCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Refinement sub-runs answered from the cache (tracked separately from
    /// [`ExplorationCache::stats`], which counts top-level lookups only).
    pub fn refine_hits(&self) -> usize {
        self.refine_hits.load(Ordering::Relaxed)
    }

    /// Refinement sub-runs that had to run the generation loop.
    pub fn refine_misses(&self) -> usize {
        self.refine_misses.load(Ordering::Relaxed)
    }

    /// Number of distinct (shape, accelerator, config) entries stored.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// [`Explorer::explore_multi`] with memoisation. The explorer's
    /// refinement phase also routes its per-mapping sub-runs through this
    /// cache, so a miss here still reuses any previously-tuned shortlisted
    /// mappings. With [`ExplorerConfig::warm_start`] on, a miss additionally
    /// consults the similarity index and seeds the search from the nearest
    /// previously-explored shape of the same operator class.
    pub fn explore_multi(
        &self,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_warm(explorer, def, accel, |warm| {
            explorer.explore_multi_cached(def, accel, Some(self), warm)
        })
    }

    /// The staged-pipeline flavour of [`ExplorationCache::explore_multi`]:
    /// runs the merge loop over pre-lowered units, under the *same* cache
    /// key, so the staged [`crate::Engine`] pipeline and the one-shot path
    /// share entries.
    pub(crate) fn explore_units(
        &self,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        units: &[LoweredUnit],
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_warm(explorer, def, accel, |warm| {
            explorer.explore_units_cached(def, accel, units, Some(self), warm)
        })
    }

    /// The shared top-level lookup: resolve the structural key, consult the
    /// similarity index on a miss (when enabled), run, then record the clean
    /// winner as a donor for future shapes of the same class. The donor is
    /// resolved *before* the run starts (and the run is deterministic given
    /// that donor), so results are bit-identical for a fixed cache state at
    /// any thread count.
    fn explore_warm(
        &self,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        run: impl FnOnce(Option<&WarmStart>) -> Result<ExplorationResult, ExploreError>,
    ) -> Result<ExplorationResult, ExploreError> {
        let key = fingerprint("multi", explorer.config(), def, accel);
        let cached = self.entries.lock().expect("cache lock").contains_key(&key);
        let warm = if explorer.config().warm_start && !cached {
            self.find_warm_start(def, accel)
        } else {
            None
        };
        // Exact hits stay `hits`; misses split by whether a donor seeded
        // the run, so the three `CacheStats` fields partition lookups.
        let miss_counter = if warm.is_some() {
            &self.warm_starts
        } else {
            &self.misses
        };
        let result = self.run_counted(key, || run(warm.as_ref()), &self.hits, miss_counter);
        self.record_warm_start(def, accel, &result);
        result
    }

    /// Nearest previously-explored shape of `def`'s operator class on
    /// `accel`: minimal sum of absolute log-ratios over iteration extents
    /// (scale-invariant, so 64->128 is as far as 128->256). Ties keep the
    /// first-recorded donor — deterministic for a fixed cache state.
    fn find_warm_start(&self, def: &ComputeDef, accel: &AcceleratorSpec) -> Option<WarmStart> {
        let key = warm_key(def, accel);
        let extents: Vec<i64> = def.iters().iter().map(|it| it.extent).collect();
        let index = self.warm_index.lock().expect("warm index lock");
        let donors = index.get(&key)?;
        let mut best: Option<(f64, &WarmStart)> = None;
        for d in donors {
            if d.extents.len() != extents.len() {
                continue;
            }
            let dist: f64 = d
                .extents
                .iter()
                .zip(&extents)
                .map(|(&a, &b)| ((a as f64).ln() - (b as f64).ln()).abs())
                .sum();
            if best.as_ref().map(|&(bd, _)| dist < bd).unwrap_or(true) {
                best = Some((dist, d));
            }
        }
        best.map(|(_, d)| d.clone())
    }

    /// Records a clean top-level result as a donor for its operator class.
    /// Only `Finished` runs qualify (a truncated best-so-far is not a
    /// converged winner), and the first donor per distinct shape wins.
    fn record_warm_start(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        result: &Result<ExplorationResult, ExploreError>,
    ) {
        let Ok(r) = result else { return };
        if r.completion != Completion::Finished {
            return;
        }
        let key = warm_key(def, accel);
        let extents: Vec<i64> = def.iters().iter().map(|it| it.extent).collect();
        let mut index = self.warm_index.lock().expect("warm index lock");
        let donors = index.entry(key).or_default();
        if donors.iter().any(|d| d.extents == extents) {
            return;
        }
        donors.push(WarmStart {
            extents,
            mapping: r.best_mapping.clone(),
            schedule: r.best_schedule.clone(),
            intrinsic: r.best_program.intrinsic().name.clone(),
        });
    }

    /// Memoises one refinement sub-run. Counted under the refinement
    /// counters, not [`ExplorationCache::stats`].
    pub(crate) fn refine_tagged(
        &self,
        tag: &str,
        config: &ExplorerConfig,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        run: impl FnOnce() -> Result<ExplorationResult, ExploreError>,
    ) -> Result<ExplorationResult, ExploreError> {
        let key = fingerprint(tag, config, def, accel);
        self.run_counted(key, run, &self.refine_hits, &self.refine_misses)
    }

    /// Memoises an arbitrary exploration flavour under an extra `tag`
    /// (e.g. a fixed-mapping baseline's template name). The tag keeps
    /// different flavours over the same shape from colliding.
    pub fn explore_tagged(
        &self,
        tag: &str,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        run: impl FnOnce() -> Result<ExplorationResult, ExploreError>,
    ) -> Result<ExplorationResult, ExploreError> {
        let key = fingerprint(tag, explorer.config(), def, accel);
        self.run_keyed(key, run)
    }

    fn run_keyed(
        &self,
        key: String,
        run: impl FnOnce() -> Result<ExplorationResult, ExploreError>,
    ) -> Result<ExplorationResult, ExploreError> {
        self.run_counted(key, run, &self.hits, &self.misses)
    }

    fn run_counted(
        &self,
        key: String,
        run: impl FnOnce() -> Result<ExplorationResult, ExploreError>,
        hits: &AtomicUsize,
        misses: &AtomicUsize,
    ) -> Result<ExplorationResult, ExploreError> {
        if let Some(cached) = self.entries.lock().expect("cache lock").get(&key) {
            hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        // The lock is NOT held while exploring: a search can take seconds and
        // other layers (other threads) must be able to probe the cache. Two
        // threads racing on the same key both run the (deterministic) search
        // and store identical results — wasteful but correct.
        misses.fetch_add(1, Ordering::Relaxed);
        let result = run();
        if cacheable(&result) {
            self.entries
                .lock()
                .expect("cache lock")
                .insert(key, result.clone());
        }
        result
    }
}

/// Whether one exploration outcome may populate the cache.
///
/// `Err` results are cached (a shape with no valid mapping stays
/// unmappable), and so are clean [`Completion::Finished`] runs — which are
/// budget-invariant, because cancellation only fires at generation
/// boundaries: a budget loose enough to finish never changed any candidate.
/// Truncated and degraded runs are **not** stored: replaying a
/// deadline-clipped best-so-far as if it were the converged winner would
/// poison every later lookup of the same shape.
fn cacheable(result: &Result<ExplorationResult, ExploreError>) -> bool {
    match result {
        Err(_) => true,
        Ok(r) => r.completion == Completion::Finished,
    }
}

/// Structural identity of one exploration request.
///
/// Deliberately *excludes* the computation's name (same-shape layers must
/// share an entry) and `config.jobs` (results are thread-count-invariant).
/// The [`crate::explore::Budget`] is excluded for the same reason the
/// policy above is safe: only `Finished` results are stored, and those are
/// identical under every budget.
fn fingerprint(
    tag: &str,
    config: &ExplorerConfig,
    def: &ComputeDef,
    accel: &AcceleratorSpec,
) -> String {
    let mut s = String::with_capacity(512);
    // `warm_start` splits entries: a warm-started result depends on the
    // cache state at lookup time, so it must never answer a cold lookup.
    let _ = write!(
        s,
        "{tag};cfg:{}/{}/{}/{}/{}/w{};{};",
        config.population,
        config.generations,
        config.survivors,
        config.measure_top,
        config.seed,
        config.warm_start as u8,
        shape_fingerprint(def),
    );
    // An active fault plan changes which candidates survive, so it must
    // split cache entries (test-harness builds only).
    #[cfg(feature = "fault-injection")]
    {
        let _ = write!(s, "faults:{};", config.faults);
    }
    // The full accelerator description (hierarchy, memories, intrinsics) —
    // derived Debug covers every field, so two distinct machines never
    // collide.
    let _ = write!(s, "accel:{accel:?}");
    s
}

/// Structural identity of a computation alone: iteration space, tensor
/// shapes, access patterns, operator and predicates — but not the
/// computation's name, so same-shape layers of a network share it. Callers
/// that need shape-keyed bookkeeping of their own (e.g. deriving one seed per
/// distinct layer shape) can reuse it.
pub fn shape_fingerprint(def: &ComputeDef) -> String {
    let mut s = String::with_capacity(256);
    for it in def.iters() {
        let _ = write!(s, "i:{}:{}:{:?};", it.name, it.extent, it.kind);
    }
    for t in def.tensors() {
        let _ = write!(s, "t:{:?}:{:?}:{:?};", t.shape, t.dtype, t.role);
    }
    let _ = write!(s, "out:{:?};", def.output());
    for a in def.inputs() {
        let _ = write!(s, "in:{:?};", a);
    }
    let _ = write!(s, "op:{:?};preds:{:?}", def.op(), def.predicates());
    s
}

/// Operator-*class* identity: [`shape_fingerprint`] with every extent
/// stripped — iteration names and kinds, tensor dtypes and roles, access
/// patterns and the operator. Differently-sized instances of one operator
/// family (all the 3x3 stride-1 convolutions of a network, say) share it;
/// predicates are deliberately excluded because padding guards embed
/// extents, and a donor only *seeds* the search — it is re-validated on the
/// new shape, never trusted.
fn class_fingerprint(def: &ComputeDef) -> String {
    let mut s = String::with_capacity(256);
    for it in def.iters() {
        let _ = write!(s, "i:{}:{:?};", it.name, it.kind);
    }
    for t in def.tensors() {
        let _ = write!(s, "t:{:?}:{:?};", t.dtype, t.role);
    }
    let _ = write!(s, "out:{:?};", def.output());
    for a in def.inputs() {
        let _ = write!(s, "in:{:?};", a);
    }
    let _ = write!(s, "op:{:?}", def.op());
    s
}

/// Key of the warm-start similarity index: operator class + the full
/// accelerator description (a donor tuned for one machine must not seed
/// another).
fn warm_key(def: &ComputeDef, accel: &AcceleratorSpec) -> String {
    let mut s = class_fingerprint(def);
    let _ = write!(s, ";accel:{accel:?}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn gemm(name: &str, m: i64, n: i64, k: i64) -> ComputeDef {
        let mut b = ComputeBuilder::new(name);
        let i = b.spatial("i", m);
        let j = b.spatial("j", n);
        let r = b.reduce("k", k);
        let a = b.input("a", &[m, k], DType::F16);
        let w = b.input("b", &[k, n], DType::F16);
        let c = b.output("c", &[m, n], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, r]), w.at([r, j]));
        b.finish().unwrap()
    }

    fn small_explorer(seed: u64) -> Explorer {
        Explorer::with_config(ExplorerConfig {
            population: 8,
            generations: 2,
            survivors: 3,
            measure_top: 2,
            seed,
            jobs: 1,
            ..Default::default()
        })
    }

    #[test]
    fn repeated_shape_hits_regardless_of_name() {
        let cache = ExplorationCache::new();
        let e = small_explorer(11);
        let accel = catalog::v100();
        let cold = cache
            .explore_multi(&e, &gemm("g_one", 64, 64, 64), &accel)
            .unwrap();
        let warm = cache
            .explore_multi(&e, &gemm("g_two", 64, 64, 64), &accel)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                warm_starts: 0,
                misses: 1
            }
        );
        assert_eq!(cold.cycles(), warm.cycles());
        assert_eq!(cold.best_schedule, warm.best_schedule);
    }

    #[test]
    fn distinct_shapes_seeds_and_accels_miss() {
        let cache = ExplorationCache::new();
        let e = small_explorer(11);
        cache
            .explore_multi(&e, &gemm("g", 64, 64, 64), &catalog::v100())
            .unwrap();
        // Different extent.
        cache
            .explore_multi(&e, &gemm("g", 128, 64, 64), &catalog::v100())
            .unwrap();
        // Different machine.
        cache
            .explore_multi(&e, &gemm("g", 64, 64, 64), &catalog::a100())
            .unwrap();
        // Different seed.
        cache
            .explore_multi(
                &small_explorer(12),
                &gemm("g", 64, 64, 64),
                &catalog::v100(),
            )
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                warm_starts: 0,
                misses: 4
            }
        );
    }

    #[test]
    fn jobs_does_not_split_entries() {
        let cache = ExplorationCache::new();
        let mut cfg = small_explorer(5).config().clone();
        let accel = catalog::v100();
        cfg.jobs = 1;
        cache
            .explore_multi(
                &Explorer::with_config(cfg.clone()),
                &gemm("g", 64, 64, 64),
                &accel,
            )
            .unwrap();
        cfg.jobs = 4;
        cache
            .explore_multi(&Explorer::with_config(cfg), &gemm("g", 64, 64, 64), &accel)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                warm_starts: 0,
                misses: 1
            }
        );
    }

    #[test]
    fn truncated_runs_do_not_populate_the_cache() {
        use crate::explore::{Budget, Completion};
        let cache = ExplorationCache::new();
        let mut cfg = small_explorer(21).config().clone();
        cfg.budget = Budget {
            max_measurements: Some(1),
            ..Budget::default()
        };
        let accel = catalog::v100();
        let def = gemm("g", 64, 64, 64);
        let truncated = cache
            .explore_multi(&Explorer::with_config(cfg.clone()), &def, &accel)
            .unwrap();
        assert_eq!(truncated.completion, Completion::BudgetExhausted);
        assert_eq!(cache.len(), 0, "a truncated best-so-far must not be stored");
        // The same shape under the same config misses again (and is still
        // counted as a miss, not an error).
        cache
            .explore_multi(&Explorer::with_config(cfg), &def, &accel)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                warm_starts: 0,
                misses: 2
            }
        );
    }

    #[test]
    fn failed_explorations_are_cached() {
        // A pure reduction has no valid Tensor Core mapping.
        let mut b = ComputeBuilder::new("sum");
        let i = b.spatial("i", 4);
        let k = b.reduce("k", 4);
        let a = b.input("a", &[4, 4], DType::F32);
        let o = b.output("o", &[4], DType::F32);
        b.add_acc(o.at([i]), a.at([i, k]));
        let def = b.finish().unwrap();

        let cache = ExplorationCache::new();
        let e = small_explorer(1);
        let accel = catalog::v100();
        assert!(cache.explore_multi(&e, &def, &accel).is_err());
        assert!(cache.explore_multi(&e, &def, &accel).is_err());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                warm_starts: 0,
                misses: 1
            }
        );
    }

    fn warm_explorer(seed: u64) -> Explorer {
        let mut cfg = small_explorer(seed).config().clone();
        cfg.warm_start = true;
        Explorer::with_config(cfg)
    }

    #[test]
    fn warm_start_counters_partition_lookups() {
        let cache = ExplorationCache::new();
        let e = warm_explorer(11);
        let accel = catalog::v100();
        // Cold: no donor of this class exists yet.
        let cold = cache
            .explore_multi(&e, &gemm("g", 64, 64, 64), &accel)
            .unwrap();
        // Same class, different extents: the 64^3 winner donates.
        let seeded = cache
            .explore_multi(&e, &gemm("g", 128, 128, 64), &accel)
            .unwrap();
        assert!(seeded.warm_start.donors > 0, "{:?}", seeded.warm_start);
        assert!(
            seeded.warm_start.seeded_slots > 0,
            "{:?}",
            seeded.warm_start
        );
        // Exact repeat of the first shape: an exact hit, not a warm start.
        cache
            .explore_multi(&e, &gemm("g2", 64, 64, 64), &accel)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                warm_starts: 1,
                misses: 1
            }
        );
        assert_eq!(cold.warm_start, crate::explore::WarmStartStats::default());
    }

    #[test]
    fn warm_start_flag_keys_the_cache() {
        // The same shape explored warm and cold must not collide: the warm
        // run's trajectory depends on the donor, so sharing an entry would
        // make results depend on exploration order. (The cold winner still
        // donates — at distance zero — so the warm run counts as warm.)
        let cache = ExplorationCache::new();
        let accel = catalog::v100();
        cache
            .explore_multi(&small_explorer(11), &gemm("g", 64, 64, 64), &accel)
            .unwrap();
        cache
            .explore_multi(&warm_explorer(11), &gemm("g", 64, 64, 64), &accel)
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                warm_starts: 1,
                misses: 1
            }
        );
    }

    #[test]
    fn donors_do_not_cross_operator_classes_or_machines() {
        let cache = ExplorationCache::new();
        let e = warm_explorer(11);
        cache
            .explore_multi(&e, &gemm("g", 64, 64, 64), &catalog::v100())
            .unwrap();
        // Same class on a different machine: no donor.
        cache
            .explore_multi(&e, &gemm("g", 128, 128, 64), &catalog::a100())
            .unwrap();
        // Different dtype (a different class) on the same machine: no donor.
        let mut b = ComputeBuilder::new("g32");
        let i = b.spatial("i", 128);
        let j = b.spatial("j", 128);
        let r = b.reduce("k", 64);
        let a = b.input("a", &[128, 64], DType::F32);
        let w = b.input("b", &[64, 128], DType::F32);
        let c = b.output("c", &[128, 128], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, r]), w.at([r, j]));
        let _ = cache.explore_multi(&e, &b.finish().unwrap(), &catalog::v100());
        assert_eq!(cache.stats().warm_starts, 0, "{:?}", cache.stats());
    }
}

//! Cross-layer memoisation of exploration results.
//!
//! Real networks repeat layer shapes heavily (most ResNet residual blocks
//! share a handful of distinct convolution shapes), and the explorer is a
//! deterministic function of `(workload shape, accelerator, config)` — so a
//! network-level sweep only needs to pay the search cost once per distinct
//! shape and can replay the winner everywhere else.
//!
//! The cache is keyed by a *structural* fingerprint: the computation's
//! iteration space, tensor shapes, access patterns, operator and predicates
//! (but not its name, so `conv3` and `conv7` with identical shapes share an
//! entry), the full accelerator description, and every explorer knob except
//! [`ExplorerConfig::jobs`] — results are bit-identical for every thread
//! count, so `jobs` must not split entries.

use crate::disk::{CacheConfig, DiskCache};
use crate::explore::{
    Completion, ExplorationResult, ExploreError, Explorer, ExplorerConfig, LoweredUnit,
};
use crate::mapping::Mapping;
use amos_hw::AcceleratorSpec;
use amos_ir::ComputeDef;
use amos_sim::Schedule;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hit/miss counters of the engine's structural exploration cache. The four
/// fields partition top-level lookups: every lookup is exactly one of an
/// in-memory (L1) hit, an on-disk (L2) hit, a warm-started miss or a cold
/// miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the in-memory L1 (exact structural key match).
    pub hits: usize,
    /// Lookups answered from the persistent on-disk L2 (validated entry
    /// written by an earlier process; always 0 without a
    /// [`CacheConfig::cache_dir`]).
    pub l2_hits: usize,
    /// Lookups that missed but ran the explorer seeded from the nearest
    /// previously-explored shape (the similarity index; only populated when
    /// [`ExplorerConfig::warm_start`] is on).
    pub warm_starts: usize,
    /// Lookups that ran the explorer cold.
    pub misses: usize,
}

/// One donor entry of the warm-start similarity index: the winning candidate
/// of a previously-explored shape, keyed by operator class + accelerator and
/// ranked by extent distance at lookup time.
#[derive(Debug, Clone)]
pub(crate) struct WarmStart {
    /// Iteration extents of the donor shape (the similarity metric's input).
    pub(crate) extents: Vec<i64>,
    /// The donor's winning mapping.
    pub(crate) mapping: Mapping,
    /// The donor's winning schedule.
    pub(crate) schedule: Schedule,
    /// Name of the intrinsic the winner mapped onto; units of a
    /// heterogeneous accelerator only accept donors of their own intrinsic.
    pub(crate) intrinsic: String,
}

/// A thread-safe memo table for exploration runs.
///
/// Failed explorations (`Err`) are cached too: a shape with no valid mapping
/// stays unmappable, and network sweeps probe such shapes repeatedly.
#[derive(Debug, Default)]
pub struct ExplorationCache {
    entries: Mutex<HashMap<String, Result<ExplorationResult, ExploreError>>>,
    // The persistent L2 behind the in-memory map, when configured. Probed
    // after an L1 miss; clean `Finished` misses write through to it.
    disk: Option<DiskCache>,
    hits: AtomicUsize,
    l2_hits: AtomicUsize,
    misses: AtomicUsize,
    warm_starts: AtomicUsize,
    // The refinement phase's internal sub-runs are memoised under separate
    // counters so they don't distort the caller-visible `stats()` — a hit
    // rate over top-level lookups, as every existing consumer expects.
    refine_hits: AtomicUsize,
    refine_misses: AtomicUsize,
    // The similarity index: operator class + accelerator -> donors, one per
    // distinct donor shape (first clean result wins; exploration is
    // deterministic, so re-running a shape can never produce a different
    // donor). Recorded on every clean top-level result regardless of
    // `warm_start`, so enabling the flag mid-session benefits from shapes
    // explored before it.
    warm_index: Mutex<HashMap<String, Vec<WarmStart>>>,
}

impl ExplorationCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty L1 over the configured persistent L2 (when
    /// [`CacheConfig::cache_dir`] is set). Construction is infallible: an
    /// unusable directory degrades every lookup to a cold miss and every
    /// store to a no-op.
    pub(crate) fn with_disk(config: &CacheConfig) -> Self {
        let mut cache = Self::new();
        cache.disk = config.cache_dir.clone().map(DiskCache::new);
        cache
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            l2_hits: self.l2_hits.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Refinement sub-runs answered from the cache (tracked separately from
    /// [`ExplorationCache::stats`], which counts top-level lookups only).
    pub fn refine_hits(&self) -> usize {
        self.refine_hits.load(Ordering::Relaxed)
    }

    /// Refinement sub-runs that had to run the generation loop.
    pub fn refine_misses(&self) -> usize {
        self.refine_misses.load(Ordering::Relaxed)
    }

    /// Number of distinct (shape, accelerator, config) entries stored.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// [`Explorer::explore_multi`] with memoisation. The explorer's
    /// refinement phase also routes its per-mapping sub-runs through this
    /// cache, so a miss here still reuses any previously-tuned shortlisted
    /// mappings. With [`ExplorerConfig::warm_start`] on, a miss additionally
    /// consults the similarity index and seeds the search from the nearest
    /// previously-explored shape of the same operator class.
    pub fn explore_multi(
        &self,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_multi_shaped(explorer, def, accel, None)
    }

    /// [`ExplorationCache::explore_multi`] with a precomputed
    /// [`shape_fingerprint`] of `def`, so callers that already derived one
    /// (e.g. for per-shape seeds) don't pay for it twice. `shape` **must**
    /// equal `shape_fingerprint(def)`.
    pub(crate) fn explore_multi_shaped(
        &self,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        shape: Option<&str>,
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_warm(explorer, def, accel, shape, |warm| {
            explorer.explore_multi_cached(def, accel, Some(self), warm)
        })
    }

    /// The staged-pipeline flavour of [`ExplorationCache::explore_multi`]:
    /// runs the merge loop over pre-lowered units, under the *same* cache
    /// key, so the staged [`crate::Engine`] pipeline and the one-shot path
    /// share entries.
    pub(crate) fn explore_units(
        &self,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        units: &[LoweredUnit],
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_warm(explorer, def, accel, None, |warm| {
            explorer.explore_units_cached(def, accel, units, Some(self), warm)
        })
    }

    /// The shared top-level lookup: resolve the structural key, probe L1
    /// then the persistent L2, consult the similarity index on a full miss
    /// (when enabled), run, then record the clean winner as a donor for
    /// future shapes of the same class. The donor is resolved *before* the
    /// run starts (and the run is deterministic given that donor), so
    /// results are bit-identical for a fixed cache state at any thread
    /// count. An L2 hit is promoted into L1 and — like an L1 hit — still
    /// records its winner as a donor, so a warm process rebuilds its
    /// similarity index from disk.
    fn explore_warm(
        &self,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        shape: Option<&str>,
        run: impl FnOnce(Option<&WarmStart>) -> Result<ExplorationResult, ExploreError>,
    ) -> Result<ExplorationResult, ExploreError> {
        let key = fingerprint("multi", explorer.config(), def, accel, shape);
        if let Some(hit) = self.probe_tiers(&key, def, accel) {
            self.record_warm_start(def, accel, &hit);
            return hit;
        }
        let warm = if explorer.config().warm_start {
            self.find_warm_start(def, accel)
        } else {
            None
        };
        // L1/L2 hits were counted above; misses split by whether a donor
        // seeded the run, so the four `CacheStats` fields partition lookups.
        let miss_counter = if warm.is_some() {
            &self.warm_starts
        } else {
            &self.misses
        };
        miss_counter.fetch_add(1, Ordering::Relaxed);
        let result = run(warm.as_ref());
        self.insert(key, &result);
        self.record_warm_start(def, accel, &result);
        result
    }

    /// Probes L1 then L2 for `key`, counting whichever answers. An L2 hit
    /// is promoted into L1 so later lookups skip re-validation.
    fn probe_tiers(
        &self,
        key: &str,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Option<Result<ExplorationResult, ExploreError>> {
        if let Some(cached) = self.entries.lock().expect("cache lock").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(cached.clone());
        }
        let loaded = self.disk.as_ref()?.load(key, def, accel)?;
        self.l2_hits.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key.to_string(), Ok(loaded.clone()));
        Some(Ok(loaded))
    }

    /// Stores a cacheable result in L1 and writes clean `Finished` results
    /// through to L2 (`Err` entries stay in-memory: "this shape has no
    /// valid mapping" is cheap to rediscover and not worth trusting across
    /// code versions).
    fn insert(&self, key: String, result: &Result<ExplorationResult, ExploreError>) {
        if !cacheable(result) {
            return;
        }
        if let (Some(disk), Ok(r)) = (&self.disk, result) {
            disk.store(&key, r);
        }
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key, result.clone());
    }

    /// Nearest previously-explored shape of `def`'s operator class on
    /// `accel`: minimal sum of absolute log-ratios over iteration extents
    /// (scale-invariant, so 64->128 is as far as 128->256). Donors are kept
    /// sorted by extents, so ties resolve to the lexicographically smallest
    /// donor shape — deterministic for a fixed cache *population*,
    /// independent of the order explorations completed in.
    fn find_warm_start(&self, def: &ComputeDef, accel: &AcceleratorSpec) -> Option<WarmStart> {
        let key = warm_key(def, accel);
        let extents: Vec<i64> = def.iters().iter().map(|it| it.extent).collect();
        let index = self.warm_index.lock().expect("warm index lock");
        let donors = index.get(&key)?;
        let mut best: Option<(f64, &WarmStart)> = None;
        for d in donors {
            if d.extents.len() != extents.len() {
                continue;
            }
            let dist: f64 = d
                .extents
                .iter()
                .zip(&extents)
                .map(|(&a, &b)| ((a as f64).ln() - (b as f64).ln()).abs())
                .sum();
            if best.as_ref().map(|&(bd, _)| dist < bd).unwrap_or(true) {
                best = Some((dist, d));
            }
        }
        best.map(|(_, d)| d.clone())
    }

    /// Records a clean top-level result as a donor for its operator class.
    /// Only `Finished` runs qualify (a truncated best-so-far is not a
    /// converged winner). One donor per distinct shape, kept sorted by
    /// extents: exploration is deterministic per shape, so duplicates are
    /// identical, and sorted order makes the index independent of the order
    /// concurrent explorations complete in.
    fn record_warm_start(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        result: &Result<ExplorationResult, ExploreError>,
    ) {
        let Ok(r) = result else { return };
        if r.completion != Completion::Finished {
            return;
        }
        let key = warm_key(def, accel);
        let extents: Vec<i64> = def.iters().iter().map(|it| it.extent).collect();
        let mut index = self.warm_index.lock().expect("warm index lock");
        let donors = index.entry(key).or_default();
        let Err(pos) = donors.binary_search_by(|d| d.extents.cmp(&extents)) else {
            return;
        };
        donors.insert(
            pos,
            WarmStart {
                extents,
                mapping: r.best_mapping.clone(),
                schedule: r.best_schedule.clone(),
                intrinsic: r.best_program.intrinsic().name.clone(),
            },
        );
    }

    /// Memoises one refinement sub-run. Counted under the refinement
    /// counters, not [`ExplorationCache::stats`].
    pub(crate) fn refine_tagged(
        &self,
        tag: &str,
        config: &ExplorerConfig,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        run: impl FnOnce() -> Result<ExplorationResult, ExploreError>,
    ) -> Result<ExplorationResult, ExploreError> {
        let key = fingerprint(tag, config, def, accel, None);
        self.run_counted(key, run, &self.refine_hits, &self.refine_misses)
    }

    /// Memoises an arbitrary exploration flavour under an extra `tag`
    /// (e.g. a fixed-mapping baseline's template name). The tag keeps
    /// different flavours over the same shape from colliding.
    pub fn explore_tagged(
        &self,
        tag: &str,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        run: impl FnOnce() -> Result<ExplorationResult, ExploreError>,
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_tagged_shaped(tag, explorer, def, accel, None, run)
    }

    /// [`ExplorationCache::explore_tagged`] with a precomputed
    /// [`shape_fingerprint`] of `def` (must equal `shape_fingerprint(def)`).
    pub(crate) fn explore_tagged_shaped(
        &self,
        tag: &str,
        explorer: &Explorer,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        shape: Option<&str>,
        run: impl FnOnce() -> Result<ExplorationResult, ExploreError>,
    ) -> Result<ExplorationResult, ExploreError> {
        let key = fingerprint(tag, explorer.config(), def, accel, shape);
        if let Some(hit) = self.probe_tiers(&key, def, accel) {
            return hit;
        }
        // The lock is NOT held while exploring: a search can take seconds and
        // other layers (other threads) must be able to probe the cache. Two
        // threads racing on the same key both run the (deterministic) search
        // and store identical results — wasteful but correct.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = run();
        self.insert(key, &result);
        result
    }

    /// L1-only memoisation (the refinement path: sub-runs are internal to
    /// one exploration, so persisting them would only duplicate the
    /// top-level entry's information on disk).
    fn run_counted(
        &self,
        key: String,
        run: impl FnOnce() -> Result<ExplorationResult, ExploreError>,
        hits: &AtomicUsize,
        misses: &AtomicUsize,
    ) -> Result<ExplorationResult, ExploreError> {
        if let Some(cached) = self.entries.lock().expect("cache lock").get(&key) {
            hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        misses.fetch_add(1, Ordering::Relaxed);
        let result = run();
        if cacheable(&result) {
            self.entries
                .lock()
                .expect("cache lock")
                .insert(key, result.clone());
        }
        result
    }
}

/// Whether one exploration outcome may populate the cache.
///
/// `Err` results are cached (a shape with no valid mapping stays
/// unmappable), and so are clean [`Completion::Finished`] runs — which are
/// budget-invariant, because cancellation only fires at generation
/// boundaries: a budget loose enough to finish never changed any candidate.
/// Truncated and degraded runs are **not** stored: replaying a
/// deadline-clipped best-so-far as if it were the converged winner would
/// poison every later lookup of the same shape.
fn cacheable(result: &Result<ExplorationResult, ExploreError>) -> bool {
    match result {
        Err(_) => true,
        Ok(r) => r.completion == Completion::Finished,
    }
}

/// Structural identity of one exploration request.
///
/// Deliberately *excludes* the computation's name (same-shape layers must
/// share an entry) and `config.jobs` (results are thread-count-invariant).
/// The [`crate::explore::Budget`] is excluded for the same reason the
/// policy above is safe: only `Finished` results are stored, and those are
/// identical under every budget.
fn fingerprint(
    tag: &str,
    config: &ExplorerConfig,
    def: &ComputeDef,
    accel: &AcceleratorSpec,
    shape: Option<&str>,
) -> String {
    // Callers may pass `def`'s shape fingerprint when they already computed
    // one (network evaluation derives per-shape seeds from it), saving the
    // rebuild; it is the caller's contract that the two match.
    let owned;
    let shape = match shape {
        Some(fp) => {
            debug_assert_eq!(fp, shape_fingerprint(def), "stale shape fingerprint");
            fp
        }
        None => {
            owned = shape_fingerprint(def);
            &owned
        }
    };
    let mut s = String::with_capacity(512);
    // `warm_start` splits entries: a warm-started result depends on the
    // cache state at lookup time, so it must never answer a cold lookup.
    let _ = write!(
        s,
        "{tag};cfg:{}/{}/{}/{}/{}/w{};{};",
        config.population,
        config.generations,
        config.survivors,
        config.measure_top,
        config.seed,
        config.warm_start as u8,
        shape,
    );
    // An active fault plan changes which candidates survive, so it must
    // split cache entries (test-harness builds only).
    #[cfg(feature = "fault-injection")]
    {
        let _ = write!(s, "faults:{};", config.faults);
    }
    // The full accelerator description (hierarchy, memories, intrinsics) —
    // derived Debug covers every field, so two distinct machines never
    // collide.
    let _ = write!(s, "accel:{accel:?}");
    s
}

/// FNV-1a over a string, 64-bit variant — the workspace's one seed/label
/// hash (per-shape exploration seeds, bench labels, on-disk cache file
/// names, the proptest stand-in's per-test streams). Delegates to the
/// single shared loop in the `rand` stand-in so every layer hashes
/// identically.
pub fn fnv1a(key: &str) -> u64 {
    rand::fnv1a_64(key.as_bytes())
}

/// Structural identity of a computation alone: iteration space, tensor
/// shapes, access patterns, operator and predicates — but not the
/// computation's name, so same-shape layers of a network share it. Callers
/// that need shape-keyed bookkeeping of their own (e.g. deriving one seed per
/// distinct layer shape) can reuse it.
pub fn shape_fingerprint(def: &ComputeDef) -> String {
    let mut s = String::with_capacity(256);
    for it in def.iters() {
        let _ = write!(s, "i:{}:{}:{:?};", it.name, it.extent, it.kind);
    }
    for t in def.tensors() {
        let _ = write!(s, "t:{:?}:{:?}:{:?};", t.shape, t.dtype, t.role);
    }
    let _ = write!(s, "out:{:?};", def.output());
    for a in def.inputs() {
        let _ = write!(s, "in:{:?};", a);
    }
    let _ = write!(s, "op:{:?};preds:{:?}", def.op(), def.predicates());
    s
}

/// Operator-*class* identity: [`shape_fingerprint`] with every extent
/// stripped — iteration names and kinds, tensor dtypes and roles, access
/// patterns and the operator. Differently-sized instances of one operator
/// family (all the 3x3 stride-1 convolutions of a network, say) share it;
/// predicates are deliberately excluded because padding guards embed
/// extents, and a donor only *seeds* the search — it is re-validated on the
/// new shape, never trusted.
fn class_fingerprint(def: &ComputeDef) -> String {
    let mut s = String::with_capacity(256);
    for it in def.iters() {
        let _ = write!(s, "i:{}:{:?};", it.name, it.kind);
    }
    for t in def.tensors() {
        let _ = write!(s, "t:{:?}:{:?};", t.dtype, t.role);
    }
    let _ = write!(s, "out:{:?};", def.output());
    for a in def.inputs() {
        let _ = write!(s, "in:{:?};", a);
    }
    let _ = write!(s, "op:{:?}", def.op());
    s
}

/// Key of the warm-start similarity index: operator class + the full
/// accelerator description (a donor tuned for one machine must not seed
/// another).
fn warm_key(def: &ComputeDef, accel: &AcceleratorSpec) -> String {
    let mut s = class_fingerprint(def);
    let _ = write!(s, ";accel:{accel:?}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn gemm(name: &str, m: i64, n: i64, k: i64) -> ComputeDef {
        let mut b = ComputeBuilder::new(name);
        let i = b.spatial("i", m);
        let j = b.spatial("j", n);
        let r = b.reduce("k", k);
        let a = b.input("a", &[m, k], DType::F16);
        let w = b.input("b", &[k, n], DType::F16);
        let c = b.output("c", &[m, n], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, r]), w.at([r, j]));
        b.finish().unwrap()
    }

    fn small_explorer(seed: u64) -> Explorer {
        Explorer::with_config(ExplorerConfig {
            population: 8,
            generations: 2,
            survivors: 3,
            measure_top: 2,
            seed,
            jobs: 1,
            ..Default::default()
        })
    }

    #[test]
    fn repeated_shape_hits_regardless_of_name() {
        let cache = ExplorationCache::new();
        let e = small_explorer(11);
        let accel = catalog::v100();
        let cold = cache
            .explore_multi(&e, &gemm("g_one", 64, 64, 64), &accel)
            .unwrap();
        let warm = cache
            .explore_multi(&e, &gemm("g_two", 64, 64, 64), &accel)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                l2_hits: 0,
                warm_starts: 0,
                misses: 1
            }
        );
        assert_eq!(cold.cycles(), warm.cycles());
        assert_eq!(cold.best_schedule, warm.best_schedule);
    }

    #[test]
    fn distinct_shapes_seeds_and_accels_miss() {
        let cache = ExplorationCache::new();
        let e = small_explorer(11);
        cache
            .explore_multi(&e, &gemm("g", 64, 64, 64), &catalog::v100())
            .unwrap();
        // Different extent.
        cache
            .explore_multi(&e, &gemm("g", 128, 64, 64), &catalog::v100())
            .unwrap();
        // Different machine.
        cache
            .explore_multi(&e, &gemm("g", 64, 64, 64), &catalog::a100())
            .unwrap();
        // Different seed.
        cache
            .explore_multi(
                &small_explorer(12),
                &gemm("g", 64, 64, 64),
                &catalog::v100(),
            )
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                l2_hits: 0,
                warm_starts: 0,
                misses: 4
            }
        );
    }

    #[test]
    fn jobs_does_not_split_entries() {
        let cache = ExplorationCache::new();
        let mut cfg = small_explorer(5).config().clone();
        let accel = catalog::v100();
        cfg.jobs = 1;
        cache
            .explore_multi(
                &Explorer::with_config(cfg.clone()),
                &gemm("g", 64, 64, 64),
                &accel,
            )
            .unwrap();
        cfg.jobs = 4;
        cache
            .explore_multi(&Explorer::with_config(cfg), &gemm("g", 64, 64, 64), &accel)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                l2_hits: 0,
                warm_starts: 0,
                misses: 1
            }
        );
    }

    #[test]
    fn truncated_runs_do_not_populate_the_cache() {
        use crate::explore::{Budget, Completion};
        let cache = ExplorationCache::new();
        let mut cfg = small_explorer(21).config().clone();
        cfg.budget = Budget {
            max_measurements: Some(1),
            ..Budget::default()
        };
        let accel = catalog::v100();
        let def = gemm("g", 64, 64, 64);
        let truncated = cache
            .explore_multi(&Explorer::with_config(cfg.clone()), &def, &accel)
            .unwrap();
        assert_eq!(truncated.completion, Completion::BudgetExhausted);
        assert_eq!(cache.len(), 0, "a truncated best-so-far must not be stored");
        // The same shape under the same config misses again (and is still
        // counted as a miss, not an error).
        cache
            .explore_multi(&Explorer::with_config(cfg), &def, &accel)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                l2_hits: 0,
                warm_starts: 0,
                misses: 2
            }
        );
    }

    #[test]
    fn failed_explorations_are_cached() {
        // A pure reduction has no valid Tensor Core mapping.
        let mut b = ComputeBuilder::new("sum");
        let i = b.spatial("i", 4);
        let k = b.reduce("k", 4);
        let a = b.input("a", &[4, 4], DType::F32);
        let o = b.output("o", &[4], DType::F32);
        b.add_acc(o.at([i]), a.at([i, k]));
        let def = b.finish().unwrap();

        let cache = ExplorationCache::new();
        let e = small_explorer(1);
        let accel = catalog::v100();
        assert!(cache.explore_multi(&e, &def, &accel).is_err());
        assert!(cache.explore_multi(&e, &def, &accel).is_err());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                l2_hits: 0,
                warm_starts: 0,
                misses: 1
            }
        );
    }

    fn warm_explorer(seed: u64) -> Explorer {
        let mut cfg = small_explorer(seed).config().clone();
        cfg.warm_start = true;
        Explorer::with_config(cfg)
    }

    #[test]
    fn warm_start_counters_partition_lookups() {
        let cache = ExplorationCache::new();
        let e = warm_explorer(11);
        let accel = catalog::v100();
        // Cold: no donor of this class exists yet.
        let cold = cache
            .explore_multi(&e, &gemm("g", 64, 64, 64), &accel)
            .unwrap();
        // Same class, different extents: the 64^3 winner donates.
        let seeded = cache
            .explore_multi(&e, &gemm("g", 128, 128, 64), &accel)
            .unwrap();
        assert!(seeded.warm_start.donors > 0, "{:?}", seeded.warm_start);
        assert!(
            seeded.warm_start.seeded_slots > 0,
            "{:?}",
            seeded.warm_start
        );
        // Exact repeat of the first shape: an exact hit, not a warm start.
        cache
            .explore_multi(&e, &gemm("g2", 64, 64, 64), &accel)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                l2_hits: 0,
                warm_starts: 1,
                misses: 1
            }
        );
        assert_eq!(cold.warm_start, crate::explore::WarmStartStats::default());
    }

    #[test]
    fn warm_start_flag_keys_the_cache() {
        // The same shape explored warm and cold must not collide: the warm
        // run's trajectory depends on the donor, so sharing an entry would
        // make results depend on exploration order. (The cold winner still
        // donates — at distance zero — so the warm run counts as warm.)
        let cache = ExplorationCache::new();
        let accel = catalog::v100();
        cache
            .explore_multi(&small_explorer(11), &gemm("g", 64, 64, 64), &accel)
            .unwrap();
        cache
            .explore_multi(&warm_explorer(11), &gemm("g", 64, 64, 64), &accel)
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                l2_hits: 0,
                warm_starts: 1,
                misses: 1
            }
        );
    }

    #[test]
    fn donors_do_not_cross_operator_classes_or_machines() {
        let cache = ExplorationCache::new();
        let e = warm_explorer(11);
        cache
            .explore_multi(&e, &gemm("g", 64, 64, 64), &catalog::v100())
            .unwrap();
        // Same class on a different machine: no donor.
        cache
            .explore_multi(&e, &gemm("g", 128, 128, 64), &catalog::a100())
            .unwrap();
        // Different dtype (a different class) on the same machine: no donor.
        let mut b = ComputeBuilder::new("g32");
        let i = b.spatial("i", 128);
        let j = b.spatial("j", 128);
        let r = b.reduce("k", 64);
        let a = b.input("a", &[128, 64], DType::F32);
        let w = b.input("b", &[64, 128], DType::F32);
        let c = b.output("c", &[128, 128], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, r]), w.at([r, j]));
        let _ = cache.explore_multi(&e, &b.finish().unwrap(), &catalog::v100());
        assert_eq!(cache.stats().warm_starts, 0, "{:?}", cache.stats());
    }

    #[test]
    fn fnv1a_matches_the_published_test_vectors() {
        // The FNV-1a 64-bit reference values; every copy of the hash in the
        // workspace was unified onto this implementation, so pin it.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x8594_4171_f739_67e8);
    }

    // ---- the persistent L2 tier --------------------------------------------

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("amos-l2-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn disk_cache(dir: &std::path::Path) -> ExplorationCache {
        ExplorationCache::with_disk(&CacheConfig {
            cache_dir: Some(dir.to_path_buf()),
        })
    }

    /// The single `.amosc` entry file in `dir`.
    fn entry_path(dir: &std::path::Path) -> std::path::PathBuf {
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .expect("cache dir")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "amosc"))
            .collect();
        assert_eq!(entries.len(), 1, "expected one entry: {entries:?}");
        entries.pop().expect("one entry")
    }

    #[test]
    fn l2_answers_a_fresh_process_bit_identically() {
        let dir = tmp_dir("roundtrip");
        let accel = catalog::v100();
        let def = gemm("g", 64, 64, 64);
        let first = disk_cache(&dir);
        let cold = first
            .explore_multi(&small_explorer(11), &def, &accel)
            .unwrap();
        assert_eq!(
            first.stats(),
            CacheStats {
                hits: 0,
                l2_hits: 0,
                warm_starts: 0,
                misses: 1
            }
        );
        // A second cache over the same directory models a fresh process: the
        // lookup is answered from disk, with zero explorations run.
        let second = disk_cache(&dir);
        let warm = second
            .explore_multi(&small_explorer(11), &def, &accel)
            .unwrap();
        assert_eq!(
            second.stats(),
            CacheStats {
                hits: 0,
                l2_hits: 1,
                warm_starts: 0,
                misses: 0
            }
        );
        assert_eq!(cold.cycles().to_bits(), warm.cycles().to_bits());
        assert_eq!(cold.best_schedule, warm.best_schedule);
        assert_eq!(cold.best_mapping.groups, warm.best_mapping.groups);
        assert_eq!(cold.evaluations, warm.evaluations);
        assert_eq!(cold.num_mappings, warm.num_mappings);
        assert_eq!(cold.sim_failures, warm.sim_failures);
        assert_eq!(cold.completion, warm.completion);
        // The L2 hit was promoted into L1: repeating the lookup is an L1 hit.
        second
            .explore_multi(&small_explorer(11), &def, &accel)
            .unwrap();
        assert_eq!(second.stats().hits, 1);
        assert_eq!(second.stats().l2_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_truncated_and_stale_entries_degrade_to_cold_misses() {
        let dir = tmp_dir("degrade");
        let accel = catalog::v100();
        let def = gemm("g", 64, 64, 64);
        let reference = disk_cache(&dir)
            .explore_multi(&small_explorer(11), &def, &accel)
            .unwrap();
        let path = entry_path(&dir);
        let good = std::fs::read(&path).expect("entry bytes");

        let tamper = |bytes: &[u8]| std::fs::write(&path, bytes).expect("tamper");
        let mut scenarios: Vec<(&str, Vec<u8>)> = vec![
            ("garbage", b"not a cache entry at all".to_vec()),
            ("truncated", good[..good.len() / 2].to_vec()),
            ("empty", Vec::new()),
        ];
        // Version mismatch: an otherwise-perfect entry from a different
        // schema/code version.
        let stale = String::from_utf8_lossy(&good)
            .replacen("amos-l2 schema", "amos-l2 schema999x", 1)
            .into_bytes();
        scenarios.push(("stale-salt", stale));
        // A lying report: flip one digit of the stored cycles bits. The
        // entry parses, but re-simulation cannot reproduce it.
        let text = String::from_utf8_lossy(&good).to_string();
        let report_at = text.find("\nreport ").expect("report line") + "\nreport ".len();
        let mut lying = text.into_bytes();
        lying[report_at] = if lying[report_at] == b'0' { b'1' } else { b'0' };
        scenarios.push(("lying-report", lying));

        for (name, bytes) in scenarios {
            tamper(&bytes);
            let cache = disk_cache(&dir);
            let got = cache
                .explore_multi(&small_explorer(11), &def, &accel)
                .unwrap();
            assert_eq!(
                cache.stats(),
                CacheStats {
                    hits: 0,
                    l2_hits: 0,
                    warm_starts: 0,
                    misses: 1
                },
                "scenario `{name}` must be a cold miss"
            );
            assert_eq!(
                got.cycles().to_bits(),
                reference.cycles().to_bits(),
                "scenario `{name}` must still return the right answer"
            );
            assert_eq!(got.best_schedule, reference.best_schedule, "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_cache_dir_degrades_to_memory_only() {
        // Place the "directory" under a plain file so it can never be
        // created: every store fails, every load misses, nothing panics.
        let blocker = std::env::temp_dir().join(format!("amos-l2-blocker-{}", std::process::id()));
        std::fs::write(&blocker, "not a directory").expect("blocker file");
        let dir = blocker.join("sub");
        let accel = catalog::v100();
        let def = gemm("g", 64, 64, 64);
        let a = disk_cache(&dir);
        let first = a.explore_multi(&small_explorer(11), &def, &accel).unwrap();
        // Nothing persisted: a fresh cache misses again.
        let b = disk_cache(&dir);
        let second = b.explore_multi(&small_explorer(11), &def, &accel).unwrap();
        assert_eq!(a.stats().misses, 1);
        assert_eq!(b.stats().misses, 1);
        assert_eq!(b.stats().l2_hits, 0);
        assert_eq!(first.cycles().to_bits(), second.cycles().to_bits());
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn truncated_and_failed_runs_stay_off_disk() {
        use crate::explore::Budget;
        let dir = tmp_dir("finished-only");
        let accel = catalog::v100();
        // A budget-truncated run must not be persisted...
        let mut cfg = small_explorer(21).config().clone();
        cfg.budget = Budget {
            max_measurements: Some(1),
            ..Budget::default()
        };
        let cache = disk_cache(&dir);
        cache
            .explore_multi(&Explorer::with_config(cfg), &gemm("g", 64, 64, 64), &accel)
            .unwrap();
        // ...and neither is a failed exploration (`Err` entries are L1-only).
        let mut b = ComputeBuilder::new("sum");
        let i = b.spatial("i", 4);
        let k = b.reduce("k", 4);
        let a = b.input("a", &[4, 4], DType::F32);
        let o = b.output("o", &[4], DType::F32);
        b.add_acc(o.at([i]), a.at([i, k]));
        assert!(cache
            .explore_multi(&small_explorer(1), &b.finish().unwrap(), &accel)
            .is_err());
        let written = std::fs::read_dir(&dir).map(|rd| rd.count()).unwrap_or(0);
        assert_eq!(written, 0, "only clean Finished results are persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Deterministic fault injection for the explorer (feature
//! `fault-injection`, off by default).
//!
//! A [`FaultPlan`] decides — as a pure function of the candidate identity
//! `(phase, seed, generation, slot)` — whether an evaluation panics, fails
//! with a `SimError`, or stalls for a fixed delay. Because the decision
//! consumes no RNG draws and depends on nothing but the identity key, an
//! injected run evaluates exactly the candidates of the fault-free run, and
//! two injected runs with the same plan fail identically on every machine
//! and thread count. That is what makes the fault-tolerance tests
//! deterministic: "panic 10% of measurements" is a fixed, replayable set of
//! candidates, not a coin flip.
//!
//! This module compiles only under the `fault-injection` feature; release
//! binaries carry no injection code. [`crate::fault_injection_enabled`]
//! reports the compile-time state either way.

use std::fmt;

/// The outcome kinds a plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the evaluation (caught at the isolation boundary and
    /// quarantined).
    Panic,
    /// Return an injected `SimError` from the evaluation.
    SimError,
    /// Sleep for [`FaultPlan::delay_micros`] before evaluating (exercises
    /// deadline enforcement without changing any result).
    Delay,
}

/// A deterministic fault-injection plan. Rates are parts-per-million of
/// candidate evaluations; the rates are cumulative and must sum to at most
/// 1_000_000. The default plan is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Fraction of evaluations that panic, in ppm.
    pub panic_ppm: u32,
    /// Fraction of evaluations that fail with an injected `SimError`, in ppm.
    pub sim_error_ppm: u32,
    /// Fraction of evaluations delayed by [`FaultPlan::delay_micros`], in ppm.
    pub delay_ppm: u32,
    /// Length of an injected delay, in microseconds.
    pub delay_micros: u64,
    /// Restrict injection to one evaluation phase (`"seed"`, `"screen"`,
    /// `"breed"`, `"measure"`, `"fallback"`); `None` injects everywhere.
    pub only_phase: Option<&'static str>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "panic={}ppm sim_error={}ppm delay={}ppm/{}us phase={}",
            self.panic_ppm,
            self.sim_error_ppm,
            self.delay_ppm,
            self.delay_micros,
            self.only_phase.unwrap_or("*"),
        )
    }
}

impl FaultPlan {
    /// `true` when the plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.panic_ppm == 0 && self.sim_error_ppm == 0 && self.delay_ppm == 0
    }

    /// The fault (if any) for the evaluation identified by
    /// `(phase, seed, generation, slot)`. Pure and draw-free: repeated calls
    /// with the same key always agree, and the explorer's RNG streams are
    /// untouched.
    pub fn draw(&self, phase: &str, seed: u64, generation: u64, slot: u64) -> Option<Fault> {
        if self.is_inert() {
            return None;
        }
        if let Some(only) = self.only_phase {
            if only != phase {
                return None;
            }
        }
        let ticket = (mix_key(phase, seed, generation, slot) % 1_000_000) as u32;
        if ticket < self.panic_ppm {
            return Some(Fault::Panic);
        }
        if ticket < self.panic_ppm + self.sim_error_ppm {
            return Some(Fault::SimError);
        }
        if ticket < self.panic_ppm + self.sim_error_ppm + self.delay_ppm {
            return Some(Fault::Delay);
        }
        None
    }
}

/// Hashes an evaluation identity to a uniform `u64`: FNV-1a over the phase
/// tag folded with SplitMix64-style finalisation over the numeric key.
fn mix_key(phase: &str, seed: u64, generation: u64, slot: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in phase.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let key = mix(seed ^ 0x9e37_79b9_7f4a_7c15)
        .wrapping_add(generation.wrapping_mul(0xd134_2543_de82_ef95))
        .wrapping_add(slot.wrapping_mul(0xff51_afd7_ed55_8ccd));
    mix(h ^ key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_inert());
        for slot in 0..1000 {
            assert_eq!(plan.draw("measure", 1, 0, slot), None);
        }
    }

    #[test]
    fn draws_are_deterministic_and_phase_sensitive() {
        let plan = FaultPlan {
            panic_ppm: 500_000,
            ..FaultPlan::default()
        };
        for slot in 0..64 {
            assert_eq!(
                plan.draw("measure", 7, 3, slot),
                plan.draw("measure", 7, 3, slot)
            );
        }
        // Distinct phases must not fail in lockstep.
        let a: Vec<_> = (0..64).map(|s| plan.draw("measure", 7, 3, s)).collect();
        let b: Vec<_> = (0..64).map(|s| plan.draw("screen", 7, 3, s)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan {
            panic_ppm: 100_000, // 10%
            sim_error_ppm: 100_000,
            ..FaultPlan::default()
        };
        let n = 10_000u64;
        let panics = (0..n)
            .filter(|&s| plan.draw("measure", 42, 0, s) == Some(Fault::Panic))
            .count();
        let errors = (0..n)
            .filter(|&s| plan.draw("measure", 42, 0, s) == Some(Fault::SimError))
            .count();
        assert!((500..1500).contains(&panics), "panics={panics}");
        assert!((500..1500).contains(&errors), "errors={errors}");
    }

    #[test]
    fn phase_filter_restricts_injection() {
        let plan = FaultPlan {
            panic_ppm: 1_000_000,
            only_phase: Some("measure"),
            ..FaultPlan::default()
        };
        assert_eq!(plan.draw("measure", 1, 0, 0), Some(Fault::Panic));
        assert_eq!(plan.draw("screen", 1, 0, 0), None);
        assert_eq!(plan.draw("seed", 1, 0, 0), None);
    }
}

//! The on-disk L2 behind the in-memory exploration cache.
//!
//! Exploration is a deterministic function of `(workload shape, accelerator,
//! config)`, so a winner found yesterday is exactly the winner a fresh
//! process would find today — provided nothing about the *code* producing it
//! changed. Entries are therefore keyed by the same structural fingerprint
//! as the in-memory L1, hashed into a file name, and every file carries a
//! **version salt** (cache schema + crate version + the hardware
//! abstraction's [`amos_hw::ABSTRACTION_VERSION`]): any incompatible change
//! invalidates cleanly, as a cold miss.
//!
//! Three properties the tier guarantees:
//!
//! * **Never a wrong result.** Only clean [`Completion::Finished`] runs are
//!   persisted (the PR-5 invariant: truncated and degraded best-so-fars are
//!   not converged winners), the full key is stored inside the file and
//!   compared on load (hash collisions degrade to misses), and the stored
//!   winner is **re-validated by re-simulation**: the mapping is re-lowered
//!   and re-measured, and the file is only trusted when the fresh
//!   [`TimingReport`] reproduces the stored one bit-for-bit.
//! * **Never a panic.** Corrupted, truncated, version-mismatched or
//!   unreadable files — and unwritable directories — degrade to cold
//!   misses; every failure path in this module returns `None` or `()`.
//! * **Atomic writes.** Entries are written to a process-unique temp file
//!   and `rename`d into place, so a concurrent reader sees either the old
//!   complete file or the new complete file, never a torn one.

use crate::cache::fnv1a;
use crate::error::AmosError;
use crate::explore::{
    Completion, ExplorationResult, QuarantineReport, ScreeningStats, WarmStartStats,
};
use crate::mapping::Mapping;
use amos_hw::AcceleratorSpec;
use amos_ir::{ComputeDef, IterId};
use amos_sim::{simulate, FusedGroup, Schedule, TimingReport};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Layout version of the on-disk entry format itself. Bump on any change to
/// the serialization below.
const SCHEMA: u32 = 1;

/// Entries larger than this are rejected unread (a corrupted length field
/// must not make a lookup allocate gigabytes).
const MAX_FILE_BYTES: u64 = 16 * 1024 * 1024;

/// File extension of cache entries; everything else in the directory is
/// ignored (and left alone by [`clear_cache_dir`]).
const EXT: &str = ".amosc";

/// Cache placement knobs of an [`crate::Engine`].
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    /// Directory of the persistent L2 exploration cache, shared across
    /// processes. `None` (the default) keeps the engine memory-only.
    pub cache_dir: Option<PathBuf>,
}

/// The combined version salt embedded in every entry. A mismatch in any
/// component — entry layout, crate version, hardware-abstraction semantics —
/// turns the entry into a cold miss.
pub fn cache_salt() -> String {
    format!(
        "schema{SCHEMA}+core{}+hw{}",
        env!("CARGO_PKG_VERSION"),
        amos_hw::ABSTRACTION_VERSION
    )
}

fn header() -> String {
    format!("amos-l2 {}\n", cache_salt())
}

fn file_name(key: &str) -> String {
    format!("{:016x}{EXT}", fnv1a(key))
}

/// The persistent tier. Thread-safe without locks: stores are atomic
/// renames, loads re-validate, and two processes racing on one key both
/// write identical bytes.
#[derive(Debug)]
pub(crate) struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    pub(crate) fn new(dir: PathBuf) -> Self {
        DiskCache { dir }
    }

    /// Persists a clean `Finished` result under `key`. Best-effort: an
    /// unwritable directory or full disk silently skips the store — the
    /// result is still correct, it just stays process-local.
    pub(crate) fn store(&self, key: &str, r: &ExplorationResult) {
        if r.completion != Completion::Finished {
            return;
        }
        let intrinsic = &r.best_program.intrinsic().name;
        if intrinsic.is_empty() || intrinsic.contains(char::is_whitespace) {
            return; // unserializable name; skip rather than corrupt
        }
        let text = render(key, r, intrinsic);
        let _ = std::fs::create_dir_all(&self.dir);
        let name = file_name(key);
        let tmp = self.dir.join(format!(".tmp-{}-{name}", std::process::id()));
        if std::fs::write(&tmp, text.as_bytes()).is_ok()
            && std::fs::rename(&tmp, self.dir.join(name)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Loads, parses and re-validates the entry for `key`. Any failure —
    /// missing file, bad salt, torn write, hash collision, a winner the
    /// current simulator does not reproduce — returns `None` (a cold miss).
    pub(crate) fn load(
        &self,
        key: &str,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Option<ExplorationResult> {
        let path = self.dir.join(file_name(key));
        if std::fs::metadata(&path).ok()?.len() > MAX_FILE_BYTES {
            return None;
        }
        let text = std::fs::read_to_string(&path).ok()?;
        parse_and_validate(&text, key, def, accel)
    }
}

// ---- serialization ---------------------------------------------------------

/// `f64` as 16 hex digits of its bit pattern: exact round-trip, including
/// negative zero, infinities and NaN payloads.
fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn unbits(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn render(key: &str, r: &ExplorationResult, intrinsic: &str) -> String {
    let mut s = String::with_capacity(1024 + key.len());
    s.push_str(&header());
    let _ = writeln!(s, "key {}", key.len());
    s.push_str(key);
    s.push('\n');
    let _ = writeln!(s, "intrinsic {intrinsic}");
    let _ = writeln!(s, "groups {}", r.best_mapping.groups.len());
    for g in &r.best_mapping.groups {
        s.push('g');
        for it in &g.iters {
            let _ = write!(s, " {}", it.0);
        }
        s.push('\n');
    }
    s.push_str("corr");
    for &c in &r.best_mapping.correspondence {
        let _ = write!(s, " {c}");
    }
    s.push('\n');
    let sched = &r.best_schedule;
    for (tag, axes) in [
        ("grid", &sched.grid),
        ("splitk", &sched.split_k),
        ("subcore", &sched.subcore),
        ("stage", &sched.stage),
        ("warp", &sched.warp),
    ] {
        s.push_str(tag);
        for &v in axes {
            let _ = write!(s, " {v}");
        }
        s.push('\n');
    }
    let _ = writeln!(
        s,
        "flags {} {} {}",
        sched.double_buffer as u8, sched.unroll as u8, sched.vectorize as u8
    );
    let t = &r.best_report;
    let _ = writeln!(
        s,
        "report {} {} {} {} {} {} {} {} {} {}",
        bits(t.cycles),
        t.blocks,
        t.waves,
        bits(t.occupancy),
        bits(t.utilization),
        t.dram_read_bytes,
        t.dram_write_bytes,
        t.register_traffic_bytes,
        bits(t.block_compute_cycles),
        bits(t.block_transfer_cycles),
    );
    let _ = writeln!(s, "nmap {}", r.num_mappings);
    let _ = writeln!(s, "simf {}", r.sim_failures);
    let _ = writeln!(
        s,
        "screen {} {} {} {}",
        r.screening.screened,
        r.screening.survivor_memo_hits,
        r.screening.measured_memo_hits,
        bits(r.screening.screen_seconds),
    );
    let _ = writeln!(
        s,
        "warm {} {} {}",
        r.warm_start.donors, r.warm_start.seeded_slots, r.warm_start.fallback_slots
    );
    let _ = writeln!(s, "gens {}", r.generations_completed);
    let _ = writeln!(s, "evals {}", r.evaluations.len());
    for &(p, m) in &r.evaluations {
        let _ = writeln!(s, "e {} {}", bits(p), bits(m));
    }
    s.push_str("end\n");
    s
}

// ---- parsing + re-validation -----------------------------------------------

/// Consumes one line of the form `<tag>` or `<tag> <payload>`; the payload
/// (possibly empty) on a match, `None` otherwise.
fn tagged<'a>(lines: &mut std::str::Lines<'a>, tag: &str) -> Option<&'a str> {
    let line = lines.next()?;
    if line == tag {
        return Some("");
    }
    line.strip_prefix(tag)?.strip_prefix(' ')
}

fn ints<T: std::str::FromStr>(payload: &str) -> Option<Vec<T>> {
    payload.split_whitespace().map(|w| w.parse().ok()).collect()
}

fn parse_and_validate(
    text: &str,
    key: &str,
    def: &ComputeDef,
    accel: &AcceleratorSpec,
) -> Option<ExplorationResult> {
    // Version salt first: entries from any other build are invisible.
    let rest = text.strip_prefix(&header())?;
    // The full key is stored verbatim (length-prefixed, since accelerator
    // Debug output may contain anything but newlines) and must match the
    // request — two keys colliding on the 64-bit file hash miss cleanly.
    let len: usize = tagged(&mut rest.lines(), "key")?.parse().ok()?;
    let rest = rest.split_once('\n')?.1;
    let bytes = rest.as_bytes();
    if bytes.get(..len)? != key.as_bytes() || *bytes.get(len)? != b'\n' {
        return None;
    }
    let rest = std::str::from_utf8(&bytes[len + 1..]).ok()?;
    let mut lines = rest.lines();

    let intrinsic_name = tagged(&mut lines, "intrinsic")?;
    let ngroups: usize = tagged(&mut lines, "groups")?.parse().ok()?;
    if ngroups > 1024 {
        return None;
    }
    let mut groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let ids: Vec<u32> = ints(tagged(&mut lines, "g")?)?;
        groups.push(FusedGroup::of(ids.into_iter().map(IterId).collect()));
    }
    let correspondence: Vec<usize> = ints(tagged(&mut lines, "corr")?)?;
    let grid: Vec<i64> = ints(tagged(&mut lines, "grid")?)?;
    let split_k: Vec<i64> = ints(tagged(&mut lines, "splitk")?)?;
    let subcore: Vec<i64> = ints(tagged(&mut lines, "subcore")?)?;
    let stage: Vec<i64> = ints(tagged(&mut lines, "stage")?)?;
    let warp: Vec<i64> = ints(tagged(&mut lines, "warp")?)?;
    let flags: Vec<u8> = ints(tagged(&mut lines, "flags")?)?;
    let [db, unroll, vec] = flags.as_slice() else {
        return None;
    };
    if flags.iter().any(|&f| f > 1) {
        return None;
    }
    let rep: Vec<&str> = tagged(&mut lines, "report")?.split_whitespace().collect();
    let [cyc, blocks, waves, occ, util, dr, dw, reg, bcc, btc] = rep.as_slice() else {
        return None;
    };
    let stored = TimingReport {
        cycles: unbits(cyc)?,
        blocks: blocks.parse().ok()?,
        waves: waves.parse().ok()?,
        occupancy: unbits(occ)?,
        utilization: unbits(util)?,
        dram_read_bytes: dr.parse().ok()?,
        dram_write_bytes: dw.parse().ok()?,
        register_traffic_bytes: reg.parse().ok()?,
        block_compute_cycles: unbits(bcc)?,
        block_transfer_cycles: unbits(btc)?,
    };
    let num_mappings: usize = tagged(&mut lines, "nmap")?.parse().ok()?;
    let sim_failures: usize = tagged(&mut lines, "simf")?.parse().ok()?;
    let scr: Vec<&str> = tagged(&mut lines, "screen")?.split_whitespace().collect();
    let [screened, survivor, measured, secs] = scr.as_slice() else {
        return None;
    };
    let screening = ScreeningStats {
        screened: screened.parse().ok()?,
        survivor_memo_hits: survivor.parse().ok()?,
        measured_memo_hits: measured.parse().ok()?,
        screen_seconds: unbits(secs)?,
    };
    let warm: Vec<usize> = ints(tagged(&mut lines, "warm")?)?;
    let [donors, seeded, fallback] = warm.as_slice() else {
        return None;
    };
    let warm_start = WarmStartStats {
        donors: *donors,
        seeded_slots: *seeded,
        fallback_slots: *fallback,
    };
    let generations_completed: usize = tagged(&mut lines, "gens")?.parse().ok()?;
    let nevals: usize = tagged(&mut lines, "evals")?.parse().ok()?;
    if nevals > 1_000_000 {
        return None;
    }
    let mut evaluations = Vec::with_capacity(nevals);
    for _ in 0..nevals {
        let (p, m) = tagged(&mut lines, "e")?.split_once(' ')?;
        evaluations.push((unbits(p)?, unbits(m)?));
    }
    if lines.next() != Some("end") || lines.next().is_some() {
        return None;
    }

    // Re-validation by re-simulation: re-lower the stored mapping on the
    // unit the winner targeted (the accelerator re-targeted at the named
    // intrinsic, extra intrinsics cleared — exactly how the explorer
    // simulates candidates) and require the fresh measurement to reproduce
    // the stored report bit-for-bit. A file that lies about its provenance
    // cannot pass; a file from a subtly different model version cannot
    // either, even if its salt somehow matched.
    let intrinsic = accel
        .all_intrinsics()
        .find(|i| i.name == intrinsic_name)?
        .clone();
    let mut unit = accel.clone();
    unit.intrinsic = intrinsic;
    unit.extra_intrinsics.clear();
    let best_mapping = Mapping {
        groups,
        correspondence,
    };
    let best_program = best_mapping.lower(def, &unit.intrinsic).ok()?;
    let best_schedule = Schedule {
        grid,
        split_k,
        subcore,
        stage,
        warp,
        double_buffer: *db == 1,
        unroll: *unroll == 1,
        vectorize: *vec == 1,
    };
    let best_report = simulate(&best_program, &best_schedule, &unit).ok()?;
    if !report_bits_eq(&best_report, &stored) {
        return None;
    }
    Some(ExplorationResult {
        best_mapping,
        best_program,
        best_schedule,
        best_report,
        evaluations,
        num_mappings,
        sim_failures,
        screening,
        warm_start,
        completion: Completion::Finished,
        generations_completed,
        quarantine: QuarantineReport::default(),
    })
}

fn report_bits_eq(a: &TimingReport, b: &TimingReport) -> bool {
    a.cycles.to_bits() == b.cycles.to_bits()
        && a.blocks == b.blocks
        && a.waves == b.waves
        && a.occupancy.to_bits() == b.occupancy.to_bits()
        && a.utilization.to_bits() == b.utilization.to_bits()
        && a.dram_read_bytes == b.dram_read_bytes
        && a.dram_write_bytes == b.dram_write_bytes
        && a.register_traffic_bytes == b.register_traffic_bytes
        && a.block_compute_cycles.to_bits() == b.block_compute_cycles.to_bits()
        && a.block_transfer_cycles.to_bits() == b.block_transfer_cycles.to_bits()
}

// ---- user-requested directory operations ------------------------------------

/// Aggregate numbers over one cache directory, for `amos cache stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskDirStats {
    /// Cache entry files present.
    pub entries: usize,
    /// Their total size in bytes.
    pub bytes: u64,
}

fn entry_files(dir: &Path) -> Result<Vec<(PathBuf, u64)>, AmosError> {
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        // A directory that was never written to is an empty cache, not an
        // error — `--cache-dir` creates it lazily on the first store.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(AmosError::io(format!("cache dir {}: {e}", dir.display()))),
    };
    let mut files = Vec::new();
    for entry in rd {
        let entry =
            entry.map_err(|e| AmosError::io(format!("cache dir {}: {e}", dir.display())))?;
        let name = entry.file_name();
        if !name.to_string_lossy().ends_with(EXT) {
            continue;
        }
        let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
        files.push((entry.path(), len));
    }
    Ok(files)
}

/// Counts the entries of an on-disk cache directory. A missing directory is
/// an empty cache.
///
/// # Errors
///
/// [`AmosError`] (kind [`crate::AmosErrorKind::Io`]) when the directory
/// exists but cannot be read.
pub fn cache_dir_stats(dir: &Path) -> Result<DiskDirStats, AmosError> {
    let files = entry_files(dir)?;
    Ok(DiskDirStats {
        entries: files.len(),
        bytes: files.iter().map(|(_, len)| len).sum(),
    })
}

/// Removes every cache entry (including stale temp files) from `dir`,
/// leaving unrelated files alone. Returns the number of files removed; a
/// missing directory removes zero.
///
/// # Errors
///
/// [`AmosError`] (kind [`crate::AmosErrorKind::Io`]) when the directory
/// cannot be read or an entry cannot be removed.
pub fn clear_cache_dir(dir: &Path) -> Result<usize, AmosError> {
    let files = entry_files(dir)?;
    let count = files.len();
    for (path, _) in files {
        std::fs::remove_file(&path)
            .map_err(|e| AmosError::io(format!("removing {}: {e}", path.display())))?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amos-disk-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE, 1e300] {
            assert_eq!(unbits(&bits(v)).unwrap().to_bits(), v.to_bits());
        }
        assert!(unbits(&bits(f64::NAN)).unwrap().is_nan());
        assert_eq!(unbits("zz"), None);
        assert_eq!(unbits("00"), None, "length must be exactly 16");
    }

    #[test]
    fn salt_names_every_version_component() {
        let salt = cache_salt();
        assert!(salt.contains("schema"), "{salt}");
        assert!(salt.contains("hw"), "{salt}");
        assert!(salt.contains(env!("CARGO_PKG_VERSION")), "{salt}");
    }

    #[test]
    fn stats_and_clear_on_missing_dir_are_empty() {
        let dir = tmp("missing");
        assert_eq!(cache_dir_stats(&dir).unwrap(), DiskDirStats::default());
        assert_eq!(clear_cache_dir(&dir).unwrap(), 0);
    }

    #[test]
    fn clear_removes_only_cache_entries() {
        let dir = tmp("clear");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("0123456789abcdef.amosc"), "junk").unwrap();
        std::fs::write(dir.join(".tmp-1-feed.amosc"), "torn").unwrap();
        std::fs::write(dir.join("README.txt"), "keep me").unwrap();
        let stats = cache_dir_stats(&dir).unwrap();
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes > 0);
        assert_eq!(clear_cache_dir(&dir).unwrap(), 2);
        assert!(dir.join("README.txt").exists());
        assert_eq!(cache_dir_stats(&dir).unwrap().entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tagged_lines_parse_strictly() {
        let text = "g 1 2\ncorr\nend\n";
        let mut lines = text.lines();
        assert_eq!(tagged(&mut lines, "g"), Some("1 2"));
        assert_eq!(tagged(&mut lines, "corr"), Some(""));
        assert_eq!(tagged(&mut lines, "evals"), None, "wrong tag rejects");
    }
}

//! Structured mapping reports: everything a user needs to understand *why*
//! a chosen mapping looks the way it does — the compute mapping, the
//! physical memory mapping, tile counts, padding efficiency, memory
//! footprints and the measured timing.

use crate::explore::{Completion, ExplorationResult, ScreeningStats, WarmStartStats};
use crate::memory_map::{physical_memory_mapping, MemoryMapping};
use amos_hw::AcceleratorSpec;
use amos_sim::{ExecStats, Schedule, TimingReport};
use std::fmt;

/// A human-consumable summary of one explored mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingReport {
    /// The intrinsic the computation was mapped to.
    pub intrinsic: String,
    /// Table-5-style compute mapping string.
    pub compute_mapping: String,
    /// Physical memory mapping (base addresses and strides).
    pub memory_mapping: MemoryMapping,
    /// Tiles along each intrinsic iteration.
    pub tiles: Vec<(String, i64)>,
    /// Fraction of intrinsic lanes doing useful (non-padded) work.
    pub padding_efficiency: f64,
    /// Size of the enumerated mapping space the winner was chosen from.
    pub num_mappings: usize,
    /// Shared-memory staging footprint of the winning schedule, in bytes.
    pub shared_footprint_bytes: u64,
    /// Register footprint of the winning schedule, in bytes.
    pub register_footprint_bytes: u64,
    /// Blocks launched by the winning schedule.
    pub blocks: i64,
    /// Ground-truth timing of the winner.
    pub timing: TimingReport,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// Achieved microseconds at the accelerator clock.
    pub microseconds: f64,
    /// Infeasible ground-truth simulations hit during the exploration.
    pub sim_failures: usize,
    /// Analytic-screening counters of the exploration (candidates screened,
    /// survivor/measured memo hits, screening throughput).
    pub screening: ScreeningStats,
    /// Warm-start counters: donors consulted and population slots seeded
    /// from the nearest previously-explored shape (all zero unless
    /// [`crate::ExplorerConfig::warm_start`] found a donor).
    pub warm_start: WarmStartStats,
    /// Algorithm-1 validation calls performed by this process so far
    /// (paper §5.2), snapshotted when the report was built.
    pub validation_calls: u64,
    /// Counters from a functional execution of the winner (lanes executed,
    /// affine index-evaluation hit ratio); attach via
    /// [`MappingReport::with_exec_stats`].
    pub exec_stats: Option<ExecStats>,
    /// How the exploration ended: complete, degraded by quarantined
    /// candidates, or truncated by a budget limit.
    pub completion: Completion,
    /// Generation-loop iterations completed before the run ended.
    pub generations_completed: usize,
    /// Candidate evaluations quarantined after panicking.
    pub quarantined: usize,
    /// Process-wide worker-pool counters snapshotted when the report was
    /// built (see [`crate::pool_stats`]). Deliberately **not** printed by
    /// `Display`: `threads`/`waves` depend on the thread budget, and report
    /// output must stay byte-identical at any `--jobs`.
    pub pool: crate::pool::PoolStats,
}

impl MappingReport {
    /// Builds a report from an exploration result.
    pub fn from_result(result: &ExplorationResult, accel: &AcceleratorSpec) -> Self {
        let prog = &result.best_program;
        let schedule: &Schedule = &result.best_schedule;
        let tiles = prog
            .intrinsic()
            .compute
            .iters()
            .iter()
            .enumerate()
            .map(|(t, it)| (it.name.clone(), prog.tiles(t)))
            .collect();
        let cycles = result.best_report.cycles;
        MappingReport {
            intrinsic: prog.intrinsic().name.clone(),
            compute_mapping: prog.mapping_string(),
            memory_mapping: physical_memory_mapping(prog),
            tiles,
            padding_efficiency: prog.padding_efficiency(),
            num_mappings: result.num_mappings,
            shared_footprint_bytes: schedule.shared_footprint_bytes(prog),
            register_footprint_bytes: schedule.register_footprint_bytes(prog),
            blocks: schedule.blocks(),
            timing: result.best_report.clone(),
            gflops: result.best_report.gflops(prog, accel),
            microseconds: cycles / accel.cycles_per_second() * 1e6,
            sim_failures: result.sim_failures,
            screening: result.screening,
            warm_start: result.warm_start,
            validation_calls: crate::validate::validation_calls(),
            exec_stats: None,
            completion: result.completion,
            generations_completed: result.generations_completed,
            quarantined: result.quarantine.len(),
            pool: crate::pool::pool_stats(),
        }
    }

    /// Attaches functional-execution counters (from
    /// [`amos_sim::execute_mapped_with_stats`] on the winning program) so the
    /// report also shows lanes executed and the affine-hit ratio of the
    /// compiled index programs.
    pub fn with_exec_stats(mut self, stats: ExecStats) -> Self {
        self.exec_stats = Some(stats);
        self
    }
}

impl fmt::Display for MappingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "intrinsic        : {}", self.intrinsic)?;
        writeln!(f, "compute mapping  : {}", self.compute_mapping)?;
        write!(f, "memory mapping   :")?;
        for line in self.memory_mapping.to_string().lines() {
            writeln!(f, "\n    {line}")?;
        }
        let tiles: Vec<String> = self.tiles.iter().map(|(n, t)| format!("{n}:{t}")).collect();
        writeln!(f, "tiles            : {}", tiles.join(" "))?;
        writeln!(
            f,
            "lane efficiency  : {:.1}% (padding waste {:.1}%)",
            self.padding_efficiency * 100.0,
            (1.0 - self.padding_efficiency) * 100.0
        )?;
        writeln!(f, "mapping space    : {} candidates", self.num_mappings)?;
        writeln!(
            f,
            "exploration      : {} infeasible schedule sims, {} Algorithm-1 calls",
            self.sim_failures, self.validation_calls
        )?;
        // Deliberately no candidates/sec here: CLI output is byte-identical
        // across `--jobs`, and throughput is the one wall-clock quantity
        // (callers wanting it use `screening.throughput()`).
        writeln!(
            f,
            "screening        : {} candidates screened, {} survivor memo hits, {} measured memo hits",
            self.screening.screened,
            self.screening.survivor_memo_hits,
            self.screening.measured_memo_hits
        )?;
        // Only printed when a donor was consulted: cold runs keep the
        // historical output byte-identical.
        if self.warm_start.donors > 0 {
            writeln!(
                f,
                "warm start       : {} donors, {} slots seeded, {} fallback slots",
                self.warm_start.donors,
                self.warm_start.seeded_slots,
                self.warm_start.fallback_slots
            )?;
        }
        if let Some(es) = &self.exec_stats {
            writeln!(
                f,
                "hot path         : {} lanes executed, {:.1}% affine index hits",
                es.total_lanes,
                es.affine_hit_ratio() * 100.0
            )?;
        }
        writeln!(
            f,
            "footprints       : {} B shared, {} B registers, {} blocks",
            self.shared_footprint_bytes, self.register_footprint_bytes, self.blocks
        )?;
        writeln!(
            f,
            "measured         : {:.0} cycles = {:.1} us, {:.1} GFLOPS",
            self.timing.cycles, self.microseconds, self.gflops
        )?;
        // Only surfaced when noteworthy: a clean finish keeps the historical
        // output byte-identical.
        if self.completion != Completion::Finished {
            writeln!(
                f,
                "completion       : {} after {} generations ({} quarantined)",
                self.completion, self.generations_completed, self.quarantined
            )?;
        }
        write!(
            f,
            "occupancy {:.2}, utilization {:.3}",
            self.timing.occupancy, self.timing.utilization
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Explorer, ExplorerConfig};
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn explore_gemm() -> (ExplorationResult, AcceleratorSpec) {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", 100);
        let j = b.spatial("j", 100);
        let k = b.reduce("k", 100);
        let a = b.input("a", &[100, 100], DType::F16);
        let w = b.input("b", &[100, 100], DType::F16);
        let c = b.output("c", &[100, 100], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, k]), w.at([k, j]));
        let def = b.finish().unwrap();
        let accel = catalog::v100();
        let explorer = Explorer::with_config(ExplorerConfig {
            population: 8,
            generations: 2,
            survivors: 3,
            measure_top: 2,
            seed: 3,
            jobs: 1,
            ..Default::default()
        });
        (explorer.explore(&def, &accel).unwrap(), accel)
    }

    #[test]
    fn report_captures_mapping_and_padding() {
        let (result, accel) = explore_gemm();
        let report = MappingReport::from_result(&result, &accel);
        assert_eq!(report.intrinsic, "mma_sync");
        assert_eq!(report.num_mappings, 1);
        // 100 is not a multiple of 16: 7 tiles per axis, padded to 112.
        assert_eq!(
            report.tiles,
            vec![
                ("i1".to_string(), 7),
                ("i2".to_string(), 7),
                ("r1".to_string(), 7),
            ]
        );
        let expected = (100.0f64 / 112.0).powi(3);
        assert!((report.padding_efficiency - expected).abs() < 1e-12);
        assert!(report.gflops > 0.0);
        assert!(report.microseconds > 0.0);
    }

    #[test]
    fn display_is_complete() {
        let (result, accel) = explore_gemm();
        let report = MappingReport::from_result(&result, &accel);
        let text = report.to_string();
        assert!(text.contains("compute mapping"));
        assert!(text.contains("lane efficiency"));
        assert!(text.contains("GFLOPS"));
        assert!(text.contains("occupancy"));
        assert!(text.contains("addr(Src1/a)"));
        assert!(text.contains("Algorithm-1 calls"));
        assert!(text.contains("survivor memo hits"));
        assert!(!text.contains("hot path"));
        assert!(
            !text.contains("warm start"),
            "a cold run must keep the historical output"
        );
        assert!(
            !text.contains("completion"),
            "a clean finish must keep the historical output"
        );

        // Attaching functional counters adds the hot-path line.
        let tensors = amos_ir::interp::make_inputs(result.best_program.def(), 5);
        let (_, stats) =
            amos_sim::execute_mapped_with_stats(&result.best_program, &tensors).unwrap();
        let text = report.with_exec_stats(stats).to_string();
        assert!(text.contains("hot path"));
        assert!(text.contains("affine index hits"));
    }

    #[test]
    fn truncated_runs_surface_completion() {
        use crate::Budget;
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", 64);
        let j = b.spatial("j", 64);
        let k = b.reduce("k", 64);
        let a = b.input("a", &[64, 64], DType::F16);
        let w = b.input("b", &[64, 64], DType::F16);
        let c = b.output("c", &[64, 64], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, k]), w.at([k, j]));
        let def = b.finish().unwrap();
        let accel = catalog::v100();
        let explorer = Explorer::with_config(ExplorerConfig {
            population: 8,
            generations: 2,
            survivors: 3,
            measure_top: 2,
            seed: 3,
            jobs: 1,
            budget: Budget {
                max_measurements: Some(1),
                ..Budget::default()
            },
            ..Default::default()
        });
        let result = explorer.explore(&def, &accel).unwrap();
        let report = MappingReport::from_result(&result, &accel);
        assert_eq!(report.completion, Completion::BudgetExhausted);
        let text = report.to_string();
        assert!(
            text.contains("completion       : budget exhausted"),
            "{text}"
        );
    }
}

//! A tiny deterministic fork–join pool over `std::thread::scope`.
//!
//! The sandbox has no crates.io access, so the explorer cannot lean on rayon;
//! this module provides the one primitive it needs: map an index range
//! through a pure function on a fixed number of workers and return the
//! results **in index order**, so reductions over them are independent of
//! thread count and scheduling.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The first panic payload captured from a worker thread, if any. Workers
/// catch their own panics so that (a) the caller observes the *original*
/// payload instead of a secondary poisoned-mutex panic, and (b) siblings
/// stop claiming work promptly instead of running the range to completion.
type PanicSlot = Mutex<Option<Box<dyn Any + Send>>>;

/// Locks `m`, ignoring poison: the payload capture below is the panic
/// handling, so a poisoned result lock carries no extra information.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Stores `payload` as the first worker panic if none has been recorded yet.
fn record_panic(slot: &PanicSlot, stop: &AtomicBool, payload: Box<dyn Any + Send>) {
    stop.store(true, Ordering::Relaxed);
    let mut guard = lock_unpoisoned(slot);
    if guard.is_none() {
        *guard = Some(payload);
    }
}

/// Maps `0..n` through `work` on up to `jobs` threads, returning results in
/// index order.
///
/// Workers drain a shared atomic counter (dynamic load balancing — candidate
/// simulation times vary by an order of magnitude), collect `(index, value)`
/// pairs locally, and the pairs are merged and sorted at the end. With
/// `jobs <= 1` (or a trivial range) the work runs inline on the caller's
/// thread with no synchronisation at all.
///
/// If `work` panics on any index, the panic is re-raised on the calling
/// thread with its **original payload** (first panicking worker wins; other
/// workers stop early).
pub fn parallel_map<T, F>(jobs: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(work).collect();
    }
    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let panicked: PanicSlot = Mutex::new(None);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, work(i)));
                    }
                    local
                }));
                match outcome {
                    Ok(mut local) => lock_unpoisoned(&collected).append(&mut local),
                    Err(payload) => record_panic(&panicked, &stop, payload),
                }
            });
        }
    });
    if let Some(payload) = lock_unpoisoned(&panicked).take() {
        resume_unwind(payload);
    }
    let mut pairs = lock_unpoisoned(&collected);
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    std::mem::take(&mut *pairs)
        .into_iter()
        .map(|(_, v)| v)
        .collect()
}

/// Like [`parallel_map`], but each index additionally gets **exclusive**
/// mutable access to its slot of `slots` — the primitive behind the
/// explorer's SoA population arena, where worker threads fill reusable
/// `Schedule` buffers in place instead of allocating and returning them.
///
/// Determinism matches `parallel_map`: every index runs exactly once (work
/// is claimed from an atomic counter) and the returned metadata is in index
/// order. With `jobs <= 1` (or a trivial range) everything runs inline.
/// Worker panics propagate with their original payload, as in
/// [`parallel_map`].
pub fn parallel_fill_map<S, T, F>(jobs: usize, slots: &mut [S], work: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let n = slots.len();
    if jobs <= 1 || n <= 1 {
        return slots
            .iter_mut()
            .enumerate()
            .map(|(i, s)| work(i, s))
            .collect();
    }
    // A shared view of the slot array. `UnsafeCell<S>` has the same layout
    // as `S` (it is `repr(transparent)`), so the cast below only reinterprets
    // the element type; the `Sync` impl is sound because the atomic counter
    // hands each index — and therefore each slot — to exactly one worker.
    struct SlotCell<S>(std::cell::UnsafeCell<S>);
    unsafe impl<S: Send> Sync for SlotCell<S> {}
    let cells: &[SlotCell<S>] =
        unsafe { std::slice::from_raw_parts(slots.as_mut_ptr().cast::<SlotCell<S>>(), n) };

    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let panicked: PanicSlot = Mutex::new(None);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // SAFETY: `fetch_add` yields each index exactly once,
                        // so no other thread touches slot `i`; the scope
                        // outlives every borrow.
                        let slot = unsafe { &mut *cells[i].0.get() };
                        local.push((i, work(i, slot)));
                    }
                    local
                }));
                match outcome {
                    Ok(mut local) => lock_unpoisoned(&collected).append(&mut local),
                    Err(payload) => record_panic(&panicked, &stop, payload),
                }
            });
        }
    });
    if let Some(payload) = lock_unpoisoned(&panicked).take() {
        resume_unwind(payload);
    }
    let mut pairs = lock_unpoisoned(&collected);
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    std::mem::take(&mut *pairs)
        .into_iter()
        .map(|(_, v)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 3, 8] {
            let out = parallel_map(jobs, 100, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_ranges() {
        assert_eq!(parallel_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn fill_map_writes_every_slot_once() {
        for jobs in [1, 2, 4, 8] {
            let mut slots = vec![0u64; 100];
            let metas = parallel_fill_map(jobs, &mut slots, |i, s| {
                *s += (i * i) as u64;
                i * 2
            });
            assert_eq!(
                slots,
                (0..100).map(|i| (i * i) as u64).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
            assert_eq!(metas, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fill_map_reuses_slot_buffers() {
        let mut slots: Vec<Vec<u8>> = (0..16).map(|_| Vec::with_capacity(64)).collect();
        let before: Vec<*const u8> = slots.iter().map(|v| v.as_ptr()).collect();
        parallel_fill_map(4, &mut slots, |i, v| {
            v.clear();
            v.extend_from_slice(&[i as u8; 8]);
        });
        let after: Vec<*const u8> = slots.iter().map(|v| v.as_ptr()).collect();
        assert_eq!(
            before, after,
            "slot buffers must be reused, not reallocated"
        );
        assert!(slots.iter().enumerate().all(|(i, v)| v == &[i as u8; 8]));
    }

    #[test]
    fn fill_map_empty_and_singleton() {
        let mut none: Vec<u32> = Vec::new();
        assert_eq!(
            parallel_fill_map(4, &mut none, |i, _| i),
            Vec::<usize>::new()
        );
        let mut one = vec![5u32];
        assert_eq!(
            parallel_fill_map(4, &mut one, |i, s| *s as usize + i),
            vec![5]
        );
    }

    #[test]
    fn map_propagates_original_panic_payload() {
        let caught = amos_sim::isolate::quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_map(4, 64, |i| {
                    if i == 7 {
                        panic!("boom {i}");
                    }
                    i
                })
            }))
        });
        let payload = caught.expect_err("worker panic must propagate");
        assert_eq!(
            amos_sim::isolate::payload_text(payload.as_ref()),
            "boom 7",
            "the original payload must survive, not a poisoned-lock panic"
        );
    }

    #[test]
    fn fill_map_propagates_original_panic_payload() {
        let mut slots = vec![0u64; 64];
        let caught = amos_sim::isolate::quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_fill_map(4, &mut slots, |i, s| {
                    *s = i as u64;
                    if i == 11 {
                        panic!("slot failure {i}");
                    }
                    i
                })
            }))
        });
        let payload = caught.expect_err("worker panic must propagate");
        assert_eq!(
            amos_sim::isolate::payload_text(payload.as_ref()),
            "slot failure 11"
        );
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items near the front are much heavier; dynamic draining must still
        // return everything, in order.
        let out = parallel_map(4, 64, |i| {
            let spins = if i < 4 { 100_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 64);
        assert!(out.iter().enumerate().all(|(i, &(j, _))| i == j));
    }
}

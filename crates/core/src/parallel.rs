//! Deterministic data-parallel map primitives over the persistent worker
//! pool ([`crate::pool`]).
//!
//! The sandbox has no crates.io access, so the explorer cannot lean on
//! rayon; this module provides the one primitive it needs: map an index
//! range through a pure function on a fixed number of workers and return
//! the results **in index order**, so reductions over them are independent
//! of thread count and scheduling.
//!
//! Earlier revisions spawned fresh `std::thread::scope` threads per call
//! and merged `(index, value)` pairs through a mutex plus a final sort.
//! Both entry points are now thin wrappers that submit one *wave* to the
//! process-wide pool and write each result directly into its preallocated
//! per-index slot — no collection lock, no sort, no thread spawns after
//! the pool has warmed up. With `jobs <= 1`, a trivial range, or when the
//! caller is itself pool work (nested parallelism), the work runs inline
//! on the calling thread with no synchronisation at all.

use std::cell::UnsafeCell;

/// A shared view of a slot array. `UnsafeCell<S>` has the same layout as
/// `S` (it is `repr(transparent)`), so casting `&mut [S]` to `&[SlotCell<S>]`
/// only reinterprets the element type; the `Sync` impl is sound because the
/// pool's claim counter hands each index — and therefore each slot — to
/// exactly one participant.
struct SlotCell<S>(UnsafeCell<S>);
unsafe impl<S: Send> Sync for SlotCell<S> {}

/// Reinterprets exclusive access to `slots` as a shared slice of cells for
/// the duration of one wave.
fn as_cells<S: Send>(slots: &mut [S]) -> &[SlotCell<S>] {
    let n = slots.len();
    unsafe { std::slice::from_raw_parts(slots.as_mut_ptr().cast::<SlotCell<S>>(), n) }
}

/// Chunk size for one wave: aim for several chunks per worker so uneven
/// task costs still balance (candidate simulation times vary by an order
/// of magnitude), while paying one `fetch_add` per chunk instead of per
/// index on cheap tasks. Deterministic in (n, workers) only — it never
/// affects *what* runs, merely how indices are batched onto claims.
fn chunk_for(n: usize, workers: usize) -> usize {
    (n / (workers * 8)).clamp(1, 64)
}

/// Parses one `AMOS_JOBS` value: a positive integer worker count.
///
/// # Errors
///
/// A human-readable message for anything else — including `0`, which would
/// silently re-mean "all cores" and mask a typo.
pub fn parse_jobs_value(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "invalid AMOS_JOBS value `{raw}`: expected a positive integer worker count"
        )),
    }
}

/// Reads the `AMOS_JOBS` override from the environment: `Ok(None)` when
/// unset, `Ok(Some(n))` for a valid positive integer.
///
/// Entry points (the CLI, `amosd`) call this up front so a malformed value
/// is **rejected with a clear error** instead of being silently ignored;
/// [`default_jobs`] itself can only warn, because it is infallible and
/// cached process-wide.
///
/// # Errors
///
/// The [`parse_jobs_value`] message when the variable is set but invalid.
pub fn amos_jobs_override() -> Result<Option<usize>, String> {
    match std::env::var("AMOS_JOBS") {
        Err(_) => Ok(None),
        Ok(raw) => parse_jobs_value(&raw).map(Some),
    }
}

/// The default worker count used when `ExplorerConfig::jobs == 0` (and by
/// every CLI/bench surface that wants "all cores"): the `AMOS_JOBS`
/// environment variable if set to a positive integer (the CI jobs matrix
/// uses this to pin every `jobs = 0` resolution in a process), otherwise
/// [`std::thread::available_parallelism`], otherwise 1. Cached after the
/// first call. An *invalid* `AMOS_JOBS` is never silently ignored: it
/// prints a loud warning to stderr here (once), and front-door entry
/// points reject it outright via [`amos_jobs_override`].
pub fn default_jobs() -> usize {
    static JOBS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *JOBS.get_or_init(|| match amos_jobs_override() {
        Ok(Some(n)) => n,
        Ok(None) => available_cores(),
        Err(msg) => {
            eprintln!("amos: warning: {msg}; falling back to all available cores");
            available_cores()
        }
    })
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `0..n` through `work` on up to `jobs` threads, returning results in
/// index order.
///
/// Parallel calls run as one wave on the persistent pool: participants
/// claim index chunks from a shared counter (dynamic load balancing) and
/// write each value straight into its preallocated slot, so the output is
/// index-ordered by construction and bit-identical at any `jobs`. With
/// `jobs <= 1`, a trivial range, or when called from inside pool work, the
/// work runs inline on the caller's thread.
///
/// If `work` panics on any index, the panic is re-raised on the calling
/// thread with its **original payload** (first panicking participant wins;
/// the others stop early).
pub fn parallel_map<T, F>(jobs: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 || crate::pool::in_pool() {
        return (0..n).map(work).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let cells = as_cells(&mut out);
        let task = |i: usize| {
            let value = work(i);
            // SAFETY: the pool hands index `i` to exactly one participant,
            // so this is the only reference to slot `i`; the wave completes
            // before `out` is touched again.
            unsafe { *cells[i].0.get() = Some(value) };
        };
        let workers = jobs.min(n);
        crate::pool::global().run(workers, n, chunk_for(n, workers), &task);
    }
    debug_assert!(out.iter().all(Option::is_some), "wave skipped an index");
    out.into_iter()
        .map(|slot| slot.expect("pool executes every index exactly once"))
        .collect()
}

/// Like [`parallel_map`], but each index additionally gets **exclusive**
/// mutable access to its slot of `slots` — the primitive behind the
/// explorer's SoA population arena, where worker threads fill reusable
/// `Schedule` buffers in place instead of allocating and returning them.
///
/// Determinism matches `parallel_map`: every index runs exactly once (work
/// is claimed in chunks from the pool's wave counter) and the returned
/// metadata is in index order, written directly into per-index slots. With
/// `jobs <= 1`, a trivial range, or from inside pool work, everything runs
/// inline. Worker panics propagate with their original payload, as in
/// [`parallel_map`].
pub fn parallel_fill_map<S, T, F>(jobs: usize, slots: &mut [S], work: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let n = slots.len();
    if jobs <= 1 || n <= 1 || crate::pool::in_pool() {
        return slots
            .iter_mut()
            .enumerate()
            .map(|(i, s)| work(i, s))
            .collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let slot_cells = as_cells(slots);
        let out_cells = as_cells(&mut out);
        let task = |i: usize| {
            // SAFETY: the pool hands index `i` to exactly one participant,
            // so these are the only references to slot `i` and output `i`;
            // the wave completes before either array is touched again.
            let slot = unsafe { &mut *slot_cells[i].0.get() };
            let value = work(i, slot);
            unsafe { *out_cells[i].0.get() = Some(value) };
        };
        let workers = jobs.min(n);
        crate::pool::global().run(workers, n, chunk_for(n, workers), &task);
    }
    debug_assert!(out.iter().all(Option::is_some), "wave skipped an index");
    out.into_iter()
        .map(|slot| slot.expect("pool executes every index exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 3, 8] {
            let out = parallel_map(jobs, 100, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_ranges() {
        assert_eq!(parallel_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn nested_parallel_maps_run_inline_without_deadlock() {
        // A task that itself calls parallel_map must not submit a nested
        // wave (the pool's claim counter is per-wave); the inner call falls
        // back to inline execution and the result is unchanged.
        let out = parallel_map(4, 16, |i| parallel_map(4, 8, move |j| i * 8 + j));
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn fill_map_writes_every_slot_once() {
        for jobs in [1, 2, 4, 8] {
            let mut slots = vec![0u64; 100];
            let metas = parallel_fill_map(jobs, &mut slots, |i, s| {
                *s += (i * i) as u64;
                i * 2
            });
            assert_eq!(
                slots,
                (0..100).map(|i| (i * i) as u64).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
            assert_eq!(metas, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fill_map_reuses_slot_buffers() {
        let mut slots: Vec<Vec<u8>> = (0..16).map(|_| Vec::with_capacity(64)).collect();
        let before: Vec<*const u8> = slots.iter().map(|v| v.as_ptr()).collect();
        parallel_fill_map(4, &mut slots, |i, v| {
            v.clear();
            v.extend_from_slice(&[i as u8; 8]);
        });
        let after: Vec<*const u8> = slots.iter().map(|v| v.as_ptr()).collect();
        assert_eq!(
            before, after,
            "slot buffers must be reused, not reallocated"
        );
        assert!(slots.iter().enumerate().all(|(i, v)| v == &[i as u8; 8]));
    }

    #[test]
    fn fill_map_empty_and_singleton() {
        let mut none: Vec<u32> = Vec::new();
        assert_eq!(
            parallel_fill_map(4, &mut none, |i, _| i),
            Vec::<usize>::new()
        );
        let mut one = vec![5u32];
        assert_eq!(
            parallel_fill_map(4, &mut one, |i, s| *s as usize + i),
            vec![5]
        );
    }

    #[test]
    fn map_propagates_original_panic_payload() {
        let caught = amos_sim::isolate::quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_map(4, 64, |i| {
                    if i == 7 {
                        panic!("boom {i}");
                    }
                    i
                })
            }))
        });
        let payload = caught.expect_err("worker panic must propagate");
        assert_eq!(
            amos_sim::isolate::payload_text(payload.as_ref()),
            "boom 7",
            "the original payload must survive, not a poisoned-lock panic"
        );
    }

    #[test]
    fn fill_map_propagates_original_panic_payload() {
        let mut slots = vec![0u64; 64];
        let caught = amos_sim::isolate::quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_fill_map(4, &mut slots, |i, s| {
                    *s = i as u64;
                    if i == 11 {
                        panic!("slot failure {i}");
                    }
                    i
                })
            }))
        });
        let payload = caught.expect_err("worker panic must propagate");
        assert_eq!(
            amos_sim::isolate::payload_text(payload.as_ref()),
            "slot failure 11"
        );
    }

    #[test]
    fn pool_is_usable_after_a_panicking_call() {
        let caught = amos_sim::isolate::quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_map(4, 64, |i| {
                    if i == 3 {
                        panic!("transient");
                    }
                    i
                })
            }))
        });
        assert!(caught.is_err());
        let out = parallel_map(4, 64, |i| i + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items near the front are much heavier; dynamic draining must still
        // return everything, in order.
        let out = parallel_map(4, 64, |i| {
            let spins = if i < 4 { 100_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 64);
        assert!(out.iter().enumerate().all(|(i, &(j, _))| i == j));
    }

    #[test]
    fn default_jobs_is_positive_and_stable() {
        let a = default_jobs();
        let b = default_jobs();
        assert!(a >= 1);
        assert_eq!(a, b, "default_jobs must be cached");
    }

    #[test]
    fn jobs_values_parse_strictly() {
        assert_eq!(parse_jobs_value("4"), Ok(4));
        assert_eq!(parse_jobs_value(" 16 "), Ok(16), "whitespace is trimmed");
        for bad in ["0", "-1", "abc", "", "4.5", "1 2"] {
            let err = parse_jobs_value(bad).expect_err(bad);
            assert!(err.contains("invalid AMOS_JOBS"), "{err}");
            assert!(err.contains(bad.trim()) || bad.trim().is_empty(), "{err}");
        }
    }
}

//! Joint exploration of mappings and schedules (paper §5.3).
//!
//! AMOS enumerates every valid mapping, then runs a genetic search over the
//! combined (mapping × schedule) space: candidates are screened with the
//! analytic performance model, and the most promising ones are measured on
//! the ground truth — real hardware in the paper, the timing simulator here.

use crate::cache::{ExplorationCache, WarmStart};
use crate::generate::MappingGenerator;
use crate::mapping::Mapping;
use crate::parallel::{parallel_fill_map, parallel_map};
use crate::perf_model::{predict_batch_with, predict_with, PerfBreakdown};
use amos_hw::AcceleratorSpec;
use amos_ir::ComputeDef;
use amos_sim::{
    simulate, AxisKind, BatchTables, MappedProgram, Schedule, ScreeningContext, SimError,
    TimingReport, BATCH_LANES,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Exploration failure modes.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ExploreError {
    /// No valid software-hardware mapping exists for the computation on the
    /// accelerator's intrinsic; callers typically fall back to scalar units.
    NoValidMapping {
        computation: String,
        intrinsic: String,
    },
    /// A simulator error escaped candidate repair.
    Sim(SimError),
    /// The [`ExplorerConfig`] cannot drive a search (e.g. an empty
    /// population or no survivors); rejected up front instead of panicking
    /// or looping forever mid-search.
    InvalidConfig { detail: String },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::NoValidMapping {
                computation,
                intrinsic,
            } => write!(f, "no valid mapping of `{computation}` onto `{intrinsic}`"),
            ExploreError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExploreError::InvalidConfig { detail } => {
                write!(f, "invalid explorer configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<SimError> for ExploreError {
    fn from(e: SimError) -> Self {
        ExploreError::Sim(e)
    }
}

/// Resource limits for one exploration run. All limits default to `None`
/// (unlimited); a violated limit stops the search **cooperatively at
/// generation boundaries**, returning the best candidate measured so far
/// instead of an error.
///
/// Counter-based limits (`max_measurements`, `max_evaluations`) truncate
/// deterministically: the stop generation is a pure function of the config,
/// so a truncated run is bit-identical to the prefix of the unlimited run.
/// `deadline_ms` is wall-clock and therefore stops at a machine-dependent
/// generation, but the result is still bit-deterministic *given* the stop
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock limit in milliseconds, measured from search entry.
    pub deadline_ms: Option<u64>,
    /// Maximum ground-truth measurements (timing simulations).
    pub max_measurements: Option<usize>,
    /// Maximum candidate evaluations (analytically screened slots).
    pub max_evaluations: Option<usize>,
}

impl Budget {
    /// `true` when no limit is set — the default.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none()
            && self.max_measurements.is_none()
            && self.max_evaluations.is_none()
    }
}

/// A shared cooperative cancellation flag, checked at the same
/// phase/generation boundaries as the [`Budget`] limits.
///
/// Cloning the token shares the flag: any holder can [`CancelToken::cancel`]
/// and every exploration carrying a clone (via
/// [`ExplorerConfig::cancel`]) stops at its next boundary with
/// [`Completion::Cancelled`] and its best-so-far answer. This is the
/// Ctrl-C path of the CLI and the per-request abort path of `amosd`:
/// cancellation is always cooperative, so a cancelled run is a bit-identical
/// prefix of the uncancelled run, exactly like a deadline stop.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; safe from any thread (and from a signal
    /// watcher — it is a single atomic store).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Tokens compare by *identity* (two clones of one flag are equal, two
/// independent flags are not), so deriving `PartialEq` on configs that carry
/// one stays meaningful.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// How an exploration run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The full search ran with no quarantined candidates.
    Finished,
    /// The full search ran, but `quarantined` candidate evaluations
    /// panicked and were isolated; the result covers the survivors only.
    Degraded {
        /// Number of quarantined candidate evaluations.
        quarantined: usize,
    },
    /// A counter limit of the [`Budget`] was hit; the result is the best
    /// candidate measured before the stop generation.
    BudgetExhausted,
    /// The wall-clock deadline passed; the result is the best candidate
    /// measured before the stop generation.
    DeadlineExceeded,
    /// A [`CancelToken`] was raised (Ctrl-C, a withdrawn service request);
    /// the result is the best candidate measured before the stop generation.
    Cancelled,
}

impl Completion {
    /// `true` only for a full, fault-free run.
    pub fn is_finished(&self) -> bool {
        matches!(self, Completion::Finished)
    }

    /// `true` when the search stopped early on a [`Budget`] limit or a
    /// raised [`CancelToken`].
    pub fn is_truncated(&self) -> bool {
        matches!(
            self,
            Completion::BudgetExhausted | Completion::DeadlineExceeded | Completion::Cancelled
        )
    }

    /// Merge order: a truncation outranks degradation outranks a clean
    /// finish, the deadline outranks counters, and an explicit cancellation
    /// (the hardest stop) outranks everything.
    fn severity(&self) -> u8 {
        match self {
            Completion::Finished => 0,
            Completion::Degraded { .. } => 1,
            Completion::BudgetExhausted => 2,
            Completion::DeadlineExceeded => 3,
            Completion::Cancelled => 4,
        }
    }

    fn merge(self, other: Completion) -> Completion {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completion::Finished => write!(f, "finished"),
            Completion::Degraded { quarantined } => {
                write!(f, "degraded ({quarantined} quarantined)")
            }
            Completion::BudgetExhausted => write!(f, "budget exhausted"),
            Completion::DeadlineExceeded => write!(f, "deadline exceeded"),
            Completion::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// One quarantined candidate evaluation: enough identity to replay it
/// (`stream_rng(seed, generation, slot)` in `phase`) plus the panic payload
/// text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Evaluation phase (`"seed"`, `"screen"`, `"breed"`, `"measure"`,
    /// `"fallback"`).
    pub phase: &'static str,
    /// Generation the candidate belonged to.
    pub generation: u64,
    /// Candidate slot within the phase.
    pub slot: u64,
    /// The RNG seed of the run (refinement rounds derive their own).
    pub seed: u64,
    /// Panic payload text.
    pub detail: String,
}

impl fmt::Display for QuarantineRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} g{} s{} (seed {:#x}): {}",
            self.phase, self.generation, self.slot, self.seed, self.detail
        )
    }
}

/// Every candidate evaluation quarantined during one exploration run, in
/// deterministic (reduction) order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuarantineReport {
    /// The quarantined evaluations.
    pub records: Vec<QuarantineRecord>,
}

impl QuarantineReport {
    /// `true` when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of quarantined evaluations.
    pub fn len(&self) -> usize {
        self.records.len()
    }
}

/// Tuning knobs of the genetic explorer.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorerConfig {
    /// Candidates alive per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Candidates surviving selection each generation.
    pub survivors: usize,
    /// Top predicted candidates measured on the ground truth per generation.
    pub measure_top: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Worker threads for candidate evaluation; `0` means one per available
    /// CPU. The search is bit-identical for every value of `jobs`: each
    /// candidate slot draws from its own RNG stream derived from
    /// `(seed, generation, slot)`, and results are reduced in slot order.
    pub jobs: usize,
    /// Resource limits; the default is unlimited. Like `jobs`, the budget
    /// never changes *which* candidates a generation evaluates — it only
    /// decides how many generations run.
    pub budget: Budget,
    /// Seed the initial population from the best mapping/schedule of the
    /// nearest previously-explored shape of the same operator class (the
    /// cache's similarity index). Off by default: warm-started runs are
    /// deterministic for a fixed cache state, but *which* shapes were
    /// explored before changes the trajectory, so opting in trades
    /// cold-state reproducibility for faster convergence on shape families.
    pub warm_start: bool,
    /// Cooperative cancellation flag, consulted at the same boundaries as
    /// the [`Budget`]. `None` (the default) makes the run uninterruptible.
    /// Like the budget, the token is excluded from cache fingerprints: it
    /// never changes which candidates a generation evaluates, only whether
    /// a later generation runs.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault-injection plan (test harness; inert by default).
    #[cfg(feature = "fault-injection")]
    pub faults: crate::faultplan::FaultPlan,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            population: 32,
            generations: 8,
            survivors: 8,
            measure_top: 4,
            seed: 0x5eed,
            jobs: 0,
            budget: Budget::default(),
            warm_start: false,
            cancel: None,
            #[cfg(feature = "fault-injection")]
            faults: crate::faultplan::FaultPlan::default(),
        }
    }
}

impl ExplorerConfig {
    /// The worker-thread count after resolving `jobs == 0` to
    /// [`crate::default_jobs`] (the `AMOS_JOBS` override, else the machine's
    /// available parallelism).
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            crate::parallel::default_jobs()
        } else {
            self.jobs
        }
    }

    /// Rejects configurations that cannot drive a search. Run automatically
    /// at every exploration entry point.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidConfig`] when `population` or `survivors`
    /// is zero.
    pub fn validate(&self) -> Result<(), ExploreError> {
        if self.population == 0 {
            return Err(ExploreError::InvalidConfig {
                detail: "population must be at least 1".into(),
            });
        }
        if self.survivors == 0 {
            return Err(ExploreError::InvalidConfig {
                detail: "survivors must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Counters of the analytic screening pipeline for one exploration run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScreeningStats {
    /// Analytic-model evaluations (candidates screened via the precomputed
    /// [`ScreeningContext`] tables), summed over refinement rounds.
    pub screened: usize,
    /// Survivor predictions carried into the next generation's ranking
    /// without re-screening (the cross-generation memo).
    pub survivor_memo_hits: usize,
    /// Top-ranked candidates whose ground-truth measurement was answered by
    /// the measured-candidate memo (already simulated earlier, or duplicated
    /// within one measurement batch).
    pub measured_memo_hits: usize,
    /// Wall-clock seconds spent in the screening phases (population fill and
    /// breeding). The one non-deterministic field — excluded from the
    /// bit-identity guarantees.
    pub screen_seconds: f64,
}

impl ScreeningStats {
    /// Screened candidates per second; `0.0` when no time was recorded.
    pub fn throughput(&self) -> f64 {
        if self.screen_seconds > 0.0 {
            self.screened as f64 / self.screen_seconds
        } else {
            0.0
        }
    }

    fn absorb(&mut self, other: &ScreeningStats) {
        self.screened += other.screened;
        self.survivor_memo_hits += other.survivor_memo_hits;
        self.measured_memo_hits += other.measured_memo_hits;
        self.screen_seconds += other.screen_seconds;
    }
}

/// Counters of the nearest-shape warm-start path for one exploration run.
/// All fields are deterministic for a fixed cache state (the donor index is
/// consulted before any parallel phase starts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStartStats {
    /// Donors consulted: one per explored unit whose intrinsic matched the
    /// similarity index's nearest previously-explored shape.
    pub donors: usize,
    /// Initial-population slots seeded from a donor's winning candidate
    /// (slot 0 verbatim, the rest donor-plus-one-mutation).
    pub seeded_slots: usize,
    /// Slots that fell back to naive initialisation because the donor could
    /// not be re-validated on this shape (mapping absent from the unit's
    /// enumeration, or its schedule unrepairable on the new extents).
    pub fallback_slots: usize,
}

impl WarmStartStats {
    fn absorb(&mut self, other: &WarmStartStats) {
        self.donors += other.donors;
        self.seeded_slots += other.seeded_slots;
        self.fallback_slots += other.fallback_slots;
    }
}

/// Flat SoA arena holding the genetic population: parallel arrays indexed by
/// slot, `live` marking the populated prefix. Slots beyond `live` keep their
/// `Schedule` buffers allocated so breeding fills them in place; compaction
/// swaps rejected slots' buffers toward the tail instead of dropping them.
struct PopulationArena {
    mapping_idx: Vec<usize>,
    predicted: Vec<f64>,
    schedules: Vec<Schedule>,
    live: usize,
    /// Ranking scratch: sorted source order, then its inverse permutation.
    order: Vec<usize>,
    dest: Vec<usize>,
}

impl PopulationArena {
    fn new() -> Self {
        PopulationArena {
            mapping_idx: Vec::new(),
            predicted: Vec::new(),
            schedules: Vec::new(),
            live: 0,
            order: Vec::new(),
            dest: Vec::new(),
        }
    }

    /// Grows the arrays to at least `n` slots; placeholder schedules are
    /// empty and get filled by `reset_naive`/`clone_from`.
    fn ensure_slots(&mut self, n: usize) {
        while self.schedules.len() < n {
            self.schedules.push(Schedule::empty());
            self.mapping_idx.push(0);
            self.predicted.push(f64::INFINITY);
        }
    }

    /// Stable-sorts the live prefix by predicted cycles, physically
    /// reordering all three arrays. The physical reorder matters: predicted
    /// ties are common (the model ignores the toggle genes), parents are
    /// drawn by position, and the measured reduction walks rank order — so
    /// the arrangement must equal a stable sort of the insertion order
    /// exactly, as in the reference `Vec<Candidate>` implementation.
    fn sort_live_by_predicted(&mut self) {
        let n = self.live;
        self.order.clear();
        self.order.extend(0..n);
        let predicted = &self.predicted;
        self.order
            .sort_by(|&a, &b| predicted[a].total_cmp(&predicted[b]));
        // Invert (dest[src] = rank), then apply by cycle-chasing swaps.
        self.dest.clear();
        self.dest.resize(n, 0);
        for (rank, &src) in self.order.iter().enumerate() {
            self.dest[src] = rank;
        }
        for i in 0..n {
            while self.dest[i] != i {
                let j = self.dest[i];
                self.mapping_idx.swap(i, j);
                self.predicted.swap(i, j);
                self.schedules.swap(i, j);
                self.dest.swap(i, j);
            }
        }
    }

    /// Folds breeding metadata `(mapping_idx, predicted, accepted)` for the
    /// slots starting at `start` into the live prefix: accepted slots are
    /// compacted forward in slot order (swapping `Schedule` buffers, so
    /// rejected slots keep theirs for reuse) and `live` is updated.
    fn compact_accepted(&mut self, start: usize, metas: &[(usize, f64, bool)]) {
        let mut w = start;
        for (k, &(mapping_idx, predicted, accepted)) in metas.iter().enumerate() {
            if !accepted {
                continue;
            }
            let r = start + k;
            if w != r {
                self.schedules.swap(w, r);
            }
            self.mapping_idx[w] = mapping_idx;
            self.predicted[w] = predicted;
            w += 1;
        }
        self.live = w;
    }
}

/// Result of one exploration run.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// The winning mapping.
    pub best_mapping: Mapping,
    /// The winning mapping, lowered.
    pub best_program: MappedProgram,
    /// The winning schedule.
    pub best_schedule: Schedule,
    /// Ground-truth report of the winner.
    pub best_report: TimingReport,
    /// Every (predicted, measured) pair evaluated on the ground truth, in
    /// evaluation order — the raw data behind Figure 5.
    pub evaluations: Vec<(f64, f64)>,
    /// Size of the enumerated mapping space.
    pub num_mappings: usize,
    /// Ground-truth simulations that failed (infeasible schedules poisoned
    /// to `f64::INFINITY`, failed heuristic seeds and fallback attempts),
    /// summed over refinement rounds. Deterministic for a given seed.
    pub sim_failures: usize,
    /// Screening-pipeline counters (candidates screened, memo hits, screen
    /// time), summed over refinement rounds. All fields except
    /// `screen_seconds` are deterministic for a given seed.
    pub screening: ScreeningStats,
    /// Nearest-shape warm-start counters (donors consulted, slots seeded or
    /// fallen back), summed over units. All zeros unless
    /// [`ExplorerConfig::warm_start`] found a donor.
    pub warm_start: WarmStartStats,
    /// How the run ended: complete, degraded by quarantined candidates, or
    /// truncated by a [`Budget`] limit.
    pub completion: Completion,
    /// Generation-loop iterations fully completed before the run ended,
    /// summed over refinement rounds and (for multi-intrinsic accelerators)
    /// units.
    pub generations_completed: usize,
    /// Candidate evaluations that panicked and were isolated.
    pub quarantine: QuarantineReport,
}

impl ExplorationResult {
    /// Best measured cycles.
    pub fn cycles(&self) -> f64 {
        self.best_report.cycles
    }
}

/// Run-wide fault-tolerance state shared by every phase of one top-level
/// exploration (including refinement sub-runs and multi-intrinsic units):
/// the budget clock/counters consulted at generation boundaries, and the
/// quarantine log of isolated panics.
struct Supervisor {
    deadline: Option<Instant>,
    max_measurements: Option<usize>,
    max_evaluations: Option<usize>,
    cancel: Option<CancelToken>,
    measurements: AtomicUsize,
    evaluations: AtomicUsize,
    quarantine: Mutex<Vec<QuarantineRecord>>,
}

impl Supervisor {
    fn new(config: &ExplorerConfig) -> Self {
        let budget = &config.budget;
        Supervisor {
            deadline: budget
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            max_measurements: budget.max_measurements,
            max_evaluations: budget.max_evaluations,
            cancel: config.cancel.clone(),
            measurements: AtomicUsize::new(0),
            evaluations: AtomicUsize::new(0),
            quarantine: Mutex::new(Vec::new()),
        }
    }

    /// Records `n` ground-truth measurements. Called with per-phase batch
    /// sizes, which are deterministic, so counter-based truncation stops at
    /// the same generation on every machine and thread count.
    fn note_measurements(&self, n: usize) {
        self.measurements.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` candidate evaluations (screened slots).
    fn note_evaluations(&self, n: usize) {
        self.evaluations.fetch_add(n, Ordering::Relaxed);
    }

    /// The cooperative cancellation point: `Some` once a budget limit is
    /// violated. Only consulted at phase/generation boundaries.
    fn check(&self) -> Option<Completion> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Some(Completion::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Completion::DeadlineExceeded);
            }
        }
        if let Some(max) = self.max_measurements {
            if self.measurements.load(Ordering::Relaxed) >= max {
                return Some(Completion::BudgetExhausted);
            }
        }
        if let Some(max) = self.max_evaluations {
            if self.evaluations.load(Ordering::Relaxed) >= max {
                return Some(Completion::BudgetExhausted);
            }
        }
        None
    }

    /// Logs one isolated panic. Callers invoke this from the sequential
    /// reduction over slot outcomes (never from worker threads), so the log
    /// order is deterministic.
    fn quarantine(
        &self,
        phase: &'static str,
        generation: u64,
        slot: u64,
        seed: u64,
        detail: String,
    ) {
        self.quarantine
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(QuarantineRecord {
                phase,
                generation,
                slot,
                seed,
                detail,
            });
    }

    /// Drains the quarantine log into a report (top-level finalisation).
    fn take_report(&self) -> QuarantineReport {
        QuarantineReport {
            records: std::mem::take(
                &mut *self
                    .quarantine
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            ),
        }
    }

    /// Applies the quarantine log and completion to a finished top-level
    /// result: a clean finish with a non-empty quarantine becomes
    /// [`Completion::Degraded`].
    fn finalize(&self, mut result: ExplorationResult) -> ExplorationResult {
        result.quarantine = self.take_report();
        if result.completion == Completion::Finished && !result.quarantine.is_empty() {
            result.completion = Completion::Degraded {
                quarantined: result.quarantine.len(),
            };
        }
        result
    }
}

/// One per-intrinsic exploration unit of a (possibly heterogeneous)
/// accelerator: the hierarchy re-targeted at a single intrinsic, with its
/// mapping set enumerated and lowered. Produced stage-by-stage by the
/// [`crate::Engine`] pipeline and consumed by
/// [`Explorer::explore_units_cached`].
#[derive(Debug, Clone)]
pub(crate) struct LoweredUnit {
    /// The accelerator re-targeted at this unit's intrinsic.
    pub(crate) accel: AcceleratorSpec,
    /// The enumerated (or fixed) mapping set; may be empty.
    pub(crate) mappings: Vec<Mapping>,
    /// One lowered program per mapping.
    pub(crate) programs: Vec<MappedProgram>,
}

/// The genetic mapping-and-schedule explorer.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    config: ExplorerConfig,
    generator: MappingGenerator,
}

impl Explorer {
    /// Explorer with default configuration and policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explorer with a custom configuration.
    pub fn with_config(config: ExplorerConfig) -> Self {
        Explorer {
            config,
            generator: MappingGenerator::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ExplorerConfig {
        &self.config
    }

    /// Explores the joint space for `def` on `accel` and returns the best
    /// measured candidate.
    ///
    /// # Errors
    ///
    /// [`ExploreError::NoValidMapping`] when the enumeration is empty.
    pub fn explore(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_cached(def, accel, None)
    }

    /// [`Explorer::explore`] with an optional shared [`ExplorationCache`]
    /// that the refinement phase routes its per-mapping sub-runs through, so
    /// repeated shapes do not re-tune their shortlisted mappings.
    pub(crate) fn explore_cached(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        cache: Option<&ExplorationCache>,
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_mappings_cached(def, accel, None, cache)
    }

    /// Explores across *every* intrinsic of a heterogeneous accelerator
    /// (e.g. an Ascend-style NPU with both cube and vector units) and keeps
    /// the best mapping over all of them.
    ///
    /// # Errors
    ///
    /// [`ExploreError::NoValidMapping`] when no intrinsic admits a mapping.
    pub fn explore_multi(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_multi_cached(def, accel, None, None)
    }

    /// [`Explorer::explore_multi`] with an optional shared cache for the
    /// per-intrinsic refinement sub-runs. This is the composition of the
    /// staged [`crate::Engine`] pipeline: decompose into units, enumerate,
    /// lower, then run the merge loop.
    pub(crate) fn explore_multi_cached(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        cache: Option<&ExplorationCache>,
        warm: Option<&WarmStart>,
    ) -> Result<ExplorationResult, ExploreError> {
        let units = self
            .unit_accelerators(accel)
            .into_iter()
            .map(|unit| {
                let mappings = self.enumerate_unit(def, &unit);
                let programs = self.lower_mappings(def, &unit, &mappings)?;
                Ok(LoweredUnit {
                    accel: unit,
                    mappings,
                    programs,
                })
            })
            .collect::<Result<Vec<_>, ExploreError>>()?;
        self.explore_units_cached(def, accel, &units, cache, warm)
    }

    /// Decomposes a (possibly heterogeneous) accelerator into per-intrinsic
    /// exploration units: the same hierarchy re-targeted at each intrinsic
    /// in turn, with the extra intrinsics cleared.
    pub(crate) fn unit_accelerators(&self, accel: &AcceleratorSpec) -> Vec<AcceleratorSpec> {
        accel
            .all_intrinsics()
            .map(|intrinsic| {
                let mut unit = accel.clone();
                unit.intrinsic = intrinsic.clone();
                unit.extra_intrinsics.clear();
                unit
            })
            .collect()
    }

    /// Enumerates the valid-mapping set of one unit's intrinsic.
    pub(crate) fn enumerate_unit(&self, def: &ComputeDef, unit: &AcceleratorSpec) -> Vec<Mapping> {
        self.generator.enumerate(def, &unit.intrinsic)
    }

    /// Lowers a mapping set for one unit, concurrently on
    /// [`ExplorerConfig::jobs`] workers. The first failure (in mapping
    /// order) aborts, matching the serial behaviour.
    pub(crate) fn lower_mappings(
        &self,
        def: &ComputeDef,
        unit: &AcceleratorSpec,
        mappings: &[Mapping],
    ) -> Result<Vec<MappedProgram>, ExploreError> {
        let jobs = self.config.effective_jobs();
        let intr = &unit.intrinsic;
        let programs = parallel_map(jobs, mappings.len(), |i| mappings[i].lower(def, intr))
            .into_iter()
            .collect::<Result<_, _>>()?;
        Ok(programs)
    }

    /// The multi-unit merge loop over pre-lowered units: explores each unit
    /// that admits at least one mapping, keeps the best measured winner and
    /// merges the evaluation/screening counters across units. Shared by
    /// [`Explorer::explore_multi`] and the staged [`crate::Engine`] pipeline,
    /// so both produce bit-identical results.
    pub(crate) fn explore_units_cached(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        units: &[LoweredUnit],
        cache: Option<&ExplorationCache>,
        warm: Option<&WarmStart>,
    ) -> Result<ExplorationResult, ExploreError> {
        self.config.validate()?;
        let sup = Supervisor::new(&self.config);
        let mut best: Option<ExplorationResult> = None;
        let mut evaluations = Vec::new();
        let mut num_mappings = 0usize;
        let mut sim_failures = 0usize;
        let mut screening = ScreeningStats::default();
        let mut warm_stats = WarmStartStats::default();
        let mut completion = Completion::Finished;
        let mut generations_completed = 0usize;
        for unit in units {
            // A unit whose intrinsic admits no mapping simply contributes
            // nothing, exactly like the per-unit `NoValidMapping` of the
            // unstaged path.
            if unit.mappings.is_empty() {
                continue;
            }
            let result = self.explore_programs(
                def,
                &unit.accel,
                &unit.mappings,
                &unit.programs,
                self.config.seed,
                cache,
                &sup,
                warm,
            )?;
            evaluations.extend(result.evaluations.iter().copied());
            num_mappings += result.num_mappings;
            sim_failures += result.sim_failures;
            screening.absorb(&result.screening);
            warm_stats.absorb(&result.warm_start);
            completion = completion.merge(result.completion);
            generations_completed += result.generations_completed;
            let better = best
                .as_ref()
                .map(|b| result.cycles() < b.cycles())
                .unwrap_or(true);
            if better {
                best = Some(result);
            }
            // The budget covers the whole multi-unit search: once a unit
            // truncates, later units must not start.
            if completion.is_truncated() {
                break;
            }
        }
        let mut best = best.ok_or_else(|| ExploreError::NoValidMapping {
            computation: def.name().to_string(),
            intrinsic: accel
                .all_intrinsics()
                .map(|i| i.name.clone())
                .collect::<Vec<_>>()
                .join("|"),
        })?;
        best.evaluations = evaluations;
        best.num_mappings = num_mappings;
        best.sim_failures = sim_failures;
        best.screening = screening;
        best.warm_start = warm_stats;
        best.completion = completion;
        best.generations_completed = generations_completed;
        Ok(sup.finalize(best))
    }

    /// Explores with a fixed mapping set (used by the fixed-mapping baseline
    /// ablations of paper §7.6, which keep AMOS's schedule tuner but freeze
    /// the mapping).
    ///
    /// Candidate lowering, simulation and model screening run on
    /// [`ExplorerConfig::jobs`] worker threads. The search is nevertheless
    /// deterministic for a given seed: every candidate slot draws from its
    /// own RNG stream keyed by `(seed, generation, slot)` and all reductions
    /// walk results in slot order, so the winner is bit-identical for any
    /// thread count.
    pub fn explore_mappings(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        fixed: Option<Vec<Mapping>>,
    ) -> Result<ExplorationResult, ExploreError> {
        self.explore_mappings_cached(def, accel, fixed, None)
    }

    /// [`Explorer::explore_mappings`] with an optional shared cache for the
    /// refinement sub-runs: enumerates (or takes) the mapping set, lowers it
    /// once, and hands the programs to the generation loop.
    pub(crate) fn explore_mappings_cached(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        fixed: Option<Vec<Mapping>>,
        cache: Option<&ExplorationCache>,
    ) -> Result<ExplorationResult, ExploreError> {
        self.config.validate()?;
        let sup = Supervisor::new(&self.config);
        let intr = &accel.intrinsic;
        let mappings = match fixed {
            Some(m) => m,
            None => self.generator.enumerate(def, intr),
        };
        if mappings.is_empty() {
            return Err(ExploreError::NoValidMapping {
                computation: def.name().to_string(),
                intrinsic: intr.name.clone(),
            });
        }
        let programs = self.lower_mappings(def, accel, &mappings)?;
        let result = self.explore_programs(
            def,
            accel,
            &mappings,
            &programs,
            self.config.seed,
            cache,
            &sup,
            None,
        )?;
        Ok(sup.finalize(result))
    }

    /// The generation loop over already-lowered programs. Refinement
    /// re-enters this function on single-element slices of
    /// `mappings`/`programs`, so shortlisted mappings are never re-lowered
    /// and no `Explorer`/`ExplorerConfig` clones are made per round.
    ///
    /// Fault tolerance: every candidate evaluation runs inside
    /// [`amos_sim::isolate::run_isolated`], so a panicking candidate is
    /// quarantined into `sup` instead of unwinding the search; the budget in
    /// `sup` is checked cooperatively at phase and generation boundaries.
    #[allow(clippy::too_many_arguments)] // internal: mirrors the phase inputs
    fn explore_programs(
        &self,
        def: &ComputeDef,
        accel: &AcceleratorSpec,
        mappings: &[Mapping],
        programs: &[MappedProgram],
        seed: u64,
        cache: Option<&ExplorationCache>,
        sup: &Supervisor,
        warm: Option<&WarmStart>,
    ) -> Result<ExplorationResult, ExploreError> {
        let jobs = self.config.effective_jobs();
        // `Some` once a budget limit fires: later phases are skipped and the
        // best-so-far is returned with the truncation status.
        let mut truncated: Option<Completion> = sup.check();
        // One screening context per program: all per-candidate model queries
        // and feasibility probes run over these precomputed tables, with no
        // allocation on the hot path.
        let ctxs: Vec<Arc<ScreeningContext>> = programs
            .iter()
            .map(|p| p.screening_context(accel))
            .collect();
        let screened = AtomicUsize::new(0);
        let mut survivor_memo_hits = 0usize;
        let mut measured_memo_hits = 0usize;
        let mut screen_seconds = 0f64;

        let mut evaluations: Vec<(f64, f64)> = Vec::new();
        let mut sim_failures = 0usize;
        // Measured cache: (mapping, schedule) identity -> measured cycles.
        let mut measured: HashMap<(usize, Schedule), f64> = HashMap::new();
        let mut best: Option<(usize, Schedule, TimingReport)> = None;
        // Best measured cycles per mapping, for refinement shortlisting.
        let mut best_per_mapping: BTreeMap<usize, f64> = BTreeMap::new();

        // ---- heuristic seeds ------------------------------------------------
        // Measure the balanced heuristic schedule for a spread of mappings up
        // front. This anchors the search at the quality a hand-tuned library
        // ships (the library's fixed mapping is in our space), so exploration
        // can only improve on it.
        if truncated.is_none() {
            let seed_count = mappings.len().min(64);
            let stride = (mappings.len() / seed_count.max(1)).max(1);
            let seed_idxs: Vec<usize> = (0..mappings.len())
                .step_by(stride)
                .take(seed_count)
                .collect();
            let seeded = parallel_map(jobs, seed_idxs.len(), |i| {
                let idx = seed_idxs[i];
                let prog = &programs[idx];
                amos_sim::isolate::run_isolated(|| {
                    self.injected_fault("seed", seed, 0, i as u64)?;
                    let schedule = Schedule::balanced(prog, accel);
                    simulate(prog, &schedule, accel).map(|report| {
                        screened.fetch_add(1, Ordering::Relaxed);
                        let predicted = predict_with(&ctxs[idx], &schedule)
                            .map(|b| b.cycles)
                            .unwrap_or(report.cycles);
                        (schedule, predicted, report)
                    })
                })
            });
            sup.note_measurements(seed_idxs.len());
            sup.note_evaluations(seed_idxs.len());
            for (i, (&idx, entry)) in seed_idxs.iter().zip(seeded).enumerate() {
                let entry = match entry {
                    Ok(outcome) => outcome,
                    Err(detail) => {
                        sup.quarantine("seed", 0, i as u64, seed, detail);
                        continue;
                    }
                };
                let Ok((schedule, predicted, report)) = entry else {
                    sim_failures += 1;
                    continue;
                };
                evaluations.push((predicted, report.cycles));
                let e = best_per_mapping.entry(idx).or_insert(f64::INFINITY);
                *e = e.min(report.cycles);
                let better = best
                    .as_ref()
                    .map(|(_, _, b)| report.cycles < b.cycles)
                    .unwrap_or(true);
                if better {
                    best = Some((idx, schedule, report));
                }
            }
            truncated = sup.check();
        }

        // ---- warm-start donor -----------------------------------------------
        // Resolve the donor before any parallel phase starts: adaptation is a
        // pure function of (donor, context), so the seeded population is
        // deterministic for a fixed cache state at any thread count. A donor
        // whose mapping is not in this unit's enumeration, or whose schedule
        // cannot be re-validated on the new extents, is dropped and the
        // affected slots fall back to the naive random init.
        let mut warm_stats = WarmStartStats::default();
        let warm_slots = self.config.survivors.min(self.config.population);
        let mut warm_seed: Option<(usize, Schedule)> = None;
        let mut warm_fallback = false;
        if let Some(w) = warm {
            // Units of a heterogeneous accelerator only accept donors tuned
            // for their own intrinsic.
            if w.intrinsic == accel.intrinsic.name {
                warm_stats.donors = 1;
                warm_seed = mappings.iter().position(|m| *m == w.mapping).and_then(|i| {
                    let mut s = w.schedule.clone();
                    adapt_schedule_to(&ctxs[i], &mut s).then_some((i, s))
                });
                warm_fallback = warm_seed.is_none();
            }
        }

        // ---- initial population --------------------------------------------
        // Phase A: one RNG stream per slot, workers *sample* into reusable
        // `Schedule` buffers in a flat arena and return only plain metadata —
        // so the population is the same set for any thread count. The first
        // `warm_slots` slots clone the adapted donor instead (slot 0
        // verbatim, the rest with one mutation from the slot's own stream).
        // Phase B then screens every sampled slot through the batched model
        // ([`screen_sampled`]), bit-identical to per-candidate
        // `predict_with`.
        let mut arena = PopulationArena::new();
        arena.ensure_slots(self.config.population);
        let mut scratch = ScreenScratch::default();
        let mut metas: Vec<(usize, f64, bool)> = Vec::new();
        if truncated.is_none() {
            if warm_seed.is_some() {
                warm_stats.seeded_slots = warm_slots;
            } else if warm_fallback {
                warm_stats.fallback_slots = warm_slots;
            }
            let screen_start = Instant::now();
            let raw = {
                let ctxs = &ctxs[..];
                let num_programs = programs.len();
                let warm_seed = warm_seed.as_ref();
                parallel_fill_map(
                    jobs,
                    &mut arena.schedules[..self.config.population],
                    |slot, sched| {
                        match amos_sim::isolate::run_isolated(
                            || -> Result<(usize, bool), SimError> {
                                self.injected_fault("screen", seed, 0, slot as u64)?;
                                let mut rng = stream_rng(seed, 0, slot as u64);
                                if let Some((widx, wsched)) = warm_seed {
                                    if slot < warm_slots {
                                        sched.clone_from(wsched);
                                        if slot > 0 {
                                            mutate_schedule_ctx(&ctxs[*widx], sched, &mut rng);
                                        }
                                        return Ok((*widx, true));
                                    }
                                }
                                let mapping_idx = rng.gen_range(0..num_programs);
                                random_schedule_into(&ctxs[mapping_idx], sched, &mut rng, true);
                                Ok((mapping_idx, true))
                            },
                        ) {
                            Ok(Ok(meta)) => (meta, None),
                            // An injected `SimError` concedes the slot.
                            Ok(Err(_)) => ((0, false), None),
                            Err(detail) => ((0, false), Some(detail)),
                        }
                    },
                )
            };
            let sampled = drain_quarantined(raw, "screen", 0, seed, sup);
            screen_sampled(
                &ctxs,
                &arena.schedules,
                0,
                &sampled,
                &screened,
                &mut scratch,
                &mut metas,
            );
            sup.note_evaluations(self.config.population);
            arena.compact_accepted(0, &metas);
            screen_seconds += screen_start.elapsed().as_secs_f64();
        }

        let mut generations_completed = 0usize;
        for generation in 0..self.config.generations {
            if truncated.is_none() {
                truncated = sup.check();
            }
            if truncated.is_some() {
                break;
            }
            // Stable sort: ties keep slot order, which is deterministic.
            arena.sort_live_by_predicted();

            // Measure the most promising unmeasured candidates on the ground
            // truth, concurrently; the reduction walks them in rank order so
            // `best` ties resolve identically for every job count.
            let mut batch: HashSet<(usize, Schedule)> = HashSet::new();
            let mut chosen: Vec<usize> = Vec::new();
            for rank in 0..arena.live.min(self.config.measure_top) {
                let key = (arena.mapping_idx[rank], arena.schedules[rank].clone());
                if measured.contains_key(&key) || !batch.insert(key) {
                    measured_memo_hits += 1;
                    continue;
                }
                chosen.push(rank);
            }
            let reports = {
                let arena = &arena;
                parallel_map(jobs, chosen.len(), |i| {
                    let rank = chosen[i];
                    amos_sim::isolate::run_isolated(|| {
                        self.injected_fault("measure", seed, generation as u64, rank as u64)?;
                        simulate(
                            &programs[arena.mapping_idx[rank]],
                            &arena.schedules[rank],
                            accel,
                        )
                    })
                })
            };
            sup.note_measurements(chosen.len());
            for (&rank, outcome) in chosen.iter().zip(reports) {
                let key = (arena.mapping_idx[rank], arena.schedules[rank].clone());
                let outcome = match outcome {
                    Ok(outcome) => outcome,
                    Err(detail) => {
                        // Quarantined (not a sim failure): poison the
                        // candidate so it is never re-measured, and log it.
                        sup.quarantine("measure", generation as u64, rank as u64, seed, detail);
                        measured.insert(key, f64::INFINITY);
                        continue;
                    }
                };
                match outcome {
                    Ok(report) => {
                        evaluations.push((arena.predicted[rank], report.cycles));
                        measured.insert(key, report.cycles);
                        let e = best_per_mapping
                            .entry(arena.mapping_idx[rank])
                            .or_insert(f64::INFINITY);
                        *e = e.min(report.cycles);
                        let better = best
                            .as_ref()
                            .map(|(_, _, b)| report.cycles < b.cycles)
                            .unwrap_or(true);
                        if better {
                            best = Some((
                                arena.mapping_idx[rank],
                                arena.schedules[rank].clone(),
                                report,
                            ));
                        }
                    }
                    Err(_) => {
                        // Infeasible on hardware; poison its predicted score.
                        sim_failures += 1;
                        measured.insert(key, f64::INFINITY);
                    }
                }
            }

            // Selection + mutation. Survivors keep their slots *and* their
            // predictions (the cross-generation memo: they are never
            // re-screened); children are bred into the tail slots in
            // parallel, each on its own (seed, generation, slot) stream.
            arena.live = arena.live.min(self.config.survivors.max(1));
            if arena.live == 0 {
                generations_completed = generation + 1;
                continue;
            }
            if generation + 1 < self.config.generations {
                survivor_memo_hits += arena.live;
            }
            let survivors = arena.live;
            let wanted = self.config.population.saturating_sub(survivors);
            arena.ensure_slots(survivors + wanted);
            let screen_start = Instant::now();
            let raw = {
                let (parents, rest) = arena.schedules.split_at_mut(survivors);
                let parents: &[Schedule] = parents;
                let child_slots = &mut rest[..wanted];
                let parent_maps = &arena.mapping_idx[..survivors];
                let ctxs = &ctxs[..];
                let num_programs = programs.len();
                parallel_fill_map(jobs, child_slots, |slot, sched| {
                    match amos_sim::isolate::run_isolated(|| -> Result<(usize, bool), SimError> {
                        self.injected_fault("breed", seed, generation as u64 + 1, slot as u64)?;
                        let mut rng = stream_rng(seed, generation as u64 + 1, slot as u64);
                        let p = rng.gen_range(0..parents.len());
                        let mut mapping_idx = parent_maps[p];
                        // Occasionally jump to a different mapping entirely.
                        if rng.gen_bool(0.2) {
                            mapping_idx = rng.gen_range(0..num_programs);
                        }
                        let ctx = &ctxs[mapping_idx];
                        if mapping_idx == parent_maps[p] {
                            sched.clone_from(&parents[p]);
                        } else {
                            random_schedule_into(ctx, sched, &mut rng, true);
                        }
                        mutate_schedule_ctx(ctx, sched, &mut rng);
                        Ok((mapping_idx, true))
                    }) {
                        Ok(Ok(meta)) => (meta, None),
                        Ok(Err(_)) => ((0, false), None),
                        Err(detail) => ((0, false), Some(detail)),
                    }
                })
            };
            let sampled = drain_quarantined(raw, "breed", generation as u64 + 1, seed, sup);
            screen_sampled(
                &ctxs,
                &arena.schedules,
                survivors,
                &sampled,
                &screened,
                &mut scratch,
                &mut metas,
            );
            sup.note_evaluations(wanted);
            arena.compact_accepted(survivors, &metas);
            screen_seconds += screen_start.elapsed().as_secs_f64();
            generations_completed = generation + 1;
        }

        // Guarantee at least one measured candidate: fall back to the
        // balanced schedule of the best-predicted mapping. On a truncated
        // run the sweep stops at the first mapping that simulates (bounded
        // work past the deadline, still deterministic in mapping order);
        // otherwise the full sweep runs and the best attempt wins.
        if best.is_none() {
            let fallback = |i: usize| {
                amos_sim::isolate::run_isolated(|| {
                    self.injected_fault("fallback", seed, 0, i as u64)?;
                    let schedule = Schedule::balanced(&programs[i], accel);
                    simulate(&programs[i], &schedule, accel).map(|report| {
                        screened.fetch_add(1, Ordering::Relaxed);
                        let predicted = predict_with(&ctxs[i], &schedule)
                            .map(|b| b.cycles)
                            .unwrap_or(report.cycles);
                        (schedule, predicted, report)
                    })
                })
            };
            let attempts: Vec<_> = if truncated.is_some() {
                let mut attempts = Vec::new();
                for i in 0..programs.len() {
                    let attempt = fallback(i);
                    let hit = matches!(attempt, Ok(Ok(_)));
                    attempts.push(attempt);
                    if hit {
                        break;
                    }
                }
                attempts
            } else {
                parallel_map(jobs, programs.len(), fallback)
            };
            sup.note_measurements(attempts.len());
            for (idx, entry) in attempts.into_iter().enumerate() {
                let entry = match entry {
                    Ok(outcome) => outcome,
                    Err(detail) => {
                        sup.quarantine("fallback", 0, idx as u64, seed, detail);
                        continue;
                    }
                };
                let Ok((schedule, predicted, report)) = entry else {
                    sim_failures += 1;
                    continue;
                };
                evaluations.push((predicted, report.cycles));
                let better = best
                    .as_ref()
                    .map(|(_, _, b)| report.cycles < b.cycles)
                    .unwrap_or(true);
                if better {
                    best = Some((idx, schedule, report));
                }
            }
        }

        let (mut idx, mut schedule, mut report) =
            best.ok_or(ExploreError::Sim(SimError::InvalidSchedule {
                detail: "no candidate could be simulated".into(),
            }))?;

        // ---- refinement phase ------------------------------------------------
        // The joint search spreads its budget across the whole mapping space
        // and may misrank mappings at shallow tuning depth. Shortlist the
        // three best-measured mappings and dedicate a full-depth pass to
        // each, so the eventual winner's schedule is tuned at least as
        // deeply as a frozen-mapping baseline would tune it. This keeps
        // AMOS's search a strict superset of the fixed-mapping ablations
        // (paper §7.6).
        let mut screening = ScreeningStats {
            screened: screened.load(Ordering::Relaxed),
            survivor_memo_hits,
            measured_memo_hits,
            screen_seconds,
        };

        if mappings.len() > 1 && truncated.is_none() {
            let mut shortlist: Vec<(usize, f64)> =
                best_per_mapping.iter().map(|(&i, &c)| (i, c)).collect();
            shortlist.sort_by(|a, b| a.1.total_cmp(&b.1));
            shortlist.truncate(3);
            for (round, (ridx, _)) in shortlist.into_iter().enumerate() {
                truncated = sup.check();
                if truncated.is_some() {
                    break;
                }
                // Re-enter the generation loop on a one-mapping slice: the
                // program (and its screening context) is reused as-is — no
                // re-lowering and no explorer/config clones per round. When
                // a shared cache is present the whole sub-run is memoised.
                let refine_seed = seed.wrapping_add(round as u64) ^ 0x9e3779b97f4a7c15;
                let run = || {
                    self.explore_programs(
                        def,
                        accel,
                        &mappings[ridx..=ridx],
                        &programs[ridx..=ridx],
                        refine_seed,
                        None,
                        sup,
                        None,
                    )
                };
                let refined = match cache {
                    Some(c) => c.refine_tagged(
                        &format!("refine:{round}:{ridx}:{refine_seed}"),
                        &self.config,
                        def,
                        accel,
                        run,
                    ),
                    None => run(),
                };
                if let Ok(refined) = refined {
                    evaluations.extend(refined.evaluations.iter().copied());
                    sim_failures += refined.sim_failures;
                    screening.absorb(&refined.screening);
                    generations_completed += refined.generations_completed;
                    // A sub-run that hit the shared budget mid-round carries
                    // the truncation status up.
                    if refined.completion.is_truncated() {
                        truncated = Some(match truncated {
                            Some(t) => t.merge(refined.completion),
                            None => refined.completion,
                        });
                    }
                    if refined.best_report.cycles < report.cycles {
                        schedule = refined.best_schedule;
                        report = refined.best_report;
                        idx = ridx;
                    }
                }
            }
        }

        Ok(ExplorationResult {
            best_mapping: mappings[idx].clone(),
            best_program: programs[idx].clone(),
            best_schedule: schedule,
            best_report: report,
            evaluations,
            num_mappings: mappings.len(),
            sim_failures,
            screening,
            warm_start: warm_stats,
            completion: truncated.unwrap_or(Completion::Finished),
            generations_completed,
            quarantine: QuarantineReport::default(),
        })
    }

    /// Consults the configured [`crate::faultplan::FaultPlan`] for the
    /// candidate identified by `(phase, seed, generation, slot)`: may panic
    /// (caught by the surrounding isolation boundary), sleep, or return an
    /// injected error. Compiled to a no-op without the `fault-injection`
    /// feature.
    #[cfg(feature = "fault-injection")]
    fn injected_fault(
        &self,
        phase: &'static str,
        seed: u64,
        generation: u64,
        slot: u64,
    ) -> Result<(), SimError> {
        use crate::faultplan::Fault;
        match self.config.faults.draw(phase, seed, generation, slot) {
            None => Ok(()),
            Some(Fault::Panic) => {
                panic!("injected fault: {phase} g{generation} s{slot}")
            }
            Some(Fault::SimError) => Err(SimError::InvalidSchedule {
                detail: format!("injected fault: {phase} g{generation} s{slot}"),
            }),
            Some(Fault::Delay) => {
                std::thread::sleep(Duration::from_micros(self.config.faults.delay_micros));
                Ok(())
            }
        }
    }

    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    fn injected_fault(
        &self,
        _phase: &'static str,
        _seed: u64,
        _generation: u64,
        _slot: u64,
    ) -> Result<(), SimError> {
        Ok(())
    }
}

/// Logs the quarantined slots of one screening batch into `sup` (in slot
/// order, on the reducing thread — deterministic) and strips the markers.
fn drain_quarantined<T>(
    raw: Vec<(T, Option<String>)>,
    phase: &'static str,
    generation: u64,
    seed: u64,
    sup: &Supervisor,
) -> Vec<T> {
    raw.into_iter()
        .enumerate()
        .map(|(slot, (meta, quarantined))| {
            if let Some(detail) = quarantined {
                sup.quarantine(phase, generation, slot as u64, seed, detail);
            }
            meta
        })
        .collect()
}

/// Reusable buffers for [`screen_sampled`]: the mapping-grouped slot order,
/// the batched integer tables and the per-chunk prediction outputs. One
/// instance lives across every generation of a run, so screening allocates
/// nothing after the first batch.
#[derive(Default)]
struct ScreenScratch {
    /// `(mapping_idx, slot)` pairs of the sampled slots, sorted so equal
    /// mappings are adjacent (chunks share one context).
    order: Vec<(usize, usize)>,
    tables: BatchTables,
    out: Vec<Result<PerfBreakdown, SimError>>,
}

/// Phase B of a screening batch. The phase-A workers only *sample* (drawing
/// exactly the RNG streams the former per-candidate path drew); this serial
/// pass then batch-predicts every sampled slot through
/// [`predict_batch_with`], grouped by mapping so each [`BATCH_LANES`]-wide
/// chunk shares one [`ScreeningContext`].
///
/// Sampled schedules are always structurally valid for their context (the
/// sampler resets to the context's axes; bred children clone a parent of the
/// same mapping), so every lane predicts successfully — a slot conceded by
/// an injected fault in phase A simply never reaches this pass, exactly like
/// the former inline `predict_with` loop. `metas` is rebuilt in slot order,
/// so [`PopulationArena::compact_accepted`] sees the same metadata for any
/// thread count.
#[allow(clippy::too_many_arguments)] // internal: mirrors the phase state
fn screen_sampled(
    ctxs: &[Arc<ScreeningContext>],
    schedules: &[Schedule],
    start: usize,
    sampled: &[(usize, bool)],
    screened: &AtomicUsize,
    scratch: &mut ScreenScratch,
    metas: &mut Vec<(usize, f64, bool)>,
) {
    metas.clear();
    metas.extend(sampled.iter().map(|&(m, _)| (m, f64::INFINITY, false)));
    scratch.order.clear();
    for (k, &(m, ok)) in sampled.iter().enumerate() {
        if ok {
            scratch.order.push((m, k));
        }
    }
    scratch.order.sort_unstable();
    let mut pos = 0;
    while pos < scratch.order.len() {
        let mapping = scratch.order[pos].0;
        let mut end = pos + 1;
        while end < scratch.order.len() && scratch.order[end].0 == mapping {
            end += 1;
        }
        let ctx = &ctxs[mapping];
        for group in scratch.order[pos..end].chunks(BATCH_LANES) {
            let mut lanes = [&schedules[start + group[0].1]; BATCH_LANES];
            for (j, &(_, k)) in group.iter().enumerate() {
                lanes[j] = &schedules[start + k];
            }
            scratch.out.clear();
            predict_batch_with(
                ctx,
                &lanes[..group.len()],
                &mut scratch.tables,
                &mut scratch.out,
            );
            screened.fetch_add(group.len(), Ordering::Relaxed);
            for (j, &(_, k)) in group.iter().enumerate() {
                if let Ok(b) = &scratch.out[j] {
                    metas[k].1 = b.cycles;
                    metas[k].2 = true;
                }
            }
        }
        pos = end;
    }
}

/// An independent RNG stream for candidate slot `slot` of `generation`.
///
/// SplitMix64-style finalisation over the mixed key; distinct
/// `(generation, slot)` pairs land in distinct streams because `slot` is
/// always far smaller than the odd multiplier applied to `generation`.
fn stream_rng(seed: u64, generation: u64, slot: u64) -> StdRng {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let key = mix(seed ^ 0x9e37_79b9_7f4a_7c15)
        .wrapping_add(generation.wrapping_mul(0xd134_2543_de82_ef95))
        .wrapping_add(slot);
    StdRng::seed_from_u64(mix(key))
}

/// Samples a random legal schedule for a program.
pub fn random_schedule(
    prog: &MappedProgram,
    accel: &AcceleratorSpec,
    rng: &mut impl Rng,
) -> Schedule {
    random_schedule_with(prog, accel, rng, true)
}

/// Samples a random legal schedule, optionally excluding split-K factors
/// (used by the split-K ablation bench).
pub fn random_schedule_with(
    prog: &MappedProgram,
    accel: &AcceleratorSpec,
    rng: &mut impl Rng,
    allow_split_k: bool,
) -> Schedule {
    let ctx = prog.screening_context(accel);
    let mut s = Schedule::empty();
    random_schedule_into(&ctx, &mut s, rng, allow_split_k);
    s
}

/// Samples a random legal schedule straight into `s`, reusing its buffers —
/// the allocation-free form of [`random_schedule_with`] the explorer's slot
/// workers use. Draw-for-draw identical to sampling from the program: the
/// context's axis-index tables are built in ascending axis order, matching
/// the filters the reference sampler builds on the fly.
pub fn random_schedule_into(
    ctx: &ScreeningContext,
    s: &mut Schedule,
    rng: &mut impl Rng,
    allow_split_k: bool,
) {
    let axes = &ctx.axes[..];
    s.reset_naive(axes.len());
    for (i, a) in axes.iter().enumerate() {
        match a.kind {
            AxisKind::TileSpatial(_) | AxisKind::OuterSpatial(_) => {
                s.grid[i] = random_pow2_at_most(a.extent, rng);
            }
            AxisKind::TileReduction(_) => {
                s.stage[i] = pick_124(rng).min(a.extent);
                if allow_split_k && rng.gen_bool(0.25) {
                    s.split_k[i] = random_pow2_at_most(a.extent.min(8), rng);
                }
            }
            AxisKind::OuterReduction(_) => {
                if allow_split_k && rng.gen_bool(0.1) {
                    s.split_k[i] = random_pow2_at_most(a.extent.min(8), rng);
                }
            }
        }
        if matches!(a.kind, AxisKind::TileSpatial(_)) {
            s.warp[i] = pick_124(rng);
            s.warp[i] = s.warp[i].min(s.subcore_chunk(axes, i)).max(1);
        }
    }
    // Sub-core split on one random spatial axis.
    if let Some(&i) = ctx.spatial_axes.choose(rng) {
        let chunk = s.block_chunk(axes, i);
        s.subcore[i] = random_pow2_at_most(ctx.subcores.min(chunk), rng);
    }
    s.double_buffer = rng.gen_bool(0.5);
    s.unroll = rng.gen_bool(0.5);
    s.vectorize = rng.gen_bool(0.5);
    repair_schedule_ctx(ctx, s);
}

/// Mutates one schedule gene in place, then repairs feasibility.
pub fn mutate_schedule(
    s: &mut Schedule,
    prog: &MappedProgram,
    accel: &AcceleratorSpec,
    rng: &mut impl Rng,
) {
    let ctx = prog.screening_context(accel);
    mutate_schedule_ctx(&ctx, s, rng);
}

/// [`mutate_schedule`] over precomputed axis-index tables: no per-call axis
/// filtering and no allocation. Draw-for-draw identical to the
/// program-based form.
pub fn mutate_schedule_ctx(ctx: &ScreeningContext, s: &mut Schedule, rng: &mut impl Rng) {
    let axes = &ctx.axes[..];
    let gene = rng.gen_range(0..7);
    match gene {
        6 => {
            if let Some(&i) = ctx.nonspatial_axes.choose(rng) {
                s.split_k[i] = if rng.gen_bool(0.5) {
                    (s.split_k[i] * 2).min(axes[i].extent)
                } else {
                    (s.split_k[i] / 2).max(1)
                };
            }
        }
        0 => {
            // Grow or shrink a grid split.
            if let Some(&i) = ctx.spatial_axes.choose(rng) {
                s.grid[i] = if rng.gen_bool(0.5) {
                    (s.grid[i] * 2).min(axes[i].extent)
                } else {
                    (s.grid[i] / 2).max(1)
                };
            }
        }
        1 => {
            if let Some(&i) = ctx.tile_spatial_axes.choose(rng) {
                s.warp[i] = pick_124(rng);
            }
        }
        2 => {
            if let Some(&i) = ctx.tile_reduction_axes.choose(rng) {
                s.stage[i] = pick_124(rng).min(axes[i].extent);
            }
        }
        3 => s.double_buffer = !s.double_buffer,
        4 => s.unroll = !s.unroll,
        _ => s.vectorize = !s.vectorize,
    }
    repair_schedule_ctx(ctx, s);
}

/// Shrinks footprint-heavy genes until the schedule passes the context's
/// allocation-free feasibility check (agrees with `Schedule::validate` —
/// asserted by the sim crate's tests).
/// Adapts a donor schedule (tuned for a *similar* shape) to `ctx`'s axes:
/// every per-axis factor is clamped to the new extents, then the footprints
/// are repaired like any sampled candidate. Deterministic — a pure function
/// of `(donor, ctx)`. Returns `false` when the donor cannot be re-validated
/// (axis-structure mismatch, or infeasible even after repair), in which case
/// the caller falls back to naive initialisation.
fn adapt_schedule_to(ctx: &ScreeningContext, s: &mut Schedule) -> bool {
    let axes = &ctx.axes[..];
    let n = axes.len();
    if s.grid.len() != n
        || s.split_k.len() != n
        || s.subcore.len() != n
        || s.stage.len() != n
        || s.warp.len() != n
    {
        return false;
    }
    for (i, a) in axes.iter().enumerate() {
        let ext = a.extent.max(1);
        s.grid[i] = s.grid[i].clamp(1, ext);
        if s.grid[i] * s.split_k[i] > ext {
            s.split_k[i] = (ext / s.grid[i]).max(1);
        }
        s.subcore[i] = s.subcore[i].clamp(1, ext);
        s.stage[i] = s.stage[i].max(1);
        s.warp[i] = s.warp[i].max(1);
    }
    repair_schedule_ctx(ctx, s);
    ctx.schedule_feasible(s)
}

fn repair_schedule_ctx(ctx: &ScreeningContext, s: &mut Schedule) {
    for _ in 0..16 {
        if ctx.schedule_feasible(s) {
            return;
        }
        let shrunk_split = s.split_k.iter().any(|&k| k > 1);
        for k in &mut s.split_k {
            *k = (*k / 2).max(1);
        }
        if shrunk_split {
            continue;
        }
        let shrunk_warp = s.warp.iter().any(|&w| w > 1);
        for w in &mut s.warp {
            *w = (*w / 2).max(1);
        }
        if !shrunk_warp {
            let shrunk_stage = s.stage.iter().any(|&x| x > 1);
            for x in &mut s.stage {
                *x = (*x / 2).max(1);
            }
            if !shrunk_stage {
                if s.double_buffer {
                    s.double_buffer = false;
                } else {
                    // Last resort: fall back to the naive schedule.
                    s.reset_naive(ctx.axes.len());
                    return;
                }
            }
        }
    }
}

/// Uniform draw from `{1, 2, 4}` — the warp/stage gene alphabet. Total (the
/// slice can never be empty, so no `expect` on a user-reachable path) and
/// draw-for-draw identical to `[1, 2, 4].choose(rng)`, which consumes one
/// `next_u64` and indexes modulo the length.
fn pick_124(rng: &mut impl Rng) -> i64 {
    [1i64, 2, 4][(rng.next_u64() as usize) % 3]
}

fn random_pow2_at_most(max: i64, rng: &mut impl Rng) -> i64 {
    if max <= 1 {
        return 1;
    }
    let max_exp = 63 - (max as u64).leading_zeros();
    1i64 << rng.gen_range(0..=max_exp)
}

// ---- model-quality metrics (Figure 5) --------------------------------------

/// Pairwise ranking accuracy between predicted and measured scores: the
/// fraction of candidate pairs the model orders the same way the ground truth
/// does (1.0 = perfect ranking).
pub fn pairwise_accuracy(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let dp = pairs[i].0 - pairs[j].0;
            let dm = pairs[i].1 - pairs[j].1;
            if dm == 0.0 {
                continue;
            }
            total += 1;
            if dp == 0.0 || (dp > 0.0) == (dm > 0.0) {
                agree += if dp == 0.0 { 0 } else { 1 };
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

/// Recall of the measured top fraction within the predicted top fraction:
/// how many of the truly best `rate` of candidates the model also ranks in
/// its best `rate` (paper reports 91.4% at rate 0.4).
pub fn top_rate_recall(pairs: &[(f64, f64)], rate: f64) -> f64 {
    let n = pairs.len();
    if n == 0 {
        return 1.0;
    }
    let k = ((n as f64 * rate).ceil() as usize).clamp(1, n);
    let mut by_pred: Vec<usize> = (0..n).collect();
    by_pred.sort_by(|&a, &b| pairs[a].0.total_cmp(&pairs[b].0));
    let mut by_meas: Vec<usize> = (0..n).collect();
    by_meas.sort_by(|&a, &b| pairs[a].1.total_cmp(&pairs[b].1));
    let pred_top: std::collections::BTreeSet<usize> = by_pred[..k].iter().copied().collect();
    let hits = by_meas[..k].iter().filter(|i| pred_top.contains(i)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn conv2d_small() -> ComputeDef {
        let mut b = ComputeBuilder::new("c2d");
        let n = b.spatial("n", 8);
        let k = b.spatial("k", 64);
        let p = b.spatial("p", 14);
        let q = b.spatial("q", 14);
        let c = b.reduce("c", 64);
        let r = b.reduce("r", 3);
        let s = b.reduce("s", 3);
        let img = b.input("image", &[8, 64, 16, 16], DType::F16);
        let wt = b.input("weight", &[64, 64, 3, 3], DType::F16);
        let out = b.output("out", &[8, 64, 14, 14], DType::F32);
        b.mul_acc(
            out.at([n.ex(), k.ex(), p.ex(), q.ex()]),
            img.at([n.ex(), c.ex(), p.ex() + r.ex(), q.ex() + s.ex()]),
            wt.at([k.ex(), c.ex(), r.ex(), s.ex()]),
        );
        b.finish().unwrap()
    }

    #[test]
    fn adapt_schedule_to_clamps_or_rejects() {
        let def = conv2d_small();
        let accel = catalog::v100();
        let mapping = crate::generate::MappingGenerator::new()
            .enumerate(&def, &accel.intrinsic)
            .into_iter()
            .next()
            .unwrap();
        let prog = mapping.lower(&def, &accel.intrinsic).unwrap();
        let ctx = prog.screening_context(&accel);
        let mut rng = stream_rng(7, 0, 0);
        let mut s = Schedule::naive(&prog);
        random_schedule_into(&ctx, &mut s, &mut rng, true);

        // A donor from the same context adapts cleanly.
        let mut adapted = s.clone();
        assert!(adapt_schedule_to(&ctx, &mut adapted));
        assert!(ctx.schedule_feasible(&adapted));

        // Oversized donor factors are clamped back into the extents.
        let mut oversized = s.clone();
        for g in &mut oversized.grid {
            *g *= 1024;
        }
        assert!(adapt_schedule_to(&ctx, &mut oversized));
        assert!(ctx.schedule_feasible(&oversized));
        for (i, a) in ctx.axes.iter().enumerate() {
            assert!(oversized.grid[i] <= a.extent.max(1));
        }

        // An axis-count mismatch (donor from another operator class) is
        // rejected outright.
        let mut wrong = s.clone();
        wrong.grid.pop();
        assert!(!adapt_schedule_to(&ctx, &mut wrong));
    }

    #[test]
    fn explorer_finds_a_mapping_and_beats_naive() {
        let def = conv2d_small();
        let accel = catalog::v100();
        let explorer = Explorer::with_config(ExplorerConfig {
            population: 16,
            generations: 4,
            survivors: 4,
            measure_top: 3,
            seed: 7,
            jobs: 2,
            ..Default::default()
        });
        let result = explorer.explore(&def, &accel).unwrap();
        assert_eq!(result.num_mappings, 35);
        assert!(!result.evaluations.is_empty());

        // The winner must beat the naive schedule of its own mapping.
        let naive = Schedule::naive(&result.best_program);
        let naive_cycles = simulate(&result.best_program, &naive, &accel)
            .unwrap()
            .cycles;
        assert!(result.cycles() <= naive_cycles);
    }

    #[test]
    fn exploration_is_deterministic_per_seed() {
        let def = conv2d_small();
        let accel = catalog::v100();
        let e = Explorer::with_config(ExplorerConfig {
            population: 8,
            generations: 2,
            survivors: 3,
            measure_top: 2,
            seed: 99,
            jobs: 1,
            ..Default::default()
        });
        let a = e.explore(&def, &accel).unwrap();
        let b = e.explore(&def, &accel).unwrap();
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn heterogeneous_accelerator_picks_the_better_unit() {
        use amos_hw::catalog;
        let npu = catalog::ascend_npu();
        let explorer = Explorer::with_config(ExplorerConfig {
            population: 12,
            generations: 3,
            survivors: 4,
            measure_top: 3,
            seed: 77,
            jobs: 2,
            ..Default::default()
        });

        // A large square GEMM belongs on the cube unit.
        let gemm = {
            let mut b = ComputeBuilder::new("gemm");
            let i = b.spatial("i", 1024);
            let j = b.spatial("j", 1024);
            let k = b.reduce("k", 1024);
            let a = b.input("a", &[1024, 1024], DType::F16);
            let w = b.input("b", &[1024, 1024], DType::F16);
            let c = b.output("c", &[1024, 1024], DType::F32);
            b.mul_acc(c.at([i, j]), a.at([i, k]), w.at([k, j]));
            b.finish().unwrap()
        };
        let r = explorer.explore_multi(&gemm, &npu).unwrap();
        assert_eq!(r.best_program.intrinsic().name, "cube_mma");

        // A matrix-vector product cannot fill the cube's second spatial
        // axis; the vector unit wins.
        let gemv = {
            let mut b = ComputeBuilder::new("gemv");
            let i = b.spatial("i", 4096);
            let k = b.reduce("k", 4096);
            let a = b.input("a", &[4096, 4096], DType::F16);
            let x = b.input("x", &[4096], DType::F16);
            let o = b.output("o", &[4096], DType::F32);
            b.mul_acc(o.at([i]), a.at([i, k]), x.at([k]));
            b.finish().unwrap()
        };
        let r = explorer.explore_multi(&gemv, &npu).unwrap();
        assert_eq!(r.best_program.intrinsic().name, "vec_mac");
    }

    #[test]
    fn explore_multi_errors_when_no_unit_maps() {
        use amos_hw::catalog;
        let mut b = ComputeBuilder::new("sum");
        let i = b.spatial("i", 4);
        let k = b.reduce("k", 4);
        let a = b.input("a", &[4, 4], DType::F32);
        let o = b.output("o", &[4], DType::F32);
        b.add_acc(o.at([i]), a.at([i, k]));
        let def = b.finish().unwrap();
        let e = Explorer::new();
        assert!(matches!(
            e.explore_multi(&def, &catalog::ascend_npu()),
            Err(ExploreError::NoValidMapping { .. })
        ));
    }

    #[test]
    fn no_mapping_is_an_error() {
        let mut b = ComputeBuilder::new("sum");
        let i = b.spatial("i", 4);
        let k = b.reduce("k", 4);
        let a = b.input("a", &[4, 4], DType::F32);
        let o = b.output("o", &[4], DType::F32);
        b.add_acc(o.at([i]), a.at([i, k]));
        let def = b.finish().unwrap();
        let e = Explorer::new();
        assert!(matches!(
            e.explore(&def, &catalog::v100()),
            Err(ExploreError::NoValidMapping { .. })
        ));
    }

    #[test]
    fn random_schedules_always_validate() {
        let def = conv2d_small();
        let accel = catalog::v100();
        let gen = MappingGenerator::new();
        let mapping = &gen.enumerate(&def, &accel.intrinsic)[0];
        let prog = mapping.lower(&def, &accel.intrinsic).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = random_schedule(&prog, &accel, &mut rng);
            s.validate(&prog, &accel).unwrap();
        }
    }

    #[test]
    fn mutation_keeps_schedules_valid() {
        let def = conv2d_small();
        let accel = catalog::v100();
        let gen = MappingGenerator::new();
        let mapping = &gen.enumerate(&def, &accel.intrinsic)[0];
        let prog = mapping.lower(&def, &accel.intrinsic).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = random_schedule(&prog, &accel, &mut rng);
        for _ in 0..100 {
            mutate_schedule(&mut s, &prog, &accel, &mut rng);
            s.validate(&prog, &accel).unwrap();
        }
    }

    #[test]
    fn pairwise_accuracy_extremes() {
        let perfect = vec![(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)];
        assert_eq!(pairwise_accuracy(&perfect), 1.0);
        let inverted = vec![(3.0, 10.0), (2.0, 20.0), (1.0, 30.0)];
        assert_eq!(pairwise_accuracy(&inverted), 0.0);
        assert_eq!(pairwise_accuracy(&[]), 1.0);
    }

    #[test]
    fn top_rate_recall_behaviour() {
        let pairs = vec![(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)];
        assert_eq!(top_rate_recall(&pairs, 0.5), 1.0);
        let scrambled = vec![(4.0, 1.0), (3.0, 2.0), (2.0, 3.0), (1.0, 4.0)];
        assert_eq!(top_rate_recall(&scrambled, 0.5), 0.0);
        assert_eq!(top_rate_recall(&[], 0.4), 1.0);
    }

    #[test]
    fn random_pow2_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = random_pow2_at_most(48, &mut rng);
            assert!((1..=48).contains(&v));
            assert_eq!(v.count_ones(), 1);
        }
        assert_eq!(random_pow2_at_most(1, &mut rng), 1);
    }
}

//! The unified AMOS error hierarchy.
//!
//! Every layer of the stack keeps its own precise error type ([`IrError`],
//! [`SimError`], [`ExploreError`]), but entry points — the [`crate::Engine`]
//! pipeline, the CLI, baselines — report failures as one [`AmosError`] that
//! wraps the layer error and carries *where* the failure happened: the
//! pipeline [`Stage`], the operator being compiled and the target
//! accelerator.

use crate::explore::ExploreError;
use amos_ir::IrError;
use amos_sim::SimError;
use std::fmt;

/// A named step of the Engine pipeline (`Analyzed → MappingSet → Lowered →
/// Explored → Artifact`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Binding an operator to an accelerator and decomposing it into
    /// per-intrinsic units.
    Analyze,
    /// Enumerating valid software–hardware mappings (§5.1).
    Generate,
    /// Lowering mappings to mapped programs (§6).
    Lower,
    /// The joint mapping × schedule search (§5.3).
    Explore,
    /// Emitting reports and code from the winner.
    Emit,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Analyze => "analyze",
            Stage::Generate => "generate",
            Stage::Lower => "lower",
            Stage::Explore => "explore",
            Stage::Emit => "emit",
        };
        write!(f, "{name}")
    }
}

/// The wrapped layer failure inside an [`AmosError`].
#[derive(Debug, Clone, PartialEq)]
pub enum AmosErrorKind {
    /// A tensor-IR failure (shape validation, interpretation).
    Ir(IrError),
    /// A simulator failure (malformed mapping, infeasible schedule).
    Sim(SimError),
    /// An exploration failure (no valid mapping, escaped sim error).
    Explore(ExploreError),
    /// A usage error (bad CLI arguments, unknown accelerator name).
    Usage(String),
    /// A filesystem failure on an operation the user explicitly requested
    /// (`amos cache stats|clear` on an unreadable directory). Background
    /// cache I/O never raises this — the two-tier cache degrades to cold
    /// misses silently.
    Io(String),
    /// An accelerator-file failure (parse/validation/derivation diagnostics
    /// with file and line context) from `--accel-dir` or the `amos accel`
    /// verbs. Boxed to keep `AmosError` small on the `Ok` path.
    Accel(Box<amos_hw::FileError>),
}

impl fmt::Display for AmosErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmosErrorKind::Ir(e) => write!(f, "{e}"),
            AmosErrorKind::Sim(e) => write!(f, "{e}"),
            AmosErrorKind::Explore(e) => write!(f, "{e}"),
            AmosErrorKind::Usage(msg) => write!(f, "{msg}"),
            AmosErrorKind::Io(msg) => write!(f, "{msg}"),
            AmosErrorKind::Accel(e) => write!(f, "{e}"),
        }
    }
}

/// One failure anywhere in the AMOS stack, with pipeline context.
#[derive(Debug, Clone, PartialEq)]
pub struct AmosError {
    /// The pipeline stage that failed, when known.
    pub stage: Option<Stage>,
    /// The operator (computation) being compiled, when known.
    pub operator: Option<String>,
    /// The target accelerator, when known.
    pub accelerator: Option<String>,
    /// The wrapped layer failure.
    pub kind: AmosErrorKind,
}

impl AmosError {
    /// A contextless error from a layer failure.
    pub fn new(kind: AmosErrorKind) -> Self {
        AmosError {
            stage: None,
            operator: None,
            accelerator: None,
            kind,
        }
    }

    /// A usage error (bad arguments, unknown names).
    pub fn usage(msg: impl Into<String>) -> Self {
        AmosError::new(AmosErrorKind::Usage(msg.into()))
    }

    /// A filesystem error on a user-requested cache operation.
    pub fn io(msg: impl Into<String>) -> Self {
        AmosError::new(AmosErrorKind::Io(msg.into()))
    }

    /// Attaches the pipeline stage.
    #[must_use]
    pub fn at_stage(mut self, stage: Stage) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Attaches the operator name.
    #[must_use]
    pub fn for_operator(mut self, operator: impl Into<String>) -> Self {
        self.operator = Some(operator.into());
        self
    }

    /// Attaches the accelerator name.
    #[must_use]
    pub fn on_accelerator(mut self, accelerator: impl Into<String>) -> Self {
        self.accelerator = Some(accelerator.into());
        self
    }
}

impl fmt::Display for AmosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(stage) = self.stage {
            write!(f, "[{stage}] ")?;
        }
        if let Some(op) = &self.operator {
            write!(f, "operator `{op}`")?;
            if let Some(acc) = &self.accelerator {
                write!(f, " on `{acc}`")?;
            }
            write!(f, ": ")?;
        } else if let Some(acc) = &self.accelerator {
            write!(f, "accelerator `{acc}`: ")?;
        }
        write!(f, "{}", self.kind)
    }
}

impl std::error::Error for AmosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            AmosErrorKind::Ir(e) => Some(e),
            AmosErrorKind::Sim(e) => Some(e),
            AmosErrorKind::Explore(e) => Some(e),
            AmosErrorKind::Accel(e) => Some(e.as_ref()),
            AmosErrorKind::Usage(_) | AmosErrorKind::Io(_) => None,
        }
    }
}

impl From<amos_hw::FileError> for AmosError {
    fn from(e: amos_hw::FileError) -> Self {
        AmosError::new(AmosErrorKind::Accel(Box::new(e)))
    }
}

impl From<IrError> for AmosError {
    fn from(e: IrError) -> Self {
        AmosError::new(AmosErrorKind::Ir(e))
    }
}

impl From<SimError> for AmosError {
    fn from(e: SimError) -> Self {
        AmosError::new(AmosErrorKind::Sim(e))
    }
}

impl From<ExploreError> for AmosError {
    fn from(e: ExploreError) -> Self {
        AmosError::new(AmosErrorKind::Explore(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_full_context() {
        let e = AmosError::from(ExploreError::NoValidMapping {
            computation: "gemv".into(),
            intrinsic: "mma_sync".into(),
        })
        .at_stage(Stage::Explore)
        .for_operator("gemv")
        .on_accelerator("v100");
        let text = e.to_string();
        assert!(text.starts_with("[explore] "));
        assert!(text.contains("operator `gemv` on `v100`"));
        assert!(text.contains("no valid mapping"));
    }

    #[test]
    fn display_degrades_without_context() {
        let e = AmosError::usage("unknown flag --frob");
        assert_eq!(e.to_string(), "unknown flag --frob");
        let e = AmosError::usage("unknown accelerator").on_accelerator("z999");
        assert_eq!(e.to_string(), "accelerator `z999`: unknown accelerator");
    }

    #[test]
    fn source_exposes_the_layer_error() {
        use std::error::Error as _;
        let e = AmosError::from(IrError::UnknownIter { id: 3 });
        assert!(e.source().is_some());
        assert!(AmosError::usage("x").source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AmosError>();
    }
}

//! Memory mapping: the base-address and stride assignment of paper Def 4.3,
//! in both its *virtual* (Fig 3 e/f) and *physical* (Fig 3 g/h) forms.
//!
//! The virtual mapping assumes the whole reformed operand matrices live in
//! registers: base addresses are zero and strides come from the full fused
//! shapes. The physical mapping tiles each operand by the intrinsic problem
//! size: the software iterations *not* consumed by the `mod` restriction
//! locate the tile (`(fused / P) * group_stride`), and strides shrink to the
//! fragment row length.

use amos_hw::OperandRef;
use amos_sim::MappedProgram;

/// Address assignment for one operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandAddress {
    /// Operand display name (`Src1`, `Dst`, ...).
    pub operand: String,
    /// Software tensor name backing the operand.
    pub tensor: String,
    /// Rendered base-address expression over software iterations.
    pub base: String,
    /// Stride per operand dimension (innermost stride omitted; it is 1).
    pub strides: Vec<i64>,
}

/// The full memory mapping of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMapping {
    /// One entry per intrinsic operand, sources first.
    pub operands: Vec<OperandAddress>,
}

impl std::fmt::Display for MemoryMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for o in &self.operands {
            writeln!(
                f,
                "addr({}/{}) <- {} ; strides {:?}",
                o.operand, o.tensor, o.base, o.strides
            )?;
        }
        Ok(())
    }
}

/// Renders the fused index expression of a group, e.g. `n * 4 + p * 2 + q`.
fn fused_expr(prog: &MappedProgram, t: usize) -> String {
    let g = &prog.groups()[t];
    if g.iters.is_empty() {
        return "0".to_string();
    }
    let extents = prog.group_extents(t);
    let mut terms = Vec::new();
    let mut stride = 1i64;
    for d in (0..g.iters.len()).rev() {
        let name = &prog.def().iter_var(g.iters[d]).name;
        if stride == 1 {
            terms.push(name.clone());
        } else {
            terms.push(format!("{name} * {stride}"));
        }
        stride *= extents[d];
    }
    terms.reverse();
    terms.join(" + ")
}

/// Intrinsic iterations used by an operand, in its dimension order (compound
/// dimensions contribute every participating iteration).
fn operand_iter_dims(prog: &MappedProgram, r: OperandRef) -> Vec<usize> {
    let mut out = Vec::new();
    for e in &prog.intrinsic().compute.operand(r).dims {
        for v in e.vars() {
            let t = v.index();
            if !out.contains(&t) {
                out.push(t);
            }
        }
    }
    out
}

fn tensor_name(prog: &MappedProgram, r: OperandRef) -> String {
    let def = prog.def();
    match r {
        OperandRef::Src(m) => {
            let access = &def.inputs()[prog.correspondence()[m]];
            def.tensor(access.tensor).name.clone()
        }
        OperandRef::Dst => def.tensor(def.output().tensor).name.clone(),
    }
}

/// The virtual memory mapping (paper Fig 3 f): the whole reformed operands
/// are register-resident, so bases are zero and strides come from the fused
/// shapes.
pub fn virtual_memory_mapping(prog: &MappedProgram) -> MemoryMapping {
    let intr = prog.intrinsic();
    let operands = intr
        .compute
        .operand_refs()
        .into_iter()
        .map(|r| {
            let dims = operand_iter_dims(prog, r);
            // Row-major strides over the fused extents; innermost omitted.
            let mut strides = Vec::new();
            for d in 0..dims.len().saturating_sub(1) {
                let inner: i64 = dims[d + 1..]
                    .iter()
                    .map(|&t| prog.fused_extent(t))
                    .product();
                strides.push(inner);
            }
            OperandAddress {
                operand: intr.compute.operand(r).name.clone(),
                tensor: tensor_name(prog, r),
                base: "0".to_string(),
                strides,
            }
        })
        .collect();
    MemoryMapping { operands }
}

/// The physical memory mapping (paper Fig 3 h): operands are tiled by the
/// intrinsic problem size; the tile index `(fused / P)` of each dimension is
/// scaled by its group stride (inner tile count x fragment elements), and
/// strides are fragment row lengths.
pub fn physical_memory_mapping(prog: &MappedProgram) -> MemoryMapping {
    let intr = prog.intrinsic();
    let problem = intr.compute.problem_size();
    let operands = intr
        .compute
        .operand_refs()
        .into_iter()
        .map(|r| {
            let dims = operand_iter_dims(prog, r);
            let frag_elems: i64 = dims.iter().map(|&t| problem[t]).product();
            // Group stride of dimension d: inner tile counts x fragment size.
            let mut terms = Vec::new();
            for (d, &t) in dims.iter().enumerate() {
                let inner_tiles: i64 = dims[d + 1..].iter().map(|&tt| prog.tiles(tt)).product();
                let group_stride = inner_tiles * frag_elems;
                let fused = fused_expr(prog, t);
                let p = problem[t];
                let tile = if prog.fused_extent(t) <= p {
                    // Single tile along this dimension: no contribution.
                    continue;
                } else if prog.groups()[t].iters.len() == 1 {
                    format!("{fused} / {p}")
                } else {
                    format!("({fused}) / {p}")
                };
                terms.push(format!("{tile} * {group_stride}"));
            }
            let base = if terms.is_empty() {
                "0".to_string()
            } else {
                terms.join(" + ")
            };
            // Fragment strides: row length of each non-innermost dimension.
            let mut strides = Vec::new();
            for d in 0..dims.len().saturating_sub(1) {
                let inner: i64 = dims[d + 1..].iter().map(|&t| problem[t]).product();
                strides.push(inner);
            }
            OperandAddress {
                operand: intr.compute.operand(r).name.clone(),
                tensor: tensor_name(prog, r),
                base,
                strides,
            }
        })
        .collect();
    MemoryMapping { operands }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};
    use amos_sim::FusedGroup;

    /// The paper's Figure 3 running example.
    fn fig3_program() -> MappedProgram {
        let mut b = ComputeBuilder::new("conv2d_fig3");
        let n = b.spatial("n", 1);
        let k = b.spatial("k", 4);
        let p = b.spatial("p", 2);
        let q = b.spatial("q", 2);
        let c = b.reduce("c", 1);
        let r = b.reduce("r", 3);
        let s = b.reduce("s", 3);
        let image = b.input("image", &[1, 1, 4, 4], DType::F32);
        let weight = b.input("weight", &[4, 1, 3, 3], DType::F32);
        let out = b.output("out", &[1, 4, 2, 2], DType::F32);
        b.mul_acc(
            out.at([n.ex(), k.ex(), p.ex(), q.ex()]),
            image.at([n.ex(), c.ex(), p.ex() + r.ex(), q.ex() + s.ex()]),
            weight.at([k.ex(), c.ex(), r.ex(), s.ex()]),
        );
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        MappedProgram::new(
            def,
            catalog::mini_mma_2x2x2(),
            vec![
                FusedGroup::of(vec![ids[0], ids[2], ids[3]]),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[4], ids[5], ids[6]]),
            ],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn virtual_mapping_matches_figure3f() {
        let mm = virtual_memory_mapping(&fig3_program());
        // stride_a <- 9, stride_b <- 4, stride_c <- 4; all bases zero.
        assert_eq!(mm.operands[0].base, "0");
        assert_eq!(mm.operands[0].strides, vec![9]);
        assert_eq!(mm.operands[1].strides, vec![4]);
        assert_eq!(mm.operands[2].strides, vec![4]);
        assert_eq!(mm.operands[0].tensor, "image");
        assert_eq!(mm.operands[2].tensor, "out");
    }

    #[test]
    fn physical_mapping_matches_figure3h() {
        let mm = physical_memory_mapping(&fig3_program());
        // addr_a <- (n*4 + p*2 + q)/2 * 20 + (c*9 + r*3 + s)/2 * 4
        assert_eq!(
            mm.operands[0].base,
            "(n * 4 + p * 2 + q) / 2 * 20 + (c * 9 + r * 3 + s) / 2 * 4"
        );
        // addr_b <- (c*9 + r*3 + s)/2 * 8 + k/2 * 4
        assert_eq!(
            mm.operands[1].base,
            "(c * 9 + r * 3 + s) / 2 * 8 + k / 2 * 4"
        );
        // addr_c <- (n*4 + p*2 + q)/2 * 8 + k/2 * 4
        assert_eq!(
            mm.operands[2].base,
            "(n * 4 + p * 2 + q) / 2 * 8 + k / 2 * 4"
        );
        // stride 2 everywhere (fragment row length).
        assert_eq!(mm.operands[0].strides, vec![2]);
        assert_eq!(mm.operands[1].strides, vec![2]);
        assert_eq!(mm.operands[2].strides, vec![2]);
    }

    #[test]
    fn broadcast_operand_has_scalar_addressing() {
        // VNNI's Src2 is a vector indexed by r1 only: its base address uses
        // just the reduction tile index and it has no row stride.
        let mut b = ComputeBuilder::new("matvec");
        let i = b.spatial("i", 32);
        let k = b.reduce("k", 12);
        let a = b.input("a", &[32, 12], DType::F16);
        let x = b.input("x", &[12], DType::F16);
        let o = b.output("o", &[32], DType::F32);
        b.mul_acc(o.at([i.ex()]), a.at([i.ex(), k.ex()]), x.at([k.ex()]));
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def,
            catalog::avx512_vnni(),
            vec![FusedGroup::of(vec![ids[0]]), FusedGroup::of(vec![ids[1]])],
            vec![0, 1],
        )
        .unwrap();
        let mm = physical_memory_mapping(&prog);
        // Src1 (matrix): tiles along both axes; stride = r1 problem size.
        assert_eq!(mm.operands[0].base, "i / 16 * 192 + k / 4 * 64");
        assert_eq!(mm.operands[0].strides, vec![4]);
        // Src2 (vector): only the reduction tile locates it; no strides.
        assert_eq!(mm.operands[1].base, "k / 4 * 4");
        assert!(mm.operands[1].strides.is_empty());
        // Dst: lanes only.
        assert_eq!(mm.operands[2].base, "i / 16 * 16");
    }

    #[test]
    fn single_tile_axes_contribute_no_base_terms() {
        // Extents below the problem size: one tile everywhere, base 0.
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", 2);
        let j = b.spatial("j", 2);
        let k = b.reduce("k", 2);
        let a = b.input("a", &[2, 2], DType::F16);
        let w = b.input("b", &[2, 2], DType::F16);
        let c = b.output("c", &[2, 2], DType::F32);
        b.mul_acc(
            c.at([i.ex(), j.ex()]),
            a.at([i.ex(), k.ex()]),
            w.at([k.ex(), j.ex()]),
        );
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        let prog = MappedProgram::new(
            def,
            catalog::wmma_16x16x16(),
            vec![
                FusedGroup::of(vec![ids[0]]),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[2]]),
            ],
            vec![0, 1],
        )
        .unwrap();
        let mm = physical_memory_mapping(&prog);
        for op in &mm.operands {
            assert_eq!(op.base, "0", "{} should not move", op.operand);
        }
    }

    #[test]
    fn display_renders_all_operands() {
        let text = physical_memory_mapping(&fig3_program()).to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("Src1/image"));
        assert!(text.contains("Dst/out"));
    }
}

//! Software–hardware mappings (paper Def 4.3).
//!
//! A compute mapping assigns every mapped software iteration to an intrinsic
//! iteration (as an ordered fused group); the operand correspondence ties
//! software tensors to intrinsic operand slots. Lowering a mapping yields a
//! [`MappedProgram`] for the simulator.

use amos_hw::Intrinsic;
use amos_ir::{BinMatrix, ComputeDef, IterId};
use amos_sim::{FusedGroup, MappedProgram, SimError};

/// A compute mapping: per intrinsic iteration, the ordered group of software
/// iterations fused into it, plus the operand correspondence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// One fused group per intrinsic iteration (same order as the intrinsic's
    /// iteration list). Empty groups pad the axis to extent 1.
    pub groups: Vec<FusedGroup>,
    /// `correspondence[m]` is the index of the software input access feeding
    /// intrinsic source slot `m`.
    pub correspondence: Vec<usize>,
}

impl Mapping {
    /// The iteration matching matrix `Y` (paper Fig 4): rows are intrinsic
    /// iterations, columns are *all* software iterations in declaration
    /// order; entry `(t, s)` is set when iteration `s` is fused into
    /// intrinsic iteration `t`.
    pub fn matching_matrix(&self, def: &ComputeDef) -> BinMatrix {
        let mut y = BinMatrix::zeros(self.groups.len(), def.iters().len());
        for (t, g) in self.groups.iter().enumerate() {
            for &s in &g.iters {
                y.set(t, s.index(), true);
            }
        }
        y
    }

    /// Software iterations covered by the mapping, in declaration order.
    pub fn mapped_iters(&self) -> Vec<IterId> {
        let mut ids: Vec<IterId> = self.groups.iter().flat_map(|g| g.iters.clone()).collect();
        ids.sort();
        ids
    }

    /// Number of software iterations fused into intrinsic axes.
    pub fn num_mapped(&self) -> usize {
        self.groups.iter().map(|g| g.iters.len()).sum()
    }

    /// Lowers the mapping into an executable [`MappedProgram`].
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::MalformedMapping`] for inconsistent groups or
    /// correspondences.
    pub fn lower(
        &self,
        def: &ComputeDef,
        intrinsic: &Intrinsic,
    ) -> Result<MappedProgram, SimError> {
        MappedProgram::new(
            def.clone(),
            intrinsic.clone(),
            self.groups.clone(),
            self.correspondence.clone(),
        )
    }

    /// Short human-readable form: iteration names per intrinsic axis.
    pub fn describe(&self, def: &ComputeDef, intrinsic: &Intrinsic) -> String {
        let parts: Vec<String> = intrinsic
            .compute
            .iters()
            .iter()
            .zip(&self.groups)
            .map(|(it, g)| {
                let names: Vec<&str> = g
                    .iters
                    .iter()
                    .map(|id| def.iter_var(*id).name.as_str())
                    .collect();
                format!("{} <- {{{}}}", it.name, names.join(", "))
            })
            .collect();
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn gemm() -> ComputeDef {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", 32);
        let j = b.spatial("j", 32);
        let k = b.reduce("k", 32);
        let a = b.input("a", &[32, 32], DType::F16);
        let w = b.input("b", &[32, 32], DType::F16);
        let c = b.output("c", &[32, 32], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, k]), w.at([k, j]));
        b.finish().unwrap()
    }

    #[test]
    fn matching_matrix_shape_and_content() {
        let def = gemm();
        let m = Mapping {
            groups: vec![
                FusedGroup::of(vec![IterId(0)]),
                FusedGroup::of(vec![IterId(1)]),
                FusedGroup::of(vec![IterId(2)]),
            ],
            correspondence: vec![0, 1],
        };
        let y = m.matching_matrix(&def);
        assert_eq!(y.rows(), 3);
        assert_eq!(y.cols(), 3);
        assert!(y[(0, 0)] && y[(1, 1)] && y[(2, 2)]);
        assert!(!y[(0, 1)]);
        assert_eq!(m.num_mapped(), 3);
        assert_eq!(m.mapped_iters(), vec![IterId(0), IterId(1), IterId(2)]);
    }

    #[test]
    fn lower_produces_program() {
        let def = gemm();
        let m = Mapping {
            groups: vec![
                FusedGroup::of(vec![IterId(0)]),
                FusedGroup::of(vec![IterId(1)]),
                FusedGroup::of(vec![IterId(2)]),
            ],
            correspondence: vec![0, 1],
        };
        let prog = m.lower(&def, &catalog::wmma_16x16x16()).unwrap();
        assert_eq!(prog.tiles(0), 2);
        assert_eq!(prog.total_calls(), 8);
    }

    #[test]
    fn describe_names_iterations() {
        let def = gemm();
        let m = Mapping {
            groups: vec![
                FusedGroup::of(vec![IterId(0)]),
                FusedGroup::empty(),
                FusedGroup::of(vec![IterId(2)]),
            ],
            correspondence: vec![0, 1],
        };
        let text = m.describe(&def, &catalog::wmma_16x16x16());
        assert_eq!(text, "i1 <- {i}, i2 <- {}, r1 <- {k}");
    }
}

//! Mapping generation (paper §5.1) — the exhaustive, fully automatic
//! enumeration of valid software–hardware mappings.
//!
//! The generator follows the paper's two-step flow. The *virtual* step is
//! signature matching: every software iteration's access signature (which
//! operands reference it) must equal the `Z` column of the intrinsic
//! iteration it fuses into — this is exactly what Algorithm 1 certifies, so
//! candidates are constructed per-column and the full matrix check runs as a
//! final belt-and-braces pass. The *physical* step (problem-size `mod`
//! restriction, tiling, padding) happens at lowering in [`Mapping::lower`].
//!
//! Beyond Algorithm 1, three generation rules shape the space (reverse
//! engineered from the paper's Table 6 counts; see DESIGN.md §5):
//!
//! 1. **Addressability** — an iteration occurring under floor-division or
//!    modulo in an access (or in a predicate) cannot be given base-plus-
//!    stride addresses by a memory intrinsic, unless it directly addresses an
//!    output axis; such iterations stay outer. This yields T2D = 7.
//! 2. **No singleton-window reduction groups** — a reduction axis must not be
//!    fed by a single window iteration (one participating in a compound index
//!    such as `p + r`). This yields C2D = 35, C3D = 180, C1D = 6.
//! 3. **Mandatory coverage** — an intrinsic axis with a non-empty candidate
//!    pool must receive at least one iteration; axes with no candidates are
//!    padded to extent 1 (GMV still maps with `i2` empty).
//!
//! Mappings that are mirror images under operand-slot permutation (swapping
//! `Src1`/`Src2` of a commutative multiply-add) are deduplicated.

use crate::mapping::Mapping;
use crate::validate::validate_mapping;
use amos_hw::Intrinsic;
use amos_ir::{ComputeDef, IterId, IterKind};
use amos_sim::FusedGroup;
use std::collections::BTreeSet;

/// Tunable generation rules.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingPolicy {
    /// Rule 2 above.
    pub forbid_singleton_window_reduction: bool,
    /// Rule 3 above.
    pub require_nonempty_axes: bool,
    /// Require fragment-layout coherence for compound intrinsic operand
    /// dimensions (window engines): iterations fused into a compound
    /// dimension must align with a software window expression.
    pub enforce_fragment_coherence: bool,
    /// Safety cap on the number of generated mappings.
    pub max_mappings: usize,
}

impl Default for MappingPolicy {
    fn default() -> Self {
        MappingPolicy {
            forbid_singleton_window_reduction: true,
            require_nonempty_axes: true,
            enforce_fragment_coherence: true,
            max_mappings: 100_000,
        }
    }
}

/// Enumerates valid software–hardware mappings for a computation on an
/// intrinsic.
#[derive(Debug, Clone, Default)]
pub struct MappingGenerator {
    policy: MappingPolicy,
}

impl MappingGenerator {
    /// Generator with the default (paper-matching) policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generator with a custom policy.
    pub fn with_policy(policy: MappingPolicy) -> Self {
        MappingGenerator { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> &MappingPolicy {
        &self.policy
    }

    /// Enumerates all valid mappings of `def` onto `intrinsic`,
    /// deduplicated up to operand-slot mirror symmetry, in a deterministic
    /// order.
    pub fn enumerate(&self, def: &ComputeDef, intrinsic: &Intrinsic) -> Vec<Mapping> {
        let num_inputs = def.inputs().len();
        if def.op() != intrinsic.compute.op() || num_inputs != intrinsic.compute.num_srcs() {
            return Vec::new();
        }
        let z = intrinsic.compute.access_matrix();
        let num_t = intrinsic.compute.iters().len();

        // Canonical key of each access for mirror deduplication: identical
        // accesses (same tensor, same indices) share a key.
        let access_keys: Vec<usize> = def
            .inputs()
            .iter()
            .map(|a| {
                def.inputs()
                    .iter()
                    .position(|b| b == a)
                    .expect("access equals itself")
            })
            .collect();

        let compound = def.compound_participants();
        let non_addressable: BTreeSet<IterId> = def
            .div_mod_participants()
            .into_iter()
            .chain(def.predicates().iter().flat_map(|e| e.vars().into_iter()))
            .filter(|&s| !def.anchored_in_output(s))
            .collect();

        let mut seen = BTreeSet::new();
        let mut out = Vec::new();

        for corr in permutations(num_inputs) {
            // Candidate intrinsic axes per software iteration.
            let candidates: Vec<Vec<usize>> = def
                .iter_ids()
                .map(|s| {
                    if non_addressable.contains(&s) {
                        return Vec::new();
                    }
                    let sig = def.iter_signature(s); // input-slot order + output
                    (0..num_t)
                        .filter(|&t| {
                            (0..z.rows()).all(|row| {
                                let soft = if row + 1 == z.rows() {
                                    sig[num_inputs] // output
                                } else {
                                    sig[corr[row]]
                                };
                                z[(row, t)] == soft
                            })
                        })
                        .collect()
                })
                .collect();

            // Axis pools: which iterations could feed each intrinsic axis.
            let mut pool_nonempty = vec![false; num_t];
            for cands in &candidates {
                for &t in cands {
                    pool_nonempty[t] = true;
                }
            }

            // Enumerate assignments: each iteration picks one candidate axis
            // or stays outer.
            let iters: Vec<IterId> = def.iter_ids().collect();
            let mut assignment: Vec<Option<usize>> = vec![None; iters.len()];
            self.assign(
                def,
                intrinsic,
                &corr,
                &candidates,
                &pool_nonempty,
                &compound,
                &access_keys,
                &iters,
                0,
                &mut assignment,
                &mut seen,
                &mut out,
            );
            if out.len() >= self.policy.max_mappings {
                break;
            }
        }
        out
    }

    /// Number of valid mappings (the quantity reported in paper Table 6).
    pub fn count(&self, def: &ComputeDef, intrinsic: &Intrinsic) -> usize {
        self.enumerate(def, intrinsic).len()
    }

    #[allow(clippy::too_many_arguments)]
    fn assign(
        &self,
        def: &ComputeDef,
        intrinsic: &Intrinsic,
        corr: &[usize],
        candidates: &[Vec<usize>],
        pool_nonempty: &[bool],
        compound: &BTreeSet<IterId>,
        access_keys: &[usize],
        iters: &[IterId],
        idx: usize,
        assignment: &mut Vec<Option<usize>>,
        seen: &mut BTreeSet<String>,
        out: &mut Vec<Mapping>,
    ) {
        if out.len() >= self.policy.max_mappings {
            return;
        }
        if idx == iters.len() {
            self.finish_assignment(
                def,
                intrinsic,
                corr,
                pool_nonempty,
                compound,
                access_keys,
                assignment,
                seen,
                out,
            );
            return;
        }
        // Option: stay outer.
        assignment[idx] = None;
        self.assign(
            def,
            intrinsic,
            corr,
            candidates,
            pool_nonempty,
            compound,
            access_keys,
            iters,
            idx + 1,
            assignment,
            seen,
            out,
        );
        for &t in &candidates[idx] {
            assignment[idx] = Some(t);
            self.assign(
                def,
                intrinsic,
                corr,
                candidates,
                pool_nonempty,
                compound,
                access_keys,
                iters,
                idx + 1,
                assignment,
                seen,
                out,
            );
        }
        assignment[idx] = None;
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_assignment(
        &self,
        def: &ComputeDef,
        intrinsic: &Intrinsic,
        corr: &[usize],
        pool_nonempty: &[bool],
        compound: &BTreeSet<IterId>,
        access_keys: &[usize],
        assignment: &[Option<usize>],
        seen: &mut BTreeSet<String>,
        out: &mut Vec<Mapping>,
    ) {
        let num_t = intrinsic.compute.iters().len();
        // Axes participating in a compound operand dimension are window axes
        // of the intrinsic itself; rule 2 does not apply to them (mapping a
        // software window iteration alone onto a hardware window axis is the
        // intended use of a convolution engine).
        let compound_axis: Vec<bool> = (0..num_t)
            .map(|t| {
                intrinsic.compute.operand_refs().into_iter().any(|r| {
                    intrinsic
                        .compute
                        .operand(r)
                        .dims
                        .iter()
                        .any(|e| e.uses(IterId(t as u32)) && e.vars().len() >= 2)
                })
            })
            .collect();
        let mut groups: Vec<FusedGroup> = vec![FusedGroup::empty(); num_t];
        let mut any = false;
        for (s, a) in assignment.iter().enumerate() {
            if let Some(t) = a {
                groups[*t].iters.push(IterId(s as u32));
                any = true;
            }
        }
        if !any {
            return;
        }
        for (t, g) in groups.iter().enumerate() {
            let kind = intrinsic.compute.iters()[t].kind;
            if self.policy.require_nonempty_axes && pool_nonempty[t] && g.iters.is_empty() {
                return;
            }
            if self.policy.forbid_singleton_window_reduction
                && kind == IterKind::Reduction
                && !compound_axis[t]
                && g.iters.len() == 1
                && compound.contains(&g.iters[0])
            {
                return;
            }
        }
        let mapping = Mapping {
            groups,
            correspondence: corr.to_vec(),
        };
        if !validate_mapping(def, intrinsic, &mapping) {
            return;
        }
        if self.policy.enforce_fragment_coherence && !fragment_coherent(def, intrinsic, &mapping) {
            return;
        }
        let key = canonical_key(def, intrinsic, &mapping, access_keys);
        if seen.insert(key) {
            out.push(mapping);
        }
    }
}

/// Checks that iterations fused into *compound* intrinsic operand dimensions
/// (e.g. the `i2 + r2` line buffer of a convolution engine) line up with a
/// software window expression: each such axis carries at most one software
/// iteration, and the corresponding software access contains an index whose
/// coefficients over those iterations match the intrinsic dimension's
/// coefficients.
pub fn fragment_coherent(def: &ComputeDef, intrinsic: &Intrinsic, mapping: &Mapping) -> bool {
    let num_t = intrinsic.compute.iters().len();
    for (m, spec) in intrinsic.compute.srcs().iter().enumerate() {
        let access = &def.inputs()[mapping.correspondence[m]];
        for dim in &spec.dims {
            let (gamma, _) = dim
                .affine_coefficients(num_t)
                .expect("intrinsic dims are affine");
            let vars: Vec<usize> = (0..num_t).filter(|&t| gamma[t] != 0).collect();
            if vars.len() < 2 {
                continue; // single-iteration dimension: always coherent
            }
            // Each participating axis must carry at most one iteration.
            for &t in &vars {
                if mapping.groups[t].iters.len() > 1 {
                    return false;
                }
            }
            let mapped: Vec<(usize, IterId)> = vars
                .iter()
                .filter_map(|&t| mapping.groups[t].iters.first().map(|&s| (t, s)))
                .collect();
            if mapped.len() < 2 {
                continue; // at most one live axis: degenerates to single-var
            }
            // The software access must contain an index expression matching
            // the intrinsic coefficients on exactly these iterations.
            let found = access.indices.iter().any(|e| {
                let Some((alpha, _)) = e.affine_coefficients(def.iters().len()) else {
                    return false;
                };
                mapped
                    .iter()
                    .all(|&(t, s)| alpha[s.index()] == gamma[t])
                    // No other *mapped* iteration may share the expression.
                    && mapping
                        .mapped_iters()
                        .iter()
                        .all(|&other| {
                            mapped.iter().any(|&(_, s)| s == other)
                                || alpha[other.index()] == 0
                        })
            });
            if !found {
                return false;
            }
        }
    }
    true
}

/// Mirror-invariant canonical key of a mapping: for every intrinsic axis, the
/// software-side identity of the operands that use it (via the
/// correspondence) plus the fused group.
fn canonical_key(
    def: &ComputeDef,
    intrinsic: &Intrinsic,
    mapping: &Mapping,
    access_keys: &[usize],
) -> String {
    let z = intrinsic.compute.access_matrix();
    let num_t = intrinsic.compute.iters().len();
    let num_srcs = intrinsic.compute.num_srcs();
    let mut elems: Vec<String> = (0..num_t)
        .map(|t| {
            let mut ops: Vec<String> = Vec::new();
            for row in 0..z.rows() {
                if !z[(row, t)] {
                    continue;
                }
                let (id, compound) = if row < num_srcs {
                    let spec = &intrinsic.compute.srcs()[row];
                    let compound = spec
                        .dims
                        .iter()
                        .any(|e| e.uses(IterId(t as u32)) && e.vars().len() >= 2);
                    (access_keys[mapping.correspondence[row]], compound)
                } else {
                    let spec = intrinsic.compute.dst();
                    let compound = spec
                        .dims
                        .iter()
                        .any(|e| e.uses(IterId(t as u32)) && e.vars().len() >= 2);
                    (usize::MAX, compound)
                };
                ops.push(format!("{id}:{compound}"));
            }
            ops.sort();
            let group: Vec<String> = mapping.groups[t]
                .iters
                .iter()
                .map(|s| def.iter_var(*s).name.clone())
                .collect();
            format!("[{}]<-({})", ops.join(","), group.join(","))
        })
        .collect();
    elems.sort();
    elems.join(";")
}

/// All permutations of `0..n` in lexicographic order (identity first).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    permute(&mut items, 0, &mut out);
    out.sort();
    out
}

fn permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == items.len() {
        out.push(items.clone());
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, out);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};

    fn conv2d() -> ComputeDef {
        let mut b = ComputeBuilder::new("c2d");
        let n = b.spatial("n", 4);
        let k = b.spatial("k", 8);
        let p = b.spatial("p", 6);
        let q = b.spatial("q", 6);
        let c = b.reduce("c", 8);
        let r = b.reduce("r", 3);
        let s = b.reduce("s", 3);
        let img = b.input("image", &[4, 8, 8, 8], DType::F16);
        let wt = b.input("weight", &[8, 8, 3, 3], DType::F16);
        let out = b.output("out", &[4, 8, 6, 6], DType::F32);
        b.mul_acc(
            out.at([n.ex(), k.ex(), p.ex(), q.ex()]),
            img.at([n.ex(), c.ex(), p.ex() + r.ex(), q.ex() + s.ex()]),
            wt.at([k.ex(), c.ex(), r.ex(), s.ex()]),
        );
        b.finish().unwrap()
    }

    fn gemm() -> ComputeDef {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", 32);
        let j = b.spatial("j", 32);
        let k = b.reduce("k", 32);
        let a = b.input("a", &[32, 32], DType::F16);
        let w = b.input("b", &[32, 32], DType::F16);
        let c = b.output("c", &[32, 32], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, k]), w.at([k, j]));
        b.finish().unwrap()
    }

    fn gemv() -> ComputeDef {
        let mut b = ComputeBuilder::new("gemv");
        let i = b.spatial("i", 32);
        let k = b.reduce("k", 32);
        let a = b.input("a", &[32, 32], DType::F16);
        let x = b.input("x", &[32], DType::F16);
        let o = b.output("o", &[32], DType::F32);
        b.mul_acc(o.at([i]), a.at([i, k]), x.at([k]));
        b.finish().unwrap()
    }

    #[test]
    fn gemm_has_exactly_one_mapping_on_tensor_core() {
        let g = MappingGenerator::new();
        assert_eq!(g.count(&gemm(), &catalog::wmma_16x16x16()), 1);
    }

    #[test]
    fn gemv_has_exactly_one_mapping_on_tensor_core() {
        let g = MappingGenerator::new();
        let maps = g.enumerate(&gemv(), &catalog::wmma_16x16x16());
        assert_eq!(maps.len(), 1);
        // One intrinsic axis stays empty (padded).
        assert!(maps[0].groups.iter().any(|g| g.iters.is_empty()));
    }

    #[test]
    fn conv2d_has_35_mappings_on_tensor_core() {
        // The headline count of paper §5.2 / Table 6.
        let g = MappingGenerator::new();
        assert_eq!(g.count(&conv2d(), &catalog::wmma_16x16x16()), 35);
    }

    #[test]
    fn conv2d_mappings_are_all_algorithm1_valid() {
        let g = MappingGenerator::new();
        let def = conv2d();
        let intr = catalog::wmma_16x16x16();
        for m in g.enumerate(&def, &intr) {
            assert!(
                validate_mapping(&def, &intr, &m),
                "{}",
                m.describe(&def, &intr)
            );
        }
    }

    #[test]
    fn relaxing_window_rule_grows_the_space() {
        let policy = MappingPolicy {
            forbid_singleton_window_reduction: false,
            ..MappingPolicy::default()
        };
        let g = MappingGenerator::with_policy(policy);
        // 7 x 1 x 7 = 49 assignments without rule 2.
        assert_eq!(g.count(&conv2d(), &catalog::wmma_16x16x16()), 49);
    }

    #[test]
    fn op_mismatch_yields_no_mappings() {
        let mut b = ComputeBuilder::new("sum");
        let i = b.spatial("i", 4);
        let k = b.reduce("k", 4);
        let a = b.input("a", &[4, 4], DType::F32);
        let o = b.output("o", &[4], DType::F32);
        b.add_acc(o.at([i]), a.at([i, k]));
        let def = b.finish().unwrap();
        let g = MappingGenerator::new();
        assert_eq!(g.count(&def, &catalog::wmma_16x16x16()), 0);
    }

    #[test]
    fn permutations_enumerate_in_order() {
        assert_eq!(permutations(1), vec![vec![0]]);
        assert_eq!(permutations(2), vec![vec![0, 1], vec![1, 0]]);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(3)[0], vec![0, 1, 2]);
    }

    #[test]
    fn same_tensor_in_both_slots_deduplicates() {
        // A symmetric product out[i,j] += a[i,k] * a[k,j]: the operand-slot
        // swap produces a mirror mapping that must collapse to one.
        let mut b = ComputeBuilder::new("sym");
        let i = b.spatial("i", 16);
        let j = b.spatial("j", 16);
        let k = b.reduce("k", 16);
        let a = b.input("a", &[16, 16], DType::F16);
        let o = b.output("o", &[16, 16], DType::F32);
        let acc1 = a.at([i, k]);
        let acc2 = a.at([k, j]);
        b.mul_acc(o.at([i, j]), acc1, acc2);
        let def = b.finish().unwrap();
        let g = MappingGenerator::new();
        assert_eq!(g.count(&def, &catalog::wmma_16x16x16()), 1);
    }

    #[test]
    fn vnni_maps_conv2d_through_its_matrix_vector_form() {
        // Two mapping families exist on the matrix-vector unit: the image as
        // the per-lane matrix with the weight broadcast (i1 from {n,p,q}:
        // 7 x 5 reduction choices) and the transposed role with the output
        // channels in the lanes (i1 = {k}: 1 x 5).
        let g = MappingGenerator::new();
        assert_eq!(g.count(&conv2d(), &catalog::avx512_vnni()), 40);
    }

    #[test]
    fn conv_unit_requires_window_alignment() {
        // 1D conv on the window engine: out[a,x] += img[c, x+w] * wt[a,c,w].
        let mut b = ComputeBuilder::new("c1d");
        let a = b.spatial("a", 8);
        let x = b.spatial("x", 8);
        let c = b.reduce("c", 8);
        let w = b.reduce("w", 3);
        let img = b.input("img", &[8, 10], DType::F16);
        let wt = b.input("wt", &[8, 8, 3], DType::F16);
        let o = b.output("o", &[8, 8], DType::F32);
        b.mul_acc(
            o.at([a.ex(), x.ex()]),
            img.at([c.ex(), x.ex() + w.ex()]),
            wt.at([a.ex(), c.ex(), w.ex()]),
        );
        let def = b.finish().unwrap();
        let g = MappingGenerator::new();
        let maps = g.enumerate(&def, &catalog::conv_unit());
        assert!(!maps.is_empty(), "direct window mapping must exist");
        // Every surviving mapping respects fragment coherence.
        for m in &maps {
            assert!(fragment_coherent(&def, &catalog::conv_unit(), m));
        }
    }
}

//! A persistent, deterministic worker pool.
//!
//! The explorer's hot loop makes six-plus `parallel_map`/`parallel_fill_map`
//! calls per generation (lowering, heuristic seeds, population fill,
//! measurement, breeding, fallback). Spawning OS threads per call — the old
//! `std::thread::scope` implementation — pays thread creation plus two join
//! barriers hundreds of times per exploration, which is exactly the overhead
//! that kept whole-network parallel evaluation at ~1x. This module keeps one
//! process-wide pool instead: workers are spawned lazily once, parked on a
//! condvar between waves, and each `parallel_map` call becomes a *wave*
//! broadcast to the parked workers.
//!
//! ## Wave protocol
//!
//! A wave is submitted by the calling thread (waves serialize on a
//! submission lock; concurrent callers queue):
//!
//! 1. the caller resets the shared claim counter, publishes a type-erased
//!    `&dyn Fn(usize)` task pointer under the state lock, bumps the wave
//!    epoch and notifies the condvar;
//! 2. parked workers wake, take one of the wave's participation slots
//!    (`joiners_left`), copy the task descriptor and run the claim loop;
//!    workers beyond the wave's worker budget go back to sleep;
//! 3. the claim loop grabs **chunks** of indices with one `fetch_add` per
//!    chunk (not per index), bounding atomic contention on cheap tasks;
//! 4. the caller participates in the claim loop itself (a pool serving
//!    `jobs` threads spawns only `jobs - 1` workers), then cancels any
//!    participation slots no worker picked up in time and blocks until the
//!    joined workers drain (`active == 0`).
//!
//! The task pointer's lifetime is erased (`transmute` to `'static`), which
//! is sound because the submitting caller cannot return from
//! [`WorkerPool::run`] before every participant has left the claim loop.
//!
//! ## Determinism
//!
//! The pool executes every index exactly once (the claim counter hands out
//! each chunk to exactly one participant) and callers write results into
//! per-index slots, so results are in index order *by construction* — no
//! collection, no sorting, and bit-identical output for any worker count,
//! chunk size or scheduling interleaving. Chunked claiming does not change
//! which work runs, only how many `fetch_add`s it costs; the number of
//! *successful* chunk claims per wave is `ceil(n / chunk)` regardless of
//! scheduling, so even [`PoolStats::chunks`] is deterministic for a given
//! call sequence.
//!
//! ## Panics
//!
//! A panicking task sets the wave's stop flag (siblings stop claiming
//! promptly) and stores its payload; the caller re-raises the **original
//! payload** after the wave drains. Workers catch the panic at the claim
//! loop boundary, so the pool itself stays healthy: the next wave reuses
//! the same threads.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// `true` on pool worker threads and on a caller while it participates
    /// in a wave. Guards against nested wave submission (which would corrupt
    /// the in-flight wave's claim counter): nested `parallel_map` calls fall
    /// back to inline execution instead.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// `true` when the current thread is executing pool work (worker thread, or
/// caller mid-wave). Parallel entry points consult this to inline nested
/// parallelism instead of submitting a wave from inside a wave.
pub(crate) fn in_pool() -> bool {
    IN_POOL.with(|c| c.get())
}

/// Cumulative counters of the process-wide worker pool, snapshotted by
/// [`pool_stats`](crate::pool_stats) (all zero until the first wave).
///
/// `waves`, `tasks` and `chunks` are deterministic for a given call
/// sequence; `threads` is the high-water worker count (monotone — workers
/// are never torn down), which depends on the largest `jobs` the process
/// has used so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads spawned since process start (workers live forever, so
    /// this is also the current worker count).
    pub threads: usize,
    /// Waves submitted (one per pooled `parallel_map`/`parallel_fill_map`
    /// call; inline fallbacks do not count).
    pub waves: u64,
    /// Task indices executed across all waves.
    pub tasks: u64,
    /// Successful chunk claims across all waves (`fetch_add`s that yielded
    /// work) — `tasks / chunks` is the achieved mean chunk size.
    pub chunks: u64,
}

/// A type-erased wave task pointer. Only dereferenced between wave
/// submission and wave drain, during which the caller keeps the referent
/// alive on its stack.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer is only dereferenced by wave participants while the
// submitting thread blocks in `run`, which outlives every dereference; the
// pointee is `Sync`, so shared calls from several threads are sound.
unsafe impl Send for TaskPtr {}

/// The wave descriptor workers copy under the state lock.
#[derive(Clone, Copy)]
struct Wave {
    task: TaskPtr,
    n: usize,
    chunk: usize,
}

/// Condvar-protected pool state.
struct State {
    /// Bumped once per wave; workers detect new work by comparing against
    /// the last epoch they observed.
    epoch: u64,
    /// The current wave, present while `joiners_left > 0`.
    wave: Option<Wave>,
    /// Participation slots still open for the current wave. Workers take
    /// one each; the caller cancels the remainder once its own claim loop
    /// finishes (late sleepers then skip the wave entirely).
    joiners_left: usize,
    /// Participants (joined workers) that have not finished the wave yet.
    active: usize,
    /// Set by `Drop`: workers exit their loop.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<State>,
    /// Workers park here between waves.
    work_cv: Condvar,
    /// The caller parks here while joined workers drain.
    done_cv: Condvar,
    /// The claim counter of the current wave (chunk starts).
    next: AtomicUsize,
    /// Early-stop flag of the current wave (set on the first panic).
    stop: AtomicBool,
    /// First panic payload of the current wave.
    panicked: Mutex<Option<Box<dyn Any + Send>>>,
    threads: AtomicUsize,
    waves: AtomicU64,
    tasks: AtomicU64,
    chunks: AtomicU64,
}

/// Locks `m`, ignoring poison: pool bookkeeping never panics while holding
/// a lock, and the panic-payload slot *is* the panic handling.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl PoolShared {
    /// The shared claim loop, run by the caller and every joined worker.
    /// Panics are caught here and recorded as the wave's (first) payload.
    fn run_claim_loop(&self, task: &(dyn Fn(usize) + Sync), n: usize, chunk: usize) {
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let start = self.next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            self.chunks.fetch_add(1, Ordering::Relaxed);
            let end = (start + chunk).min(n);
            for i in start..end {
                if self.stop.load(Ordering::Relaxed) {
                    break;
                }
                task(i);
            }
        }));
        if let Err(payload) = outcome {
            self.stop.store(true, Ordering::Relaxed);
            let mut slot = lock_unpoisoned(&self.panicked);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

/// The worker thread body: park, join a wave, run the claim loop, repeat.
fn worker_loop(shared: Arc<PoolShared>) {
    IN_POOL.with(|c| c.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let wave = {
            let mut st = lock_unpoisoned(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if st.joiners_left > 0 {
                        st.joiners_left -= 1;
                        break st.wave.expect("wave present while joiners_left > 0");
                    }
                    // Fully subscribed (or already retired): skip this wave.
                    continue;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        // SAFETY: the submitting caller blocks in `run` until this
        // participant decrements `active`, so the task outlives this call.
        shared.run_claim_loop(unsafe { &*wave.task.0 }, wave.n, wave.chunk);
        let mut st = lock_unpoisoned(&shared.state);
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A persistent worker pool executing index-range waves. One process-wide
/// instance (see [`global`]) backs `parallel_map`/`parallel_fill_map`;
/// dedicated instances exist only in tests.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Serializes waves: one in flight at a time (per-wave atomics are
    /// shared state). Concurrent submitters queue here.
    submission: Mutex<()>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("stats", &self.stats())
            .finish()
    }
}

impl WorkerPool {
    /// An empty pool: no threads until the first wave needs them.
    pub(crate) fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(State {
                    epoch: 0,
                    wave: None,
                    joiners_left: 0,
                    active: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                next: AtomicUsize::new(0),
                stop: AtomicBool::new(false),
                panicked: Mutex::new(None),
                threads: AtomicUsize::new(0),
                waves: AtomicU64::new(0),
                tasks: AtomicU64::new(0),
                chunks: AtomicU64::new(0),
            }),
            submission: Mutex::new(()),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of the cumulative counters.
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.shared.threads.load(Ordering::Relaxed),
            waves: self.shared.waves.load(Ordering::Relaxed),
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            chunks: self.shared.chunks.load(Ordering::Relaxed),
        }
    }

    /// Grows the pool to at least `wanted` workers. Called with the
    /// submission lock held, so spawns never race.
    fn ensure_spawned(&self, wanted: usize) {
        let mut handles = lock_unpoisoned(&self.handles);
        while handles.len() < wanted {
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("amos-pool-{}", handles.len()))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
            handles.push(handle);
            self.shared.threads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs `task` for every index in `0..n` as one wave on up to `workers`
    /// threads (the caller plus `workers - 1` pool workers), claiming
    /// indices in chunks of `chunk`. Blocks until every participant has
    /// left the wave; re-raises the first panicking task's original payload.
    ///
    /// Every index is executed at most once, and — absent panics — exactly
    /// once; with the per-slot writes the parallel entry points perform,
    /// that makes results independent of scheduling.
    pub(crate) fn run(
        &self,
        workers: usize,
        n: usize,
        chunk: usize,
        task: &(dyn Fn(usize) + Sync),
    ) {
        debug_assert!(workers >= 2 && n >= 2 && chunk >= 1);
        let helpers = (workers - 1).min(n - 1);
        let guard = lock_unpoisoned(&self.submission);
        self.ensure_spawned(helpers);
        self.shared.next.store(0, Ordering::Relaxed);
        self.shared.stop.store(false, Ordering::Relaxed);
        *lock_unpoisoned(&self.shared.panicked) = None;
        // SAFETY (lifetime erasure): the pointer is dereferenced only by
        // wave participants, and this function does not return until all of
        // them are done — `task` outlives every dereference.
        let erased: TaskPtr = TaskPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task as *const (dyn Fn(usize) + Sync))
        });
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            st.epoch = st.epoch.wrapping_add(1);
            st.wave = Some(Wave {
                task: erased,
                n,
                chunk,
            });
            st.joiners_left = helpers;
            st.active = helpers;
            self.shared.work_cv.notify_all();
        }
        self.shared.waves.fetch_add(1, Ordering::Relaxed);
        self.shared.tasks.fetch_add(n as u64, Ordering::Relaxed);

        // The caller is a participant too.
        let was_in_pool = IN_POOL.with(|c| c.replace(true));
        self.shared.run_claim_loop(task, n, chunk);
        IN_POOL.with(|c| c.set(was_in_pool));

        // Retire the wave: cancel participation slots no worker picked up
        // (the work is already drained — they would claim nothing), then
        // wait for the joined workers.
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            st.active -= st.joiners_left;
            st.joiners_left = 0;
            st.wave = None;
            while st.active > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        drop(guard);
        if let Some(payload) = lock_unpoisoned(&self.shared.panicked).take() {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in lock_unpoisoned(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide pool behind `parallel_map`/`parallel_fill_map`,
/// created (empty) on first use. [`crate::Engine`] exposes its counters as
/// [`Engine::pool_stats`](crate::Engine::pool_stats).
pub(crate) fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(WorkerPool::new)
}

/// Snapshot of the process-wide pool's [`PoolStats`] (zeros before the
/// first pooled wave).
pub fn pool_stats() -> PoolStats {
    global().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn fill_squares(pool: &WorkerPool, workers: usize, n: usize, chunk: usize) -> Vec<usize> {
        let mut out = vec![0usize; n];
        {
            struct Slot(std::cell::UnsafeCell<usize>);
            unsafe impl Sync for Slot {}
            let cells: &[Slot] =
                unsafe { std::slice::from_raw_parts(out.as_mut_ptr().cast::<Slot>(), n) };
            let task = |i: usize| unsafe { *cells[i].0.get() = i * i };
            pool.run(workers, n, chunk, &task);
        }
        out
    }

    #[test]
    fn waves_execute_every_index_exactly_once() {
        let pool = WorkerPool::new();
        for (workers, n, chunk) in [(2, 2, 1), (4, 100, 1), (4, 100, 7), (8, 33, 64), (3, 10, 3)] {
            let out = fill_squares(&pool, workers, n, chunk);
            assert_eq!(
                out,
                (0..n).map(|i| i * i).collect::<Vec<_>>(),
                "workers={workers} n={n} chunk={chunk}"
            );
        }
    }

    #[test]
    fn threads_are_reused_across_waves() {
        let pool = WorkerPool::new();
        let _ = fill_squares(&pool, 4, 64, 4);
        let after_first = pool.stats();
        assert_eq!(after_first.threads, 3, "4-way wave = caller + 3 workers");
        assert_eq!(after_first.waves, 1);
        for _ in 0..10 {
            let _ = fill_squares(&pool, 4, 64, 4);
        }
        let after = pool.stats();
        assert_eq!(
            after.threads, after_first.threads,
            "further waves at the same width must not spawn"
        );
        assert_eq!(after.waves, 11);
        assert_eq!(after.tasks, 11 * 64);
    }

    #[test]
    fn pool_grows_to_the_widest_wave_only() {
        let pool = WorkerPool::new();
        let _ = fill_squares(&pool, 2, 16, 1);
        assert_eq!(pool.stats().threads, 1);
        let _ = fill_squares(&pool, 6, 16, 1);
        assert_eq!(pool.stats().threads, 5);
        let _ = fill_squares(&pool, 3, 16, 1);
        assert_eq!(
            pool.stats().threads,
            5,
            "narrow waves never shrink the pool"
        );
    }

    #[test]
    fn chunk_claims_are_deterministic() {
        let pool = WorkerPool::new();
        let before = pool.stats().chunks;
        let _ = fill_squares(&pool, 4, 100, 7);
        let after = pool.stats().chunks;
        assert_eq!(
            after - before,
            100u64.div_ceil(7),
            "successful chunk claims must equal ceil(n / chunk)"
        );
    }

    #[test]
    fn panicking_wave_leaves_the_pool_usable() {
        let pool = WorkerPool::new();
        let n = 64;
        let caught = amos_sim::isolate::quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                let task = |i: usize| {
                    if i == 7 {
                        panic!("boom {i}");
                    }
                };
                pool.run(4, n, 1, &task);
            }))
        });
        let payload = caught.expect_err("worker panic must propagate");
        assert_eq!(amos_sim::isolate::payload_text(payload.as_ref()), "boom 7");

        // The same threads serve the next wave.
        let threads = pool.stats().threads;
        let out = fill_squares(&pool, 4, n, 1);
        assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.stats().threads, threads);
    }

    #[test]
    fn concurrent_submitters_serialize_without_corruption() {
        let pool = std::sync::Arc::new(WorkerPool::new());
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = &pool;
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..20 {
                        let task = |_i: usize| {
                            total.fetch_add(1, Ordering::Relaxed);
                        };
                        pool.run(3, 32, 4, &task);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 20 * 32);
    }
}

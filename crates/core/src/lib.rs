//! # amos-core — automatic mapping of tensor computations onto spatial
//! accelerators
//!
//! The primary contribution of the AMOS paper (ISCA 2022), rebuilt in Rust:
//!
//! * [`Mapping`] — software–hardware mappings (Def 4.3) with matching
//!   matrices,
//! * [`validate`] — Algorithm 1 (binary-matrix mapping validation, §5.2),
//! * [`MappingGenerator`] — exhaustive valid-mapping enumeration (§5.1,
//!   Table 6),
//! * [`memory_map`] — virtual and physical memory mappings (Fig 3 e–h),
//! * [`perf_model`] — the hierarchical analytic performance model (§5.3),
//! * [`Explorer`] — the genetic (mapping × schedule) search combining model
//!   screening with ground-truth measurement (§5.3),
//! * [`codegen`] — lowering to the `Compute`/`Memory` IR of Table 4 (§6),
//! * [`Engine`] — the staged front door (`Analyzed → MappingSet → Lowered →
//!   Explored → Artifact`) that owns the caches and reports failures as one
//!   [`AmosError`] hierarchy.
//!
//! ## Quickstart
//!
//! ```
//! use amos_core::{Engine, ExplorerConfig};
//! use amos_hw::Registry;
//! use amos_ir::{ComputeBuilder, DType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // GEMM: out[i, j] += a[i, k] * b[k, j]
//! let mut b = ComputeBuilder::new("gemm");
//! let i = b.spatial("i", 256);
//! let j = b.spatial("j", 256);
//! let k = b.reduce("k", 256);
//! let a = b.input("a", &[256, 256], DType::F16);
//! let w = b.input("b", &[256, 256], DType::F16);
//! let c = b.output("c", &[256, 256], DType::F32);
//! b.mul_acc(c.at([i, j]), a.at([i, k]), w.at([k, j]));
//! let gemm = b.finish()?;
//!
//! // Targets come from the declarative registry by name.
//! let v100 = Registry::builtin().build("v100").expect("catalog accelerator");
//!
//! // One Engine owns the exploration budget and every cache; compilation
//! // is a typed pipeline of named stages.
//! let engine = Engine::with_config(ExplorerConfig {
//!     population: 8,
//!     generations: 2,
//!     survivors: 3,
//!     measure_top: 2,
//!     seed: 1,
//!     jobs: 1,
//!     ..ExplorerConfig::default()
//! });
//! let analyzed = engine.analyze(&gemm, &v100);
//! let mappings = engine.generate(analyzed)?;
//! // GEMM has exactly one valid mapping onto Tensor Core (paper Table 6).
//! assert_eq!(mappings.total_mappings(), 1);
//! let lowered = engine.lower(mappings)?;
//! let best = engine.explore(lowered)?;
//! assert!(best.cycles() > 0.0);
//!
//! // Emit the Table-5 report, Table-4 IR and CUDA-like source.
//! let artifact = engine.emit(&best);
//! assert!(!artifact.cuda.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod disk;
mod engine;
mod error;
mod explore;
#[cfg(feature = "fault-injection")]
pub mod faultplan;
mod generate;
mod mapping;
mod parallel;
mod pool;

pub mod codegen;
pub mod cuda_like;
pub mod memory_map;
pub mod perf_model;
pub mod report;
pub mod validate;

pub use cache::{fnv1a, shape_fingerprint, CacheStats};
pub use disk::{cache_dir_stats, cache_salt, clear_cache_dir, CacheConfig, DiskDirStats};
pub use engine::{load_registry, Analyzed, Artifact, Engine, Explored, Lowered, MappingSet};
pub use error::{AmosError, AmosErrorKind, Stage};
pub use explore::{
    mutate_schedule, mutate_schedule_ctx, pairwise_accuracy, random_schedule, random_schedule_into,
    random_schedule_with, top_rate_recall, Budget, CancelToken, Completion, ExplorationResult,
    ExploreError, Explorer, ExplorerConfig, QuarantineRecord, QuarantineReport, ScreeningStats,
    WarmStartStats,
};
pub use generate::{fragment_coherent, MappingGenerator, MappingPolicy};
pub use mapping::Mapping;
pub use parallel::{
    amos_jobs_override, default_jobs, parallel_fill_map, parallel_map, parse_jobs_value,
};
pub use pool::{pool_stats, PoolStats};
pub use report::MappingReport;

/// `true` when this build of `amos-core` was compiled with the
/// `fault-injection` feature (the deterministic fault harness). The feature
/// is off by default; CI asserts that release builds report `false`.
pub fn fault_injection_enabled() -> bool {
    cfg!(feature = "fault-injection")
}

//! Mapping validation — paper §5.2, Algorithm 1.
//!
//! A mapping is valid when the binary matching matrix `Y` transports the
//! intrinsic access relationship `Z` onto the software access relationship
//! `X` and back:
//!
//! ```text
//! Z ★ Y  = X      (software access relationship preserved)
//! X ★ Yᵀ = Z      (hardware access relationship preserved)
//! ```
//!
//! where ★ is the boolean matrix product. `X` is restricted to the *mapped*
//! software iterations, and every empty intrinsic axis is represented by a
//! synthetic unit iteration whose access column equals the axis's `Z`
//! column — after padding, that degenerate dimension genuinely exists in the
//! software loop nest.

use crate::mapping::Mapping;
use amos_hw::Intrinsic;
use amos_ir::{BinMatrix, ComputeDef};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`algorithm1`] invocations, for the per-run
/// validation-call counter surfaced by reports and benches.
static VALIDATION_CALLS: AtomicU64 = AtomicU64::new(0);

/// Number of [`algorithm1`] calls since process start (or the last
/// [`reset_validation_calls`]). Monotonic and thread-safe; exploration runs
/// read it before/after a search to report how many candidates validation
/// screened.
pub fn validation_calls() -> u64 {
    VALIDATION_CALLS.load(Ordering::Relaxed)
}

/// Resets the validation-call counter to zero (used by benches that measure
/// isolated runs).
pub fn reset_validation_calls() {
    VALIDATION_CALLS.store(0, Ordering::Relaxed);
}

/// Raw Algorithm 1 on explicit matrices.
///
/// ```
/// use amos_core::validate::algorithm1;
/// use amos_ir::BinMatrix;
///
/// // The paper's Figure 4 matrices: conv2d onto the mma intrinsic.
/// let x = BinMatrix::from_rows(&[
///     &[1, 0, 1, 1, 1, 1, 1], // image
///     &[0, 1, 0, 0, 1, 1, 1], // weight
///     &[1, 1, 1, 1, 0, 0, 0], // out
/// ]);
/// let y = BinMatrix::from_rows(&[
///     &[1, 0, 1, 1, 0, 0, 0], // i1 <- n, p, q
///     &[0, 1, 0, 0, 0, 0, 0], // i2 <- k
///     &[0, 0, 0, 0, 1, 1, 1], // r1 <- c, r, s
/// ]);
/// let z = BinMatrix::from_rows(&[&[1, 0, 1], &[0, 1, 1], &[1, 1, 0]]);
/// assert!(algorithm1(&x, &y, &z));
/// ```
///
/// * `x` — software access matrix (operand-slot rows, mapped-iteration cols),
/// * `y` — matching matrix (intrinsic-iteration rows, mapped-iteration cols),
/// * `z` — intrinsic access matrix (operand-slot rows, intrinsic-iter cols).
///
/// The fast path never materialises `Z ★ Y` or `Yᵀ`: both checks stream over
/// the packed `u64` rows of the bitset matrices with a single word
/// accumulator, so a validation call performs zero heap allocations.
pub fn algorithm1(x: &BinMatrix, y: &BinMatrix, z: &BinMatrix) -> bool {
    VALIDATION_CALLS.fetch_add(1, Ordering::Relaxed);
    if z.cols() != y.rows() || x.cols() != y.cols() || x.rows() != z.rows() {
        return false;
    }
    // Check 1: Z ★ Y = X, word by word. (Z ★ Y)'s row i is the OR of Y's
    // packed rows selected by Z's row i, accumulated per output word.
    for i in 0..z.rows() {
        for (w, &xw) in x.row_words(i).iter().enumerate() {
            let mut acc = 0u64;
            for (wi, &word) in z.row_words(i).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let k = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    acc |= y.row_words(k)[w];
                }
            }
            if acc != xw {
                return false;
            }
        }
    }
    // Check 2: X ★ Yᵀ = Z. Entry (i, t) is "do X's row i and Y's row t share
    // a column?" — a word-wise AND-any over the packed rows, no transpose.
    for i in 0..x.rows() {
        let xi = x.row_words(i);
        for t in 0..y.rows() {
            let yt = y.row_words(t);
            let overlap = xi.iter().zip(yt).any(|(&a, &b)| a & b != 0);
            if overlap != z.get(i, t) {
                return false;
            }
        }
    }
    true
}

/// Reference Algorithm 1 via materialised boolean products, retained to
/// cross-check the allocation-free fast path in tests and the ablation
/// bench.
pub fn algorithm1_naive(x: &BinMatrix, y: &BinMatrix, z: &BinMatrix) -> bool {
    if z.cols() != y.rows() || x.cols() != y.cols() || x.rows() != z.rows() {
        return false;
    }
    let x_prime = z.bool_mul_naive(y);
    let z_prime = x.bool_mul_naive(&y.transpose_naive());
    x_prime == *x && z_prime == *z
}

/// Builds the Algorithm-1 inputs for a mapping and runs the check.
///
/// The software access matrix is constructed in *intrinsic operand order*
/// using the mapping's correspondence (row `m` is the input access feeding
/// source slot `m`; the last row is the output), so a single algorithm covers
/// every operand permutation.
pub fn validate_mapping(def: &ComputeDef, intrinsic: &Intrinsic, mapping: &Mapping) -> bool {
    if mapping.correspondence.len() != def.inputs().len()
        || mapping.correspondence.len() != intrinsic.compute.num_srcs()
        || mapping.groups.len() != intrinsic.compute.iters().len()
    {
        return false;
    }
    let z = intrinsic.compute.access_matrix();
    let num_iters = intrinsic.compute.iters().len();

    // Mapped software iterations, in declaration order.
    let mapped = mapping.mapped_iters();
    if mapped.is_empty() {
        return false;
    }
    let empty_axes: Vec<usize> = (0..num_iters)
        .filter(|&t| mapping.groups[t].iters.is_empty())
        .collect();
    let cols = mapped.len() + empty_axes.len();

    // Software access matrix X, rows in operand-slot order.
    let mut x = BinMatrix::zeros(z.rows(), cols);
    for (m, &input_idx) in mapping.correspondence.iter().enumerate() {
        let access = &def.inputs()[input_idx];
        for (col, &s) in mapped.iter().enumerate() {
            x.set(m, col, access.indices.iter().any(|e| e.uses(s)));
        }
    }
    let dst_row = z.rows() - 1;
    for (col, &s) in mapped.iter().enumerate() {
        x.set(dst_row, col, def.output().indices.iter().any(|e| e.uses(s)));
    }
    // Synthetic unit iterations for empty axes: their column equals the
    // axis's Z column.
    for (k, &t) in empty_axes.iter().enumerate() {
        let col = mapped.len() + k;
        for row in 0..z.rows() {
            x.set(row, col, z.get(row, t));
        }
    }

    // Matching matrix Y over the same columns.
    let mut y = BinMatrix::zeros(num_iters, cols);
    for (t, g) in mapping.groups.iter().enumerate() {
        for &s in &g.iters {
            let col = mapped
                .binary_search(&s)
                .expect("mapped iteration is in the mapped list");
            y.set(t, col, true);
        }
    }
    for (k, &t) in empty_axes.iter().enumerate() {
        y.set(t, mapped.len() + k, true);
    }

    algorithm1(&x, &y, &z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_ir::BinMatrix;

    /// The exact matrices of paper Figure 4.
    fn paper_matrices() -> (BinMatrix, BinMatrix, BinMatrix) {
        let x = BinMatrix::from_rows(&[
            &[1, 0, 1, 1, 1, 1, 1], // image
            &[0, 1, 0, 0, 1, 1, 1], // weight
            &[1, 1, 1, 1, 0, 0, 0], // out
        ]);
        let y = BinMatrix::from_rows(&[
            &[1, 0, 1, 1, 0, 0, 0], // i1 <- n, p, q
            &[0, 1, 0, 0, 0, 0, 0], // i2 <- k
            &[0, 0, 0, 0, 1, 1, 1], // r1 <- c, r, s
        ]);
        let z = BinMatrix::from_rows(&[&[1, 0, 1], &[0, 1, 1], &[1, 1, 0]]);
        (x, y, z)
    }

    #[test]
    fn figure4_mapping_is_valid() {
        let (x, y, z) = paper_matrices();
        assert!(algorithm1(&x, &y, &z));
    }

    #[test]
    fn mapping_n_and_k_to_same_axis_is_invalid() {
        // The §5.2 counter-example: n and k share i1.
        let (x, _, z) = paper_matrices();
        let y = BinMatrix::from_rows(&[
            &[1, 1, 1, 1, 0, 0, 0],
            &[0, 0, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 1, 1, 1],
        ]);
        assert!(!algorithm1(&x, &y, &z));
    }

    #[test]
    fn dimension_mismatch_is_invalid() {
        let (x, y, z) = paper_matrices();
        let bad_z = BinMatrix::zeros(3, 2);
        assert!(!algorithm1(&x, &y, &bad_z));
        let bad_x = BinMatrix::zeros(2, 7);
        assert!(!algorithm1(&bad_x, &y, &z));
    }

    #[test]
    fn fast_path_agrees_with_naive_on_figure4_suite() {
        let (x, y, z) = paper_matrices();
        let bad_y = BinMatrix::from_rows(&[
            &[1, 1, 1, 1, 0, 0, 0],
            &[0, 0, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 1, 1, 1],
        ]);
        let swapped_y = BinMatrix::from_rows(&[
            &[0, 0, 0, 0, 1, 1, 1],
            &[0, 1, 0, 0, 0, 0, 0],
            &[1, 0, 1, 1, 0, 0, 0],
        ]);
        let bad_z = BinMatrix::zeros(3, 2);
        let bad_x = BinMatrix::zeros(2, 7);
        for (xx, yy, zz) in [
            (&x, &y, &z),
            (&x, &bad_y, &z),
            (&x, &swapped_y, &z),
            (&x, &y, &bad_z),
            (&bad_x, &y, &z),
        ] {
            assert_eq!(algorithm1(xx, yy, zz), algorithm1_naive(xx, yy, zz));
        }
    }

    #[test]
    fn validation_calls_counter_advances() {
        let (x, y, z) = paper_matrices();
        let before = validation_calls();
        let _ = algorithm1(&x, &y, &z);
        assert!(validation_calls() > before);
    }

    #[test]
    fn swapping_spatial_and_reduction_is_invalid() {
        // Map c, r, s to i1 and n, p, q to r1: the output would be indexed by
        // reduction iterations.
        let (x, _, z) = paper_matrices();
        let y = BinMatrix::from_rows(&[
            &[0, 0, 0, 0, 1, 1, 1],
            &[0, 1, 0, 0, 0, 0, 0],
            &[1, 0, 1, 1, 0, 0, 0],
        ]);
        assert!(!algorithm1(&x, &y, &z));
    }
}

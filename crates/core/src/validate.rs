//! Mapping validation — paper §5.2, Algorithm 1.
//!
//! A mapping is valid when the binary matching matrix `Y` transports the
//! intrinsic access relationship `Z` onto the software access relationship
//! `X` and back:
//!
//! ```text
//! Z ★ Y  = X      (software access relationship preserved)
//! X ★ Yᵀ = Z      (hardware access relationship preserved)
//! ```
//!
//! where ★ is the boolean matrix product. `X` is restricted to the *mapped*
//! software iterations, and every empty intrinsic axis is represented by a
//! synthetic unit iteration whose access column equals the axis's `Z`
//! column — after padding, that degenerate dimension genuinely exists in the
//! software loop nest.

use crate::mapping::Mapping;
use amos_hw::Intrinsic;
use amos_ir::{BinMatrix, ComputeDef};

/// Raw Algorithm 1 on explicit matrices.
///
/// ```
/// use amos_core::validate::algorithm1;
/// use amos_ir::BinMatrix;
///
/// // The paper's Figure 4 matrices: conv2d onto the mma intrinsic.
/// let x = BinMatrix::from_rows(&[
///     &[1, 0, 1, 1, 1, 1, 1], // image
///     &[0, 1, 0, 0, 1, 1, 1], // weight
///     &[1, 1, 1, 1, 0, 0, 0], // out
/// ]);
/// let y = BinMatrix::from_rows(&[
///     &[1, 0, 1, 1, 0, 0, 0], // i1 <- n, p, q
///     &[0, 1, 0, 0, 0, 0, 0], // i2 <- k
///     &[0, 0, 0, 0, 1, 1, 1], // r1 <- c, r, s
/// ]);
/// let z = BinMatrix::from_rows(&[&[1, 0, 1], &[0, 1, 1], &[1, 1, 0]]);
/// assert!(algorithm1(&x, &y, &z));
/// ```
///
/// * `x` — software access matrix (operand-slot rows, mapped-iteration cols),
/// * `y` — matching matrix (intrinsic-iteration rows, mapped-iteration cols),
/// * `z` — intrinsic access matrix (operand-slot rows, intrinsic-iter cols).
pub fn algorithm1(x: &BinMatrix, y: &BinMatrix, z: &BinMatrix) -> bool {
    if z.cols() != y.rows() || x.cols() != y.cols() || x.rows() != z.rows() {
        return false;
    }
    let x_prime = z.bool_mul(y);
    let z_prime = x.bool_mul(&y.transpose());
    x_prime == *x && z_prime == *z
}

/// Builds the Algorithm-1 inputs for a mapping and runs the check.
///
/// The software access matrix is constructed in *intrinsic operand order*
/// using the mapping's correspondence (row `m` is the input access feeding
/// source slot `m`; the last row is the output), so a single algorithm covers
/// every operand permutation.
pub fn validate_mapping(def: &ComputeDef, intrinsic: &Intrinsic, mapping: &Mapping) -> bool {
    if mapping.correspondence.len() != def.inputs().len()
        || mapping.correspondence.len() != intrinsic.compute.num_srcs()
        || mapping.groups.len() != intrinsic.compute.iters().len()
    {
        return false;
    }
    let z = intrinsic.compute.access_matrix();
    let num_iters = intrinsic.compute.iters().len();

    // Mapped software iterations, in declaration order.
    let mapped = mapping.mapped_iters();
    if mapped.is_empty() {
        return false;
    }
    let empty_axes: Vec<usize> = (0..num_iters)
        .filter(|&t| mapping.groups[t].iters.is_empty())
        .collect();
    let cols = mapped.len() + empty_axes.len();

    // Software access matrix X, rows in operand-slot order.
    let mut x = BinMatrix::zeros(z.rows(), cols);
    for (m, &input_idx) in mapping.correspondence.iter().enumerate() {
        let access = &def.inputs()[input_idx];
        for (col, &s) in mapped.iter().enumerate() {
            x[(m, col)] = access.indices.iter().any(|e| e.uses(s));
        }
    }
    let dst_row = z.rows() - 1;
    for (col, &s) in mapped.iter().enumerate() {
        x[(dst_row, col)] = def.output().indices.iter().any(|e| e.uses(s));
    }
    // Synthetic unit iterations for empty axes: their column equals the
    // axis's Z column.
    for (k, &t) in empty_axes.iter().enumerate() {
        let col = mapped.len() + k;
        for row in 0..z.rows() {
            x[(row, col)] = z[(row, t)];
        }
    }

    // Matching matrix Y over the same columns.
    let mut y = BinMatrix::zeros(num_iters, cols);
    for (t, g) in mapping.groups.iter().enumerate() {
        for &s in &g.iters {
            let col = mapped
                .binary_search(&s)
                .expect("mapped iteration is in the mapped list");
            y[(t, col)] = true;
        }
    }
    for (k, &t) in empty_axes.iter().enumerate() {
        y[(t, mapped.len() + k)] = true;
    }

    algorithm1(&x, &y, &z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_ir::BinMatrix;

    /// The exact matrices of paper Figure 4.
    fn paper_matrices() -> (BinMatrix, BinMatrix, BinMatrix) {
        let x = BinMatrix::from_rows(&[
            &[1, 0, 1, 1, 1, 1, 1], // image
            &[0, 1, 0, 0, 1, 1, 1], // weight
            &[1, 1, 1, 1, 0, 0, 0], // out
        ]);
        let y = BinMatrix::from_rows(&[
            &[1, 0, 1, 1, 0, 0, 0], // i1 <- n, p, q
            &[0, 1, 0, 0, 0, 0, 0], // i2 <- k
            &[0, 0, 0, 0, 1, 1, 1], // r1 <- c, r, s
        ]);
        let z = BinMatrix::from_rows(&[&[1, 0, 1], &[0, 1, 1], &[1, 1, 0]]);
        (x, y, z)
    }

    #[test]
    fn figure4_mapping_is_valid() {
        let (x, y, z) = paper_matrices();
        assert!(algorithm1(&x, &y, &z));
    }

    #[test]
    fn mapping_n_and_k_to_same_axis_is_invalid() {
        // The §5.2 counter-example: n and k share i1.
        let (x, _, z) = paper_matrices();
        let y = BinMatrix::from_rows(&[
            &[1, 1, 1, 1, 0, 0, 0],
            &[0, 0, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 1, 1, 1],
        ]);
        assert!(!algorithm1(&x, &y, &z));
    }

    #[test]
    fn dimension_mismatch_is_invalid() {
        let (x, y, z) = paper_matrices();
        let bad_z = BinMatrix::zeros(3, 2);
        assert!(!algorithm1(&x, &y, &bad_z));
        let bad_x = BinMatrix::zeros(2, 7);
        assert!(!algorithm1(&bad_x, &y, &z));
    }

    #[test]
    fn swapping_spatial_and_reduction_is_invalid() {
        // Map c, r, s to i1 and n, p, q to r1: the output would be indexed by
        // reduction iterations.
        let (x, _, z) = paper_matrices();
        let y = BinMatrix::from_rows(&[
            &[0, 0, 0, 0, 1, 1, 1],
            &[0, 1, 0, 0, 0, 0, 0],
            &[1, 0, 1, 1, 0, 0, 0],
        ]);
        assert!(!algorithm1(&x, &y, &z));
    }
}

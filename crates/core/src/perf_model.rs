//! The analytic performance model of paper §5.3.
//!
//! ```text
//! Perf = L_{L-1},  L the number of hardware levels
//! L_l  = (Π S_l) · max(L_{l-1}, R_{l-1}, W_{l-1})    l > 0
//! L_0  = (Π S_0) · latency_of_intrinsic
//! R_l  = DataIn_l / in_bw_l        W_l = DataOut_l / out_bw_l
//! ```
//!
//! The model predicts cycles from the same schedule-derived data volumes the
//! timing simulator uses, but deliberately omits the second-order effects the
//! simulator has (wave quantisation, pipeline fill, launch overhead, staging
//! barriers, issue/bandwidth derating) — it is a *screening* model, fast and
//! rank-accurate, exactly the role it plays in the paper's exploration loop
//! (Figure 5 quantifies the gap).

use amos_hw::{AcceleratorSpec, OperandRef};
use amos_sim::{AxisKind, MappedProgram, Schedule, SimError};

/// A per-level breakdown of the prediction, for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBreakdown {
    /// Predicted total cycles (`Perf` in the paper).
    pub cycles: f64,
    /// Compute term at level 0 (intrinsic issue).
    pub l0_compute: f64,
    /// Read term into the register level.
    pub r_register: f64,
    /// Read term into the staging (shared) level.
    pub r_shared: f64,
    /// Read term from device memory.
    pub r_device: f64,
    /// Write term back to device memory.
    pub w_device: f64,
    /// Sequential factor at the device level (waves of blocks, unquantised).
    pub s_device: f64,
}

/// Predicts execution cycles for a mapped program under a schedule.
///
/// # Errors
///
/// Returns the schedule-validation error when the schedule is malformed
/// (capacity violations are *not* model errors — the model is also used to
/// score slightly-infeasible candidates during mutation — so only structural
/// mismatches are rejected).
pub fn predict(
    prog: &MappedProgram,
    schedule: &Schedule,
    accel: &AcceleratorSpec,
) -> Result<PerfBreakdown, SimError> {
    let axes = prog.axes();
    if schedule.grid.len() != axes.len() {
        return Err(SimError::InvalidSchedule {
            detail: "schedule does not match program axes".into(),
        });
    }
    let intr = prog.intrinsic();
    let num_srcs = intr.compute.num_srcs();

    // ---- level 0: intrinsic issue ----------------------------------------
    let mut calls_per_subcore = 1f64;
    for i in 0..axes.len() {
        calls_per_subcore *= schedule.subcore_chunk(axes, i) as f64;
    }
    let l0 = calls_per_subcore * intr.initiation_interval as f64;

    // ---- register-level read ----------------------------------------------
    let mut register_bytes = 0f64;
    for m in 0..num_srcs {
        let mut reuse = 1i64;
        for (i, a) in axes.iter().enumerate() {
            if matches!(a.kind, AxisKind::TileSpatial(_)) && !prog.operand_uses_axis(m, a) {
                reuse *= schedule.warp[i].min(schedule.subcore_chunk(axes, i));
            }
        }
        register_bytes += calls_per_subcore / reuse.max(1) as f64
            * intr.fragment_bytes(OperandRef::Src(m)) as f64;
    }
    let reg_bw = accel.levels[0].memory.load_bytes_per_cycle;
    let r_register = if reg_bw > 0.0 {
        register_bytes / reg_bw
    } else {
        0.0
    };

    // ---- staging-level read -----------------------------------------------
    let block_read: f64 = (0..num_srcs)
        .map(|m| schedule.block_read_bytes(prog, m) as f64)
        .sum();
    let shared_level = accel.shared_level();
    let shared_bw = accel.levels[shared_level].memory.load_bytes_per_cycle;
    let r_shared = if shared_bw > 0.0 {
        block_read / shared_bw
    } else {
        0.0
    };

    // ---- device-level read/write ------------------------------------------
    let cores = accel.total_units(shared_level) as f64;
    let blocks = schedule.blocks() as f64;
    let active = blocks.min(cores);
    let device = accel.levels.last().expect("levels");
    let r_device = block_read / (device.memory.load_bytes_per_cycle / active);

    let dst_row = num_srcs;
    let mut dst_tiles = 1f64;
    for (i, a) in axes.iter().enumerate() {
        if prog.operand_uses_axis(dst_row, a) && a.kind.is_spatial() {
            dst_tiles *= schedule.block_chunk(axes, i) as f64;
        }
    }
    let write_bytes = dst_tiles * intr.fragment_bytes(OperandRef::Dst) as f64;
    let w_device = write_bytes / (device.memory.store_bytes_per_cycle / active);

    // ---- hierarchy recursion ------------------------------------------------
    // L_1 (sub-core) = max(L_0, R_0, W_0); L_2 (core) folds staging; the
    // device level multiplies by the sequential wave factor.
    let l1 = l0.max(r_register);
    let l2 = l1.max(r_shared).max(r_device).max(w_device);
    let s_device = blocks / cores; // unquantised sequential factor
    let cycles = s_device.max(1.0) * l2;

    Ok(PerfBreakdown {
        cycles,
        l0_compute: l0,
        r_register,
        r_shared,
        r_device,
        w_device,
        s_device,
    })
}

/// Convenience wrapper returning only the predicted cycle count.
pub fn predict_cycles(
    prog: &MappedProgram,
    schedule: &Schedule,
    accel: &AcceleratorSpec,
) -> Result<f64, SimError> {
    predict(prog, schedule, accel).map(|b| b.cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};
    use amos_sim::FusedGroup;

    fn gemm_prog(m: i64, n: i64, k: i64) -> MappedProgram {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", m);
        let j = b.spatial("j", n);
        let kk = b.reduce("k", k);
        let a = b.input("a", &[m, k], DType::F16);
        let w = b.input("b", &[k, n], DType::F16);
        let c = b.output("c", &[m, n], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, kk]), w.at([kk, j]));
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        MappedProgram::new(
            def,
            catalog::wmma_16x16x16(),
            vec![
                FusedGroup::of(vec![ids[0]]),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[2]]),
            ],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn prediction_tracks_simulation_direction() {
        let prog = gemm_prog(2048, 2048, 512);
        let accel = catalog::v100();
        let naive = Schedule::naive(&prog);
        let good = Schedule::balanced(&prog, &accel);
        let p_naive = predict_cycles(&prog, &naive, &accel).unwrap();
        let p_good = predict_cycles(&prog, &good, &accel).unwrap();
        assert!(p_good < p_naive, "model must prefer the better schedule");

        let s_naive = amos_sim::simulate(&prog, &naive, &accel).unwrap().cycles;
        let s_good = amos_sim::simulate(&prog, &good, &accel).unwrap().cycles;
        assert!(s_good < s_naive);
    }

    #[test]
    fn model_underestimates_the_simulator() {
        // The model omits launch overhead, fill and barriers, so it should
        // not exceed the simulator for the same configuration.
        let prog = gemm_prog(1024, 1024, 256);
        let accel = catalog::v100();
        let s = Schedule::balanced(&prog, &accel);
        let predicted = predict_cycles(&prog, &s, &accel).unwrap();
        let simulated = amos_sim::simulate(&prog, &s, &accel).unwrap().cycles;
        assert!(predicted <= simulated);
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let prog = gemm_prog(1024, 1024, 1024);
        let mut accel = catalog::v100();
        let s = Schedule::balanced(&prog, &accel);
        let base = predict_cycles(&prog, &s, &accel).unwrap();
        accel.levels.last_mut().unwrap().memory.load_bytes_per_cycle *= 2.0;
        let faster = predict_cycles(&prog, &s, &accel).unwrap();
        assert!(faster <= base);
    }

    #[test]
    fn breakdown_terms_are_nonnegative() {
        let prog = gemm_prog(256, 256, 256);
        let accel = catalog::a100();
        let b = predict(&prog, &Schedule::naive(&prog), &accel).unwrap();
        assert!(b.l0_compute > 0.0);
        assert!(b.r_register >= 0.0);
        assert!(b.r_shared >= 0.0);
        assert!(b.r_device >= 0.0);
        assert!(b.w_device >= 0.0);
        assert!(b.cycles >= b.l0_compute.min(b.r_device));
    }

    #[test]
    fn mismatched_schedule_rejected() {
        let prog = gemm_prog(256, 256, 256);
        let mut s = Schedule::naive(&prog);
        s.grid.pop();
        assert!(predict_cycles(&prog, &s, &catalog::v100()).is_err());
    }
}

//! The analytic performance model of paper §5.3.
//!
//! ```text
//! Perf = L_{L-1},  L the number of hardware levels
//! L_l  = (Π S_l) · max(L_{l-1}, R_{l-1}, W_{l-1})    l > 0
//! L_0  = (Π S_0) · latency_of_intrinsic
//! R_l  = DataIn_l / in_bw_l        W_l = DataOut_l / out_bw_l
//! ```
//!
//! The model predicts cycles from the same schedule-derived data volumes the
//! timing simulator uses, but deliberately omits the second-order effects the
//! simulator has (wave quantisation, pipeline fill, launch overhead, staging
//! barriers, issue/bandwidth derating) — it is a *screening* model, fast and
//! rank-accurate, exactly the role it plays in the paper's exploration loop
//! (Figure 5 quantifies the gap).

//! Two implementations evaluate the model:
//!
//! * [`predict`] — the reference, reading the program and accelerator
//!   descriptions directly;
//! * [`predict_with`] — the screening hot path, straight-line arithmetic
//!   over a precomputed [`ScreeningContext`] with no allocation and no
//!   `String` error construction.
//!
//! Both use the same guarded-reciprocal formulation (`bytes * (1/bw)`, the
//! reciprocals precomputed in the context) and the same floating-point
//! operation order, so their results are **bit-identical** — asserted by the
//! unit tests below and a proptest over the Figure-6 operator set.

use amos_hw::{AcceleratorSpec, OperandRef};
use amos_sim::{
    div_ceil, AxisKind, BatchTables, MappedProgram, Schedule, ScreeningContext, SimError,
    BATCH_LANES,
};

/// A per-level breakdown of the prediction, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerfBreakdown {
    /// Predicted total cycles (`Perf` in the paper).
    pub cycles: f64,
    /// Compute term at level 0 (intrinsic issue).
    pub l0_compute: f64,
    /// Read term into the register level.
    pub r_register: f64,
    /// Read term into the staging (shared) level.
    pub r_shared: f64,
    /// Read term from device memory.
    pub r_device: f64,
    /// Write term back to device memory.
    pub w_device: f64,
    /// Sequential factor at the device level (waves of blocks, unquantised).
    pub s_device: f64,
}

/// Predicts execution cycles for a mapped program under a schedule.
///
/// # Errors
///
/// Returns the schedule-validation error when the schedule is malformed
/// (capacity violations are *not* model errors — the model is also used to
/// score slightly-infeasible candidates during mutation — so only structural
/// mismatches are rejected).
pub fn predict(
    prog: &MappedProgram,
    schedule: &Schedule,
    accel: &AcceleratorSpec,
) -> Result<PerfBreakdown, SimError> {
    let axes = prog.axes();
    if schedule.grid.len() != axes.len() {
        return Err(SimError::ScheduleAxisMismatch);
    }
    let intr = prog.intrinsic();
    let num_srcs = intr.compute.num_srcs();

    // ---- level 0: intrinsic issue ----------------------------------------
    let mut calls_per_subcore = 1f64;
    for i in 0..axes.len() {
        calls_per_subcore *= schedule.subcore_chunk(axes, i) as f64;
    }
    let l0 = calls_per_subcore * intr.initiation_interval as f64;

    // ---- register-level read ----------------------------------------------
    let mut register_bytes = 0f64;
    for m in 0..num_srcs {
        let mut reuse = 1i64;
        for (i, a) in axes.iter().enumerate() {
            if matches!(a.kind, AxisKind::TileSpatial(_)) && !prog.operand_uses_axis(m, a) {
                reuse *= schedule.warp[i].min(schedule.subcore_chunk(axes, i));
            }
        }
        register_bytes += calls_per_subcore / reuse.max(1) as f64
            * intr.fragment_bytes(OperandRef::Src(m)) as f64;
    }
    let reg_bw = accel.levels[0].memory.load_bytes_per_cycle;
    let inv_reg_bw = if reg_bw > 0.0 { 1.0 / reg_bw } else { 0.0 };
    let r_register = register_bytes * inv_reg_bw;

    // ---- staging-level read -----------------------------------------------
    let block_read: f64 = (0..num_srcs)
        .map(|m| schedule.block_read_bytes(prog, m) as f64)
        .sum();
    let shared_level = accel.shared_level();
    let shared_bw = accel.levels[shared_level].memory.load_bytes_per_cycle;
    let inv_shared_bw = if shared_bw > 0.0 {
        1.0 / shared_bw
    } else {
        0.0
    };
    let r_shared = block_read * inv_shared_bw;

    // ---- device-level read/write ------------------------------------------
    let cores = accel.total_units(shared_level) as f64;
    let blocks = schedule.blocks() as f64;
    let active = blocks.min(cores);
    let device = accel.levels.last().expect("levels");
    let r_device = block_read * (active * (1.0 / device.memory.load_bytes_per_cycle));

    let dst_row = num_srcs;
    let mut dst_tiles = 1f64;
    for (i, a) in axes.iter().enumerate() {
        if prog.operand_uses_axis(dst_row, a) && a.kind.is_spatial() {
            dst_tiles *= schedule.block_chunk(axes, i) as f64;
        }
    }
    let write_bytes = dst_tiles * intr.fragment_bytes(OperandRef::Dst) as f64;
    let w_device = write_bytes * (active * (1.0 / device.memory.store_bytes_per_cycle));

    // ---- hierarchy recursion ------------------------------------------------
    // L_1 (sub-core) = max(L_0, R_0, W_0); L_2 (core) folds staging; the
    // device level multiplies by the sequential wave factor.
    let l1 = l0.max(r_register);
    let l2 = l1.max(r_shared).max(r_device).max(w_device);
    let s_device = blocks * (1.0 / cores); // unquantised sequential factor
    let cycles = s_device.max(1.0) * l2;

    Ok(PerfBreakdown {
        cycles,
        l0_compute: l0,
        r_register,
        r_shared,
        r_device,
        w_device,
        s_device,
    })
}

/// [`predict`] over a precomputed [`ScreeningContext`]: the screening hot
/// path. Straight-line arithmetic over flat tables — no allocation, no hash
/// lookups, no `String` error construction — and bit-identical to the
/// reference (same reciprocal values, same floating-point operation order;
/// the masked products walk set bits in ascending axis order, exactly the
/// order of the reference loops).
///
/// # Errors
///
/// [`SimError::ScheduleAxisMismatch`] when the schedule's vectors do not
/// match the context's axis count.
pub fn predict_with(
    ctx: &ScreeningContext,
    schedule: &Schedule,
) -> Result<PerfBreakdown, SimError> {
    let axes = &ctx.axes[..];
    let n = axes.len();
    if schedule.grid.len() != n {
        return Err(SimError::ScheduleAxisMismatch);
    }
    // Per-axis chunks, computed once into fixed stack buffers (the context
    // asserts n <= 64). The reference recomputes these per use; the values
    // are integers, so hoisting them cannot change any float result.
    let mut blk_chunk = [0i64; 64];
    let mut sub_chunk = [0i64; 64];
    for i in 0..n {
        blk_chunk[i] = schedule.block_chunk(axes, i);
        sub_chunk[i] = div_ceil(blk_chunk[i], schedule.subcore[i]);
    }

    // ---- level 0: intrinsic issue ----------------------------------------
    let mut calls_per_subcore = 1f64;
    for &c in &sub_chunk[..n] {
        calls_per_subcore *= c as f64;
    }
    let l0 = calls_per_subcore * ctx.initiation_interval;

    // ---- register-level read ----------------------------------------------
    let mut register_bytes = 0f64;
    for m in 0..ctx.num_srcs {
        let mut reuse = 1i64;
        let mut bits = ctx.tile_spatial_mask & !ctx.operand_masks[m];
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            reuse *= schedule.warp[i].min(sub_chunk[i]);
        }
        register_bytes += calls_per_subcore / reuse.max(1) as f64 * ctx.src_frag_bytes[m] as f64;
    }
    let r_register = register_bytes * ctx.inv_register_bw;

    // ---- staging-level read -----------------------------------------------
    let mut block_read = 0f64;
    for m in 0..ctx.num_srcs {
        block_read += ctx.block_read_bytes(schedule, m) as f64;
    }
    let r_shared = block_read * ctx.inv_shared_bw;

    // ---- device-level read/write ------------------------------------------
    let blocks = schedule.blocks() as f64;
    let active = blocks.min(ctx.cores);
    let r_device = block_read * (active * ctx.inv_device_load_bw);

    let mut dst_tiles = 1f64;
    let mut bits = ctx.operand_masks[ctx.num_srcs] & ctx.spatial_mask;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        dst_tiles *= blk_chunk[i] as f64;
    }
    let write_bytes = dst_tiles * ctx.dst_frag_bytes as f64;
    let w_device = write_bytes * (active * ctx.inv_device_store_bw);

    // ---- hierarchy recursion ------------------------------------------------
    let l1 = l0.max(r_register);
    let l2 = l1.max(r_shared).max(r_device).max(w_device);
    let s_device = blocks * ctx.inv_cores;
    let cycles = s_device.max(1.0) * l2;

    Ok(PerfBreakdown {
        cycles,
        l0_compute: l0,
        r_register,
        r_shared,
        r_device,
        w_device,
        s_device,
    })
}

/// [`predict_with`] over many candidates at once: the batched screening hot
/// path. Candidates are evaluated in chunks of up to [`BATCH_LANES`] lanes
/// over the per-axis SoA tables of [`ScreeningContext::fill_batch_tables`],
/// with every float accumulator widened to a lane array so the per-axis and
/// per-operand loops run lane-minor over contiguous memory.
///
/// Each lane executes exactly the floating-point operation sequence of
/// scalar [`predict_with`] (the integer hoisting differs, but integers are
/// exact), so every result is **bit-identical** to the scalar path — asserted
/// by unit tests, a proptest over random arenas and the
/// `screening_throughput` bench gate.
///
/// Results are appended to `out` in candidate order; structurally malformed
/// candidates (wrong axis count) yield `Err(SimError::ScheduleAxisMismatch)`
/// in their slot without disturbing neighbouring lanes.
pub fn predict_batch(
    ctx: &ScreeningContext,
    schedules: &[&Schedule],
    out: &mut Vec<Result<PerfBreakdown, SimError>>,
) {
    let mut tables = BatchTables::default();
    predict_batch_with(ctx, schedules, &mut tables, out);
}

/// [`predict_batch`] with caller-owned scratch [`BatchTables`], so a loop
/// that screens generation after generation reuses one allocation.
pub fn predict_batch_with(
    ctx: &ScreeningContext,
    schedules: &[&Schedule],
    tables: &mut BatchTables,
    out: &mut Vec<Result<PerfBreakdown, SimError>>,
) {
    let n = ctx.axes.len();
    out.reserve(schedules.len());
    let mut results = [PerfBreakdown::default(); BATCH_LANES];
    for chunk in schedules.chunks(BATCH_LANES) {
        // Fast path: a full chunk of structurally valid candidates (the only
        // shape the explorer's generation loop ever produces) maps straight
        // onto the lanes with no compaction bookkeeping.
        if chunk.len() == BATCH_LANES && chunk.iter().all(|s| s.grid.len() == n) {
            let lanes: &[&Schedule; BATCH_LANES] = chunk.try_into().expect("full chunk");
            predict_chunk(ctx, lanes, tables, &mut results);
            for r in &results {
                out.push(Ok(*r));
            }
            continue;
        }
        // Compact the structurally valid candidates into lanes; malformed
        // ones are rejected up front exactly like the scalar path.
        let mut lanes = [chunk[0]; BATCH_LANES];
        let mut lane_of = [usize::MAX; BATCH_LANES];
        let mut width = 0usize;
        for (c, s) in chunk.iter().enumerate() {
            if s.grid.len() == n {
                lanes[width] = s;
                lane_of[c] = width;
                width += 1;
            }
        }
        // Pad short chunks with the first valid lane: every inner loop then
        // runs exactly BATCH_LANES trips (the shape the vectoriser needs),
        // and the duplicated lanes' results are simply never read.
        for l in width..BATCH_LANES {
            lanes[l] = lanes[0];
        }
        if width > 0 {
            predict_chunk(ctx, &lanes, tables, &mut results);
        }
        for (c, _) in chunk.iter().enumerate() {
            out.push(match lane_of[c] {
                usize::MAX => Err(SimError::ScheduleAxisMismatch),
                l => Ok(results[l]),
            });
        }
    }
}

/// Evaluates one full chunk of [`BATCH_LANES`] structurally valid schedules
/// (short chunks arrive padded with a duplicate lane), dispatching to the
/// widest vector ISA the running CPU offers. The compiled variants differ
/// only in vector width and instruction selection: Rust never contracts
/// separate multiplies and adds into FMAs, so every elementwise IEEE result
/// — and therefore the search trajectory — is identical on every path.
fn predict_chunk(
    ctx: &ScreeningContext,
    lanes: &[&Schedule; BATCH_LANES],
    tables: &mut BatchTables,
    results: &mut [PerfBreakdown; BATCH_LANES],
) {
    #[cfg(target_arch = "x86_64")]
    {
        // 8 f64 lanes fill exactly one zmm register; AVX-512DQ adds the
        // 64-bit integer multiplies and i64->f64 converts the integer
        // product loops need, which AVX2 and baseline SSE2 lack.
        if std::is_x86_feature_detected!("avx512dq") {
            // SAFETY: feature presence checked at runtime on this CPU.
            return unsafe { predict_chunk_avx512(ctx, lanes, tables, results) };
        }
        if std::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked at runtime on this CPU.
            return unsafe { predict_chunk_avx2(ctx, lanes, tables, results) };
        }
    }
    predict_chunk_impl(ctx, lanes, tables, results);
}

/// [`predict_chunk_impl`] compiled for AVX-512F/DQ (8-wide f64, vector
/// `i64` multiply and convert).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn predict_chunk_avx512(
    ctx: &ScreeningContext,
    lanes: &[&Schedule; BATCH_LANES],
    tables: &mut BatchTables,
    results: &mut [PerfBreakdown; BATCH_LANES],
) {
    predict_chunk_impl(ctx, lanes, tables, results);
}

/// [`predict_chunk_impl`] compiled for AVX2 (4-wide f64).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn predict_chunk_avx2(
    ctx: &ScreeningContext,
    lanes: &[&Schedule; BATCH_LANES],
    tables: &mut BatchTables,
    results: &mut [PerfBreakdown; BATCH_LANES],
) {
    predict_chunk_impl(ctx, lanes, tables, results);
}

/// Mirrors [`predict_with`] term by term with every scalar widened to a
/// `[f64; BATCH_LANES]` accumulator; the fixed width keeps every inner loop
/// a constant BATCH_LANES trips so they unroll and vectorise.
#[inline(always)]
fn predict_chunk_impl(
    ctx: &ScreeningContext,
    lanes: &[&Schedule; BATCH_LANES],
    tables: &mut BatchTables,
    results: &mut [PerfBreakdown; BATCH_LANES],
) {
    let n = ctx.axes.len();
    ctx.fill_batch_tables(lanes, tables);
    // Slicing to the exact table extent lets the compiler prove every
    // `i * BATCH_LANES + l` access in-bounds and drop the checks.
    let need = n * BATCH_LANES;
    let blk = &tables.blk[..need];
    let sub = &tables.sub[..need];
    let steps = &tables.steps[..need];
    let wsub = &tables.wsub[..need];

    // ---- level 0: intrinsic issue ----------------------------------------
    let mut calls = [1f64; BATCH_LANES];
    for i in 0..n {
        let row = i * BATCH_LANES;
        for (l, c) in calls.iter_mut().enumerate() {
            *c *= sub[row + l] as f64;
        }
    }
    let mut l0 = [0f64; BATCH_LANES];
    for l in 0..BATCH_LANES {
        l0[l] = calls[l] * ctx.initiation_interval;
    }

    // ---- register-level read ----------------------------------------------
    let mut register_bytes = [0f64; BATCH_LANES];
    for m in 0..ctx.num_srcs {
        let mut reuse = [1i64; BATCH_LANES];
        let mut bits = ctx.tile_spatial_mask & !ctx.operand_masks[m];
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let row = i * BATCH_LANES;
            for (l, r) in reuse.iter_mut().enumerate() {
                *r *= wsub[row + l];
            }
        }
        let frag = ctx.src_frag_bytes[m] as f64;
        for l in 0..BATCH_LANES {
            register_bytes[l] += calls[l] / reuse[l].max(1) as f64 * frag;
        }
    }
    let mut r_register = [0f64; BATCH_LANES];
    for l in 0..BATCH_LANES {
        r_register[l] = register_bytes[l] * ctx.inv_register_bw;
    }

    // ---- staging-level read -----------------------------------------------
    // Same integer product as `ScreeningContext::block_read_bytes`, but the
    // per-axis chunks and staging steps come from the shared tables instead
    // of being re-derived per operand.
    let mut block_read = [0f64; BATCH_LANES];
    for m in 0..ctx.num_srcs {
        let mask = ctx.operand_masks[m];
        let mut bytes_per_pass = [1i64; BATCH_LANES];
        let mut passes = [1i64; BATCH_LANES];
        for (i, a) in ctx.axes.iter().enumerate() {
            let row = i * BATCH_LANES;
            if mask >> i & 1 == 1 {
                for (l, b) in bytes_per_pass.iter_mut().enumerate() {
                    *b *= blk[row + l];
                }
            } else if a.kind.is_spatial() {
                for (l, p) in passes.iter_mut().enumerate() {
                    *p *= steps[row + l];
                }
            }
        }
        let frag = ctx.src_frag_bytes[m];
        for l in 0..BATCH_LANES {
            block_read[l] += (bytes_per_pass[l] as u64 * passes[l] as u64 * frag) as f64;
        }
    }

    // ---- device-level write volume -----------------------------------------
    let mut dst_tiles = [1f64; BATCH_LANES];
    let mut bits = ctx.operand_masks[ctx.num_srcs] & ctx.spatial_mask;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let row = i * BATCH_LANES;
        for (l, d) in dst_tiles.iter_mut().enumerate() {
            *d *= blk[row + l] as f64;
        }
    }

    // ---- remaining terms + hierarchy recursion, per lane -------------------
    for l in 0..BATCH_LANES {
        let r_shared = block_read[l] * ctx.inv_shared_bw;
        let blocks = tables.blocks[l] as f64;
        let active = blocks.min(ctx.cores);
        let r_device = block_read[l] * (active * ctx.inv_device_load_bw);
        let write_bytes = dst_tiles[l] * ctx.dst_frag_bytes as f64;
        let w_device = write_bytes * (active * ctx.inv_device_store_bw);
        let l1 = l0[l].max(r_register[l]);
        let l2 = l1.max(r_shared).max(r_device).max(w_device);
        let s_device = blocks * ctx.inv_cores;
        let cycles = s_device.max(1.0) * l2;
        results[l] = PerfBreakdown {
            cycles,
            l0_compute: l0[l],
            r_register: r_register[l],
            r_shared,
            r_device,
            w_device,
            s_device,
        };
    }
}

/// Convenience wrapper returning only the predicted cycle count.
pub fn predict_cycles(
    prog: &MappedProgram,
    schedule: &Schedule,
    accel: &AcceleratorSpec,
) -> Result<f64, SimError> {
    predict(prog, schedule, accel).map(|b| b.cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_hw::catalog;
    use amos_ir::{ComputeBuilder, DType};
    use amos_sim::FusedGroup;

    fn gemm_prog(m: i64, n: i64, k: i64) -> MappedProgram {
        let mut b = ComputeBuilder::new("gemm");
        let i = b.spatial("i", m);
        let j = b.spatial("j", n);
        let kk = b.reduce("k", k);
        let a = b.input("a", &[m, k], DType::F16);
        let w = b.input("b", &[k, n], DType::F16);
        let c = b.output("c", &[m, n], DType::F32);
        b.mul_acc(c.at([i, j]), a.at([i, kk]), w.at([kk, j]));
        let def = b.finish().unwrap();
        let ids: Vec<_> = def.iter_ids().collect();
        MappedProgram::new(
            def,
            catalog::wmma_16x16x16(),
            vec![
                FusedGroup::of(vec![ids[0]]),
                FusedGroup::of(vec![ids[1]]),
                FusedGroup::of(vec![ids[2]]),
            ],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn prediction_tracks_simulation_direction() {
        let prog = gemm_prog(2048, 2048, 512);
        let accel = catalog::v100();
        let naive = Schedule::naive(&prog);
        let good = Schedule::balanced(&prog, &accel);
        let p_naive = predict_cycles(&prog, &naive, &accel).unwrap();
        let p_good = predict_cycles(&prog, &good, &accel).unwrap();
        assert!(p_good < p_naive, "model must prefer the better schedule");

        let s_naive = amos_sim::simulate(&prog, &naive, &accel).unwrap().cycles;
        let s_good = amos_sim::simulate(&prog, &good, &accel).unwrap().cycles;
        assert!(s_good < s_naive);
    }

    #[test]
    fn model_underestimates_the_simulator() {
        // The model omits launch overhead, fill and barriers, so it should
        // not exceed the simulator for the same configuration.
        let prog = gemm_prog(1024, 1024, 256);
        let accel = catalog::v100();
        let s = Schedule::balanced(&prog, &accel);
        let predicted = predict_cycles(&prog, &s, &accel).unwrap();
        let simulated = amos_sim::simulate(&prog, &s, &accel).unwrap().cycles;
        assert!(predicted <= simulated);
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let prog = gemm_prog(1024, 1024, 1024);
        let mut accel = catalog::v100();
        let s = Schedule::balanced(&prog, &accel);
        let base = predict_cycles(&prog, &s, &accel).unwrap();
        accel.levels.last_mut().unwrap().memory.load_bytes_per_cycle *= 2.0;
        let faster = predict_cycles(&prog, &s, &accel).unwrap();
        assert!(faster <= base);
    }

    #[test]
    fn breakdown_terms_are_nonnegative() {
        let prog = gemm_prog(256, 256, 256);
        let accel = catalog::a100();
        let b = predict(&prog, &Schedule::naive(&prog), &accel).unwrap();
        assert!(b.l0_compute > 0.0);
        assert!(b.r_register >= 0.0);
        assert!(b.r_shared >= 0.0);
        assert!(b.r_device >= 0.0);
        assert!(b.w_device >= 0.0);
        assert!(b.cycles >= b.l0_compute.min(b.r_device));
    }

    #[test]
    fn mismatched_schedule_rejected_without_allocating() {
        let prog = gemm_prog(256, 256, 256);
        let accel = catalog::v100();
        let mut s = Schedule::naive(&prog);
        s.grid.pop();
        // Both paths reject with the payload-free structural variant.
        assert!(matches!(
            predict(&prog, &s, &accel),
            Err(SimError::ScheduleAxisMismatch)
        ));
        let ctx = prog.screening_context(&accel);
        assert!(matches!(
            predict_with(&ctx, &s),
            Err(SimError::ScheduleAxisMismatch)
        ));
    }

    fn assert_bitwise_equal(a: &PerfBreakdown, b: &PerfBreakdown) {
        for (x, y) in [
            (a.cycles, b.cycles),
            (a.l0_compute, b.l0_compute),
            (a.r_register, b.r_register),
            (a.r_shared, b.r_shared),
            (a.r_device, b.r_device),
            (a.w_device, b.w_device),
            (a.s_device, b.s_device),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} != {y} bitwise");
        }
    }

    #[test]
    fn predict_with_is_bit_identical_to_predict() {
        use crate::explore::random_schedule;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let prog = gemm_prog(1024, 768, 512);
        for accel in [catalog::v100(), catalog::a100()] {
            let ctx = prog.screening_context(&accel);
            let mut rng = StdRng::seed_from_u64(0xA5);
            let naive = Schedule::naive(&prog);
            let balanced = Schedule::balanced(&prog, &accel);
            assert_bitwise_equal(
                &predict(&prog, &naive, &accel).unwrap(),
                &predict_with(&ctx, &naive).unwrap(),
            );
            assert_bitwise_equal(
                &predict(&prog, &balanced, &accel).unwrap(),
                &predict_with(&ctx, &balanced).unwrap(),
            );
            for _ in 0..64 {
                let s = random_schedule(&prog, &accel, &mut rng);
                assert_bitwise_equal(
                    &predict(&prog, &s, &accel).unwrap(),
                    &predict_with(&ctx, &s).unwrap(),
                );
            }
        }
    }

    #[test]
    fn predict_batch_is_bit_identical_to_predict_with() {
        use crate::explore::random_schedule;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let prog = gemm_prog(1024, 768, 512);
        for accel in [catalog::v100(), catalog::a100()] {
            let ctx = prog.screening_context(&accel);
            let mut rng = StdRng::seed_from_u64(0xBA7C);
            let scheds: Vec<Schedule> = (0..64)
                .map(|_| random_schedule(&prog, &accel, &mut rng))
                .collect();
            // Every batch width from a single remainder lane up to several
            // full chunks must agree lane-for-lane with the scalar path.
            for count in [1, 2, 7, 8, 9, 16, 17, 63, 64] {
                let lanes: Vec<&Schedule> = scheds[..count].iter().collect();
                let mut out = Vec::new();
                predict_batch(&ctx, &lanes, &mut out);
                assert_eq!(out.len(), count);
                for (s, got) in lanes.iter().zip(&out) {
                    assert_bitwise_equal(&predict_with(&ctx, s).unwrap(), got.as_ref().unwrap());
                }
            }
        }
    }

    #[test]
    fn predict_batch_isolates_malformed_candidates() {
        use crate::explore::random_schedule;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let prog = gemm_prog(512, 512, 256);
        let accel = catalog::v100();
        let ctx = prog.screening_context(&accel);
        let mut rng = StdRng::seed_from_u64(7);
        let mut scheds: Vec<Schedule> = (0..10)
            .map(|_| random_schedule(&prog, &accel, &mut rng))
            .collect();
        // Break a few candidates structurally; their lanes must error while
        // every neighbour still matches the scalar path bitwise.
        scheds[0].grid.pop();
        scheds[4].grid.push(1);
        scheds[9].grid.clear();
        let lanes: Vec<&Schedule> = scheds.iter().collect();
        let mut out = Vec::new();
        predict_batch(&ctx, &lanes, &mut out);
        assert_eq!(out.len(), lanes.len());
        for (i, (s, got)) in lanes.iter().zip(&out).enumerate() {
            if matches!(i, 0 | 4 | 9) {
                assert!(
                    matches!(got, Err(SimError::ScheduleAxisMismatch)),
                    "lane {i} must reject the malformed schedule"
                );
            } else {
                assert_bitwise_equal(&predict_with(&ctx, s).unwrap(), got.as_ref().unwrap());
            }
        }
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace ships the
//! slice of criterion 0.5 the bench targets use: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! `sample_size`/`bench_function`, and a [`Bencher`] whose `iter` measures
//! wall-clock time. Reporting is plain text (min/mean/max per benchmark);
//! there is no statistical analysis, HTML output or baseline comparison.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets), each routine runs exactly once so the suite stays fast.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries with `--test`;
        // `cargo bench` passes `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            criterion: self,
        }
    }

    /// Registers a free-standing benchmark (no group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode { 1 } else { 100 };
        run_one("", id, samples, self.test_mode, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f`'s [`Bencher::iter`] routine and prints a summary line.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        run_one(&self.name, id, samples, self.criterion.test_mode, f);
        self
    }

    /// Ends the group. (No-op; kept for criterion API compatibility.)
    pub fn finish(self) {}
}

fn run_one<F>(group: &str, id: &str, samples: usize, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        target_samples: samples,
    };
    f(&mut bencher);
    if test_mode {
        println!("{label}: ok (test mode)");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label}: routine never called Bencher::iter");
        return;
    }
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label:<48} time: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        bencher.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Runs `routine` once per sample, timing each run.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }
}

/// Bundles benchmark functions into one callable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut ran = 0u32;
        group.sample_size(10).bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}

//! Case execution: configuration, the test RNG and the assertion plumbing
//! behind `proptest!`.

use rand::SeedableRng;

/// The RNG handed to strategies. One fresh, deterministically seeded stream
/// per test case.
pub type TestRng = rand::rngs::StdRng;

/// Knobs for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// An assumption rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// FNV-1a, used to derive per-test seed streams from the test name (the
/// workspace-shared implementation in the `rand` stand-in).
fn fnv1a(key: &str) -> u64 {
    rand::fnv1a_64(key.as_bytes())
}

/// Runs `body` against `config.cases` generated cases. Called by the
/// expansion of `proptest!`; panics (failing the enclosing `#[test]`) on the
/// first assertion failure, quoting the case seed for reproduction.
pub fn run_cases<F>(name: &str, config: ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let mut case = 0u64;
    while accepted < config.cases {
        let seed = base ^ case.wrapping_mul(0x9e3779b97f4a7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > 10 * config.cases as u64 + 100 {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {case} (seed {seed:#x}):\n{msg}");
            }
        }
        case += 1;
    }
}

/// Asserts a condition inside a `proptest!` body, failing only the current
/// case (with location info) rather than unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Discards the current case (it does not count toward the case budget)
/// when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), $cfg, |__pt_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

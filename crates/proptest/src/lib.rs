//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships the
//! slice of proptest 1.x that AMOS-rs's property tests use: composable
//! [`Strategy`] values (ranges, tuples, `prop_map`, `prop_oneof!`,
//! `prop_recursive`, arrays, collections), the [`proptest!`] test macro, and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` family.
//!
//! **No shrinking**: a failing case reports its generating seed (derived from
//! the test name and case index) instead of a minimised input. Rerunning the
//! test reproduces the same failure deterministically.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Array strategies (`prop::array::uniform3(...)`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing fixed-size arrays from one element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// `[S; 3]` values from strategy `strat`.
    pub fn uniform3<S: Strategy>(strat: S) -> UniformArray<S, 3> {
        UniformArray(strat)
    }

    /// `[S; 2]` values from strategy `strat`.
    pub fn uniform2<S: Strategy>(strat: S) -> UniformArray<S, 2> {
        UniformArray(strat)
    }

    /// `[S; 4]` values from strategy `strat`.
    pub fn uniform4<S: Strategy>(strat: S) -> UniformArray<S, 4> {
        UniformArray(strat)
    }
}

/// Collection strategies (`prop::collection::vec(...)`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values from one element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec<S>` values with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Strategy for uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

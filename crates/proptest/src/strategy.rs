//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps a strategy for depth `d` into one for depth `d + 1`.
    /// `_desired_size` and `_expected_branch` are accepted for upstream
    /// signature compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current.clone()).boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A uniform choice between type-erased strategies; built by `prop_oneof!`.
#[derive(Debug, Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union over `options`; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Uniform choice between strategy arms, all generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

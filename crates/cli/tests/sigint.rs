//! Ctrl-C contract: SIGINT routes through the cooperative cancel path, so
//! an interrupted `amos explore` still prints its best-so-far report with a
//! `cancelled` completion and exits with the degraded status (3) — never a
//! silent kill, never a hang.

use std::io::Read;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGINT: i32 = 2;

#[test]
fn sigint_mid_explore_reports_best_so_far_and_exits_degraded() {
    // A generation count large enough that the search cannot finish before
    // the signal arrives, even on a fast machine.
    let mut child = Command::new(env!("CARGO_BIN_EXE_amos"))
        .args([
            "explore",
            "gmm:256x256x256",
            "--generations",
            "100000",
            "--jobs",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn amos explore");

    // Give the process time to install the handler and enter the search.
    std::thread::sleep(Duration::from_millis(500));
    let rc = unsafe { kill(child.id() as i32, SIGINT) };
    assert_eq!(rc, 0, "kill(SIGINT) must succeed");

    // The cancel is cooperative: it must land within a couple of seconds,
    // not whenever 100k generations would have finished.
    let started = Instant::now();
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if started.elapsed() > Duration::from_secs(30) => {
                let _ = child.kill();
                panic!("amos ignored SIGINT for 30s");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };

    let mut out = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut out)
        .unwrap();

    assert_eq!(status.code(), Some(3), "interrupted run exits 3\n{out}");
    assert!(
        out.contains("completion       : cancelled"),
        "must report the cancelled completion:\n{out}"
    );
    assert!(
        out.contains("best       : "),
        "must still print the best-so-far mapping:\n{out}"
    );
}

//! Cross-process persistence of the on-disk exploration cache: two separate
//! `amos` processes sharing one `--cache-dir` must agree bit for bit, and
//! the second must answer every layer from disk without a single cold
//! exploration.

use std::path::PathBuf;
use std::process::Command;

fn amos() -> Command {
    Command::new(env!("CARGO_BIN_EXE_amos"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("amos-xproc-{tag}-{}", std::process::id()))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn amos");
    assert!(
        out.status.success(),
        "amos failed ({:?}): {}{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// Strips the cache-statistics footer, leaving only the cost lines that must
/// be bit-identical between a cold and a disk-warm process.
fn cost_lines(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.contains("explorations cached"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn second_process_answers_from_disk_bit_identically() {
    let dir = tmp_dir("network");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().unwrap();

    let cold = run_ok(amos().args(["network", "milstm", "--cache-dir", dir_arg]));
    assert!(
        cold.contains(" cold misses"),
        "cold run must explore: {cold}"
    );
    assert!(
        !cold.contains(" 0 cold misses"),
        "cold run cannot be answered from an empty cache: {cold}"
    );

    // The directory now holds the explorations; `cache stats` sees them.
    let stats = run_ok(amos().args(["cache", "stats", "--cache-dir", dir_arg]));
    assert!(
        !stats.contains("entries  : 0"),
        "cold run must persist entries: {stats}"
    );

    // A brand-new process with a brand-new in-memory cache: every layer
    // shape must come back as a disk hit, with zero cold explorations.
    let warm = run_ok(amos().args(["network", "milstm", "--cache-dir", dir_arg]));
    assert!(
        warm.contains(" 0 cold misses"),
        "warm process must not re-explore: {warm}"
    );
    assert!(
        !warm.contains(" 0 disk hits"),
        "warm process must report its disk hits: {warm}"
    );
    assert_eq!(
        cost_lines(&cold),
        cost_lines(&warm),
        "persisted answers must be bit-identical"
    );

    // `cache clear` empties the directory, after which the next run is cold
    // again.
    let cleared = run_ok(amos().args(["cache", "clear", "--cache-dir", dir_arg]));
    assert!(cleared.contains("removed "), "{cleared}");
    let stats = run_ok(amos().args(["cache", "stats", "--cache-dir", dir_arg]));
    assert!(stats.contains("entries  : 0"), "{stats}");
    let recold = run_ok(amos().args(["network", "milstm", "--cache-dir", dir_arg]));
    assert!(!recold.contains(" 0 cold misses"), "{recold}");
    assert_eq!(cost_lines(&cold), cost_lines(&recold));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Strips the process-local instrumentation counters (how much work THIS
/// process did, which legitimately differs between a cold explorer and a
/// disk-served one), leaving the answer lines that must be bit-identical.
fn answer_lines(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.starts_with("exploration      :") && !l.starts_with("screening        :"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Two processes racing to explore the same operator into one cache
/// directory: writes are atomic renames, so both must succeed, agree bit
/// for bit, and leave a readable entry that a third process answers from
/// with zero cold explorations.
#[test]
fn concurrent_writers_to_one_cache_dir_both_succeed() {
    let dir = tmp_dir("write-race");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().unwrap().to_string();

    let spawn = |dir_arg: &str| {
        amos()
            .args([
                "explore",
                "gmm:128x128x128",
                "--cache-dir",
                dir_arg,
                "--jobs",
                "1",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn amos explore")
    };
    // Start both before waiting on either so their explorations overlap and
    // both reach the L2 publish step for the same fingerprint.
    let a = spawn(&dir_arg);
    let b = spawn(&dir_arg);
    let a = a.wait_with_output().unwrap();
    let b = b.wait_with_output().unwrap();
    for out in [&a, &b] {
        assert!(
            out.status.success(),
            "racing writer failed ({:?}): {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        answer_lines(&String::from_utf8_lossy(&a.stdout)),
        answer_lines(&String::from_utf8_lossy(&b.stdout)),
        "racing writers must print identical answers"
    );

    // The race left at least one valid entry and no torn files visible to
    // `cache stats` (temp files are dot-prefixed and not counted).
    let stats = run_ok(amos().args(["cache", "stats", "--cache-dir", &dir_arg]));
    assert!(
        !stats.contains("entries  : 0"),
        "the winning write must persist: {stats}"
    );

    // A third process is answered entirely from the raced-on entry.
    let warm = run_ok(amos().args([
        "explore",
        "gmm:128x128x128",
        "--cache-dir",
        &dir_arg,
        "--jobs",
        "1",
    ]));
    assert_eq!(
        answer_lines(&String::from_utf8_lossy(&a.stdout)),
        answer_lines(&warm),
        "disk-served repeat must be bit-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

//! `AMOS_JOBS` is a contract, not a hint: a malformed value is rejected up
//! front with a clear error (exit 2), never silently ignored.

use std::process::Command;

fn amos() -> Command {
    Command::new(env!("CARGO_BIN_EXE_amos"))
}

#[test]
fn invalid_amos_jobs_is_rejected_with_a_clear_error() {
    for bad in ["abc", "0", "-1", "4.5", ""] {
        let out = amos()
            .args(["ops"])
            .env("AMOS_JOBS", bad)
            .output()
            .expect("run amos");
        assert_eq!(
            out.status.code(),
            Some(2),
            "AMOS_JOBS={bad:?} must be a usage error"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("invalid AMOS_JOBS") && err.contains("positive integer"),
            "AMOS_JOBS={bad:?} must name the variable and the expected shape: {err}"
        );
    }
}

#[test]
fn valid_amos_jobs_is_accepted() {
    let out = amos()
        .args(["ops"])
        .env("AMOS_JOBS", "2")
        .output()
        .expect("run amos");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("gmm"));
}

//! End-to-end smoke of `amos serve` / `amos submit` as real processes over
//! a Unix socket: concurrent duplicate submits share one exploration
//! bit-identically, zero capacity sheds with exit 2, `kill -9` plus restart
//! answers repeats from the disk cache with no cold miss, and `drain`
//! shuts the daemon down cleanly.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn amos() -> Command {
    Command::new(env!("CARGO_BIN_EXE_amos"))
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("amos-smoke-{tag}-{}", std::process::id()))
}

/// Kills the daemon on drop so a failing assertion never leaks a process.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server(socket: &std::path::Path, extra: &[&str]) -> Daemon {
    let mut cmd = amos();
    cmd.args(["serve", "--socket", socket.to_str().unwrap()])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    let child = cmd.spawn().expect("spawn amos serve");
    // Readiness: the client retries connect failures with back-off, so a
    // single ping call doubles as the readiness poll.
    let ping = amos()
        .args([
            "submit",
            "ping",
            "--socket",
            socket.to_str().unwrap(),
            "--retries",
            "8",
            "--retry-base-ms",
            "50",
        ])
        .output()
        .expect("run amos submit ping");
    assert!(
        ping.status.success(),
        "daemon did not come up: {}",
        String::from_utf8_lossy(&ping.stderr)
    );
    Daemon(child)
}

fn submit(socket: &std::path::Path, args: &[&str]) -> Output {
    amos()
        .args(["submit", "--socket", socket.to_str().unwrap()])
        .args(args)
        .output()
        .expect("run amos submit")
}

fn stats_line(socket: &std::path::Path) -> String {
    let out = submit(socket, &["stats"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn drain(socket: &std::path::Path, daemon: &mut Daemon) {
    let out = submit(socket, &["drain"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let status = daemon.0.wait().expect("wait for drained daemon");
    assert!(
        status.success(),
        "drained daemon must exit 0, got {status:?}"
    );
    assert!(!socket.exists(), "drain must remove the socket file");
}

/// Four concurrent duplicate submits against a deliberately slow search
/// (bounded by their shared deadline) must join one flight: the daemon
/// explores once and every client prints the byte-identical response line.
#[test]
fn concurrent_duplicate_submits_share_one_exploration() {
    let socket = tmp_path("dedup.sock");
    let _ = std::fs::remove_file(&socket);
    let mut daemon = spawn_server(&socket, &["--generations", "100000", "--jobs", "1"]);

    let started = Instant::now();
    let children: Vec<Child> = (0..4)
        .map(|_| {
            amos()
                .args([
                    "submit",
                    "gmm:64x64x64",
                    "--socket",
                    socket.to_str().unwrap(),
                    "--deadline-ms",
                    "1500",
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn amos submit")
        })
        .collect();
    let outputs: Vec<Output> = children
        .into_iter()
        .map(|c| c.wait_with_output().unwrap())
        .collect();
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "deadline + grace must bound every submit"
    );

    for out in &outputs {
        // Deadline-truncated answers are degraded (exit 3), a finished one
        // would be 0; anything else means a client saw an error.
        assert!(
            matches!(out.status.code(), Some(0) | Some(3)),
            "submit failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let first = String::from_utf8_lossy(&outputs[0].stdout).into_owned();
    for out in &outputs {
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            first,
            "duplicate submits must print identical bytes"
        );
    }
    let stats = stats_line(&socket);
    assert!(stats.contains("\"explored\":1"), "{stats}");
    assert!(stats.contains("\"dedup_joined\":3"), "{stats}");

    drain(&socket, &mut daemon);
}

/// A zero-capacity daemon sheds every explore with a typed `Overloaded`
/// carrying the retry hint; the client backs off, re-tries, and finally
/// reports overload with exit 2.
#[test]
fn zero_capacity_daemon_sheds_and_submit_exits_2() {
    let socket = tmp_path("shed.sock");
    let _ = std::fs::remove_file(&socket);
    let mut daemon = spawn_server(
        &socket,
        &["--workers", "0", "--queue", "0", "--retry-after-ms", "60"],
    );

    let out = submit(
        &socket,
        &["gmm:64x64x64", "--retries", "2", "--retry-base-ms", "1"],
    );
    assert_eq!(out.status.code(), Some(2), "shed submit must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("overloaded"), "{err}");
    let stats = stats_line(&socket);
    assert!(stats.contains("\"shed\":2"), "both attempts shed: {stats}");

    drain(&socket, &mut daemon);
}

/// Crash-only recovery: `kill -9` the daemon mid-life, restart it on the
/// same socket and cache directory, and a repeat request is answered from
/// the L2 disk tier bit-identically with zero cold explorations.
#[test]
fn kill_dash_nine_then_restart_serves_repeats_from_disk() {
    let socket = tmp_path("crash.sock");
    let cache_dir = tmp_path("crash-cache");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server_args = [
        "--cache-dir",
        cache_dir.to_str().unwrap(),
        "--generations",
        "2",
        "--jobs",
        "1",
    ];

    let daemon = spawn_server(&socket, &server_args);
    let out = submit(&socket, &["gmm:96x96x96"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let first = String::from_utf8(out.stdout).unwrap();

    // SIGKILL: no destructors, no drain — the socket file is left behind.
    drop(daemon);
    assert!(socket.exists(), "kill -9 leaves a stale socket file");

    // The restart must reclaim the stale socket and answer the repeat from
    // disk without re-exploring.
    let mut daemon = spawn_server(&socket, &server_args);
    let out = submit(&socket, &["gmm:96x96x96"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let second = String::from_utf8(out.stdout).unwrap();
    assert_eq!(first, second, "disk-served repeat must be bit-identical");
    let stats = stats_line(&socket);
    assert!(stats.contains("\"l2_hits\":1"), "{stats}");
    assert!(stats.contains("\"cold_misses\":0"), "{stats}");

    drain(&socket, &mut daemon);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

//! The ISSUE acceptance scenario: a brand-new accelerator defined *only* as
//! an on-disk data file — no Rust — shows up in `--list-accels` and explores
//! successfully once `--accel-dir` points at its directory.

use amos_cli::{run, RunStatus};
use std::path::PathBuf;

/// A hand-written data file for a machine that exists nowhere in the Rust
/// catalog: a 4x4x4 outer-product unit with two memory levels.
const ZETA_MACHINE: &str = r#"
# A file-only machine: never mentioned in any Rust source.
format = 1
kind = "accelerator"
name = "zeta-npu"
clock_ghz = 1.2
scalar_ops_per_core_cycle = 2

[[level]]
name = "tile"
inner_units = 4
capacity_bytes = 512
bytes_per_cycle = 16

[[level]]
name = "chip"
inner_units = 2
capacity_bytes = 262144
bytes_per_cycle = 32

[[intrinsic]]
name = "zeta_mma"
op = "mul-acc"
iters = ["i1 spatial 4", "i2 spatial 4", "r1 reduction 4"]
srcs = ["A[i1, r1]", "B[r1, i2]"]
dst = "C[i1, i2]"
memory = "fragment"
load = "zeta_load"
store = "zeta_store"
latency = 4
initiation_interval = 1
src_dtype = "f16"
acc_dtype = "f32"
"#;

/// The same machine written as a primitive ISA description instead — the
/// derivation pass must infer iteration kinds and memory style on load.
const ZETA_ISA: &str = r#"
format = 1
kind = "isa"
name = "zeta-isa"
clock_ghz = 1.2
scalar_ops_per_core_cycle = 2

[[level]]
name = "tile"
inner_units = 4
capacity_bytes = 512
bytes_per_cycle = 16

[[intrinsic]]
name = "zeta_mma"
op = "mul-acc"
loops = ["i1 4", "i2 4", "r1 4"]
srcs = ["A[i1, r1]", "B[r1, i2]"]
dst = "C[i1, i2]"
latency = 4
initiation_interval = 1
src_dtype = "f16"
acc_dtype = "f32"

[[intrinsic.load]]
instruction = "zeta_load"
operand = "A"

[[intrinsic.load]]
instruction = "zeta_load"
operand = "B"

[[intrinsic.store]]
instruction = "zeta_store"
operand = "C"
"#;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amos-accel-dir-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_cli(args: &[&str]) -> (RunStatus, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let status = run(&args, &mut buf).unwrap_or_else(|e| panic!("{args:?}: {e}"));
    (status, String::from_utf8(buf).unwrap())
}

#[test]
fn file_only_machine_lists_and_explores() {
    let dir = scratch_dir("explore");
    std::fs::write(dir.join("zeta-npu.toml"), ZETA_MACHINE).unwrap();
    let dir_arg = dir.to_str().unwrap();

    // It appears in --list-accels, after the 12 built-ins.
    let (_, listed) = run_cli(&["--accel-dir", dir_arg, "--list-accels"]);
    let names: Vec<&str> = listed.lines().collect();
    assert_eq!(names.len(), 13, "{listed}");
    assert_eq!(*names.last().unwrap(), "zeta-npu");
    assert!(names.contains(&"v100"));

    // `accels` builds it alongside the catalog.
    let (_, table) = run_cli(&["--accel-dir", dir_arg, "accels"]);
    assert!(table.contains("zeta-npu"), "{table}");
    assert!(table.contains("zeta_mma"), "{table}");

    // It enumerates mappings and explores end to end.
    let (_, mappings) = run_cli(&[
        "mappings",
        "gmm:16x16x16",
        "--accel",
        "zeta-npu",
        "--accel-dir",
        dir_arg,
    ]);
    assert!(mappings.contains("valid mappings"), "{mappings}");
    let (status, explored) = run_cli(&[
        "explore",
        "gmm:32x32x32",
        "--accel",
        "zeta-npu",
        "--accel-dir",
        dir_arg,
        "--jobs",
        "1",
    ]);
    assert_eq!(status, RunStatus::Complete);
    assert!(explored.contains("accelerator: zeta-npu"), "{explored}");
    assert!(explored.contains("cycles"), "{explored}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn isa_only_machine_derives_and_explores() {
    let dir = scratch_dir("isa");
    std::fs::write(dir.join("zeta-isa.toml"), ZETA_ISA).unwrap();
    let dir_arg = dir.to_str().unwrap();

    let (_, listed) = run_cli(&["--accel-dir", dir_arg, "--list-accels"]);
    assert!(listed.lines().any(|l| l == "zeta-isa"), "{listed}");

    // The derived machine is dst-determined: i1/i2 spatial, r1 reduction.
    let (_, shown) = run_cli(&["--accel-dir", dir_arg, "accel", "show", "zeta-isa"]);
    assert!(shown.contains("i1 spatial 4"), "{shown}");
    assert!(shown.contains("r1 reduction 4"), "{shown}");
    assert!(
        shown.contains("fragment (load zeta_load, store zeta_store)"),
        "{shown}"
    );

    let (status, explored) = run_cli(&[
        "explore",
        "gmm:16x16x16",
        "--accel",
        "zeta-isa",
        "--accel-dir",
        dir_arg,
        "--jobs",
        "1",
    ]);
    assert_eq!(status, RunStatus::Complete);
    assert!(explored.contains("accelerator: zeta-isa"), "{explored}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn accel_dir_override_changes_the_built_machine() {
    // A file named after a built-in replaces it in place for every verb.
    let dir = scratch_dir("override");
    let faster = ZETA_MACHINE
        .replace("name = \"zeta-npu\"", "name = \"mini\"")
        .replace("clock_ghz = 1.2", "clock_ghz = 7.5");
    std::fs::write(dir.join("mini.toml"), faster).unwrap();
    let dir_arg = dir.to_str().unwrap();

    let (_, listed) = run_cli(&["--accel-dir", dir_arg, "--list-accels"]);
    assert_eq!(listed.lines().filter(|l| *l == "mini").count(), 1);
    assert_eq!(listed.lines().count(), 12, "override must not append");

    let (_, shown) = run_cli(&["--accel-dir", dir_arg, "accel", "show", "mini"]);
    assert!(shown.contains("7.5 GHz"), "{shown}");
    assert!(shown.contains("zeta_mma"), "{shown}");

    std::fs::remove_dir_all(&dir).unwrap();
}

//! The `amos` binary: see [`amos_cli`] for commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = amos_cli::run(&args, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

//! The `amos` binary: see [`amos_cli`] for commands.
//!
//! Exit status: 0 on success, 2 on usage/compilation errors, 3 when the
//! run produced a best-so-far answer but the exploration was truncated by
//! a budget limit, interrupted by Ctrl-C, or degraded by quarantined
//! candidates.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    // Ctrl-C cancels the running exploration cooperatively: the best-so-far
    // report is printed with a `cancelled` completion and the exit status
    // is 3, the same contract as a budget-truncated run.
    let cancel = amos_cli::sigint::install();
    match amos_cli::run_with_cancel(&args, &mut stdout, Some(cancel)) {
        Ok(amos_cli::RunStatus::Complete) => {}
        Ok(amos_cli::RunStatus::Degraded) => std::process::exit(3),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
